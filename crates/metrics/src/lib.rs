//! In-process observability substrate for the MemoryDB reproduction.
//!
//! The paper's evaluation (§6) is a story about *where time goes* — IO
//! threads vs. engine execution vs. txlog quorum wait — so every serving
//! and durability layer records into one of these registries and the
//! `INFO` / `SLOWLOG` / `LATENCY HISTOGRAM` commands (plus the bench
//! drivers) read them back out.
//!
//! Design constraints, in order:
//!
//! 1. **Dependency-free**: std + `parking_lot` (the workspace-mandated
//!    lock) only. No hdrhistogram / metrics-rs / prometheus.
//! 2. **Panic-free and lock-free on the hot path**: counters, gauges and
//!    histogram buckets are plain atomics; the only mutex in the crate
//!    guards the slowlog ring, which is touched at most once per slow
//!    command.
//! 3. **Deterministic clock seam**: every duration measurement goes
//!    through [`Clock`], which is wall (monotonic `Instant`) in the real
//!    stack and manually tick-driven inside the sim/chaos scopes, where
//!    the analyzer's sim-determinism lint forbids ambient time.
//!
//! Histograms are HdrHistogram-flavored power-of-two buckets: bucket `i`
//! (for `i >= 1`) covers `[2^(i-1), 2^i)` microseconds, bucket 0 holds
//! zero. That gives ~2x value resolution over a 0..u64::MAX range with a
//! fixed 65-slot atomic array — coarse, but stage attribution cares about
//! orders of magnitude, not microsecond precision.

#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod alloc;

pub use alloc::{alloc_counts, AllocCounts, CountingAlloc};

use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::time::Instant;

// ---------------------------------------------------------------------------
// Identifier enums: fixed taxonomies, so the registry is a handful of flat
// atomic arrays with infallible indexing and zero allocation per record.
// ---------------------------------------------------------------------------

/// A latency stage. One fixed histogram per stage per registry.
///
/// Serving path (server + node registries):
/// `io_read`/`io_write`/`parse` are per-sweep server spans, `engine` is the
/// node span from engine-lock request to lock release (queueing + hold),
/// `engine_lock_hold` is the hold alone, `apply` is one command's
/// execution, `durability` is the `wait_durable` span, and `e2e` is the
/// whole sweep (read + parse + dispatch + reply flush) — so
/// `io_read + io_write + parse + engine + durability ≈ e2e`.
///
/// Durability path (txlog registry): `log_append` is the synchronous
/// accept call, `quorum_ack` is accept→commit per entry, `log_read` is one
/// read call (including any injected delay), `read_delay` records the
/// injected delay itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageId {
    /// Server: socket read sweep (time spent in `read(2)` per sweep).
    IoRead,
    /// Server: reply flush (time spent in `write(2)` per sweep).
    IoWrite,
    /// Server: RESP/inline parse loop for one batch.
    Parse,
    /// Node: engine-lock request → release (queueing + execution + staging).
    Engine,
    /// Node: engine-lock acquisition → release (hold only).
    EngineLockHold,
    /// Node: one stripe-lock acquisition → release (per-stripe hold; for
    /// all-stripe ops, the span from full acquisition to full release).
    StripeLockHold,
    /// Node: one command's `Engine::execute` call.
    Apply,
    /// Node: ticket enqueue → committer append (commit-pipeline queueing).
    CommitQueueWait,
    /// Node: adaptive flush-window width per flush — oldest staged ticket's
    /// enqueue → append handoff (idle fast path ≈ 0, widens under load).
    FlushWindow,
    /// Node: committer append → commit watermark passing the ticket.
    Durability,
    /// Node: entries per committer flush (a count histogram, not µs —
    /// the cross-connection group-commit batch size).
    CommitFlushEntries,
    /// Server: one full sweep with traffic — read + parse + dispatch + flush.
    E2e,
    /// Txlog: one (batch) append accept call.
    LogAppend,
    /// Txlog: accept → quorum commit, per entry.
    QuorumAck,
    /// Txlog: one committed-read call, including injected delay.
    LogRead,
    /// Txlog: the injected read-side delay actually applied.
    ReadDelay,
}

impl StageId {
    /// Every stage, in display order.
    pub const ALL: [StageId; 16] = [
        StageId::IoRead,
        StageId::IoWrite,
        StageId::Parse,
        StageId::Engine,
        StageId::EngineLockHold,
        StageId::StripeLockHold,
        StageId::Apply,
        StageId::CommitQueueWait,
        StageId::FlushWindow,
        StageId::Durability,
        StageId::CommitFlushEntries,
        StageId::E2e,
        StageId::LogAppend,
        StageId::QuorumAck,
        StageId::LogRead,
        StageId::ReadDelay,
    ];

    /// Stable snake_case name used by INFO/LATENCY and the bench CSVs.
    pub fn name(self) -> &'static str {
        match self {
            StageId::IoRead => "io_read",
            StageId::IoWrite => "io_write",
            StageId::Parse => "parse",
            StageId::Engine => "engine",
            StageId::EngineLockHold => "engine_lock_hold",
            StageId::StripeLockHold => "stripe_lock_hold",
            StageId::Apply => "apply",
            StageId::CommitQueueWait => "commit_queue_wait",
            StageId::FlushWindow => "flush_window",
            StageId::Durability => "durability",
            StageId::CommitFlushEntries => "commit_flush_entries",
            StageId::E2e => "e2e",
            StageId::LogAppend => "log_append",
            StageId::QuorumAck => "quorum_ack",
            StageId::LogRead => "log_read",
            StageId::ReadDelay => "read_delay",
        }
    }
}

/// A monotonic counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CounterId {
    /// Server: connections accepted.
    ConnectionsAccepted,
    /// Node: commands executed through `handle_batch`.
    CommandsDispatched,
    /// Node: batches executed through `handle_batch`.
    BatchesDispatched,
    /// Node: tickets that shared a committer flush with an earlier ticket
    /// (`tickets_in_flush - 1` per flush — cross-connection coalescing).
    AppendsCoalesced,
    /// Node: batches that required all-stripe acquisition (cross-stripe
    /// transactions, keyless sweeps, admin commands).
    CrossStripeOps,
    /// Node: stripe-lock acquisitions that found the lock already held
    /// (opportunistic `try_lock` missed and had to block).
    StripeConflicts,
    /// Server: protocol errors that closed a connection.
    ProtocolErrors,
    /// Node: commands recorded into the slowlog ring.
    SlowlogRecorded,
    /// Txlog: reads rejected with `Trimmed`.
    ReadsTrimmed,
    /// Txlog: conditional appends rejected with `Conflict`.
    AppendConflicts,
    /// Txlog: appends/reads rejected because the client was partitioned.
    PartitionRejections,
    /// Txlog fault hook: `set_az_up` trips.
    FaultAzFlips,
    /// Txlog fault hook: `set_client_partitioned` trips.
    FaultPartitionFlips,
    /// Txlog fault hook: `set_read_delay` trips.
    FaultReadDelaySets,
    /// Txlog fault hook: `set_commits_suspended` trips.
    FaultCommitSuspendFlips,
    /// Txlog fault hook: `clear_faults` trips.
    FaultClears,
}

impl CounterId {
    /// Every counter, in display order.
    pub const ALL: [CounterId; 16] = [
        CounterId::ConnectionsAccepted,
        CounterId::CommandsDispatched,
        CounterId::BatchesDispatched,
        CounterId::AppendsCoalesced,
        CounterId::CrossStripeOps,
        CounterId::StripeConflicts,
        CounterId::ProtocolErrors,
        CounterId::SlowlogRecorded,
        CounterId::ReadsTrimmed,
        CounterId::AppendConflicts,
        CounterId::PartitionRejections,
        CounterId::FaultAzFlips,
        CounterId::FaultPartitionFlips,
        CounterId::FaultReadDelaySets,
        CounterId::FaultCommitSuspendFlips,
        CounterId::FaultClears,
    ];

    /// Stable snake_case name used by INFO and the bench CSVs.
    pub fn name(self) -> &'static str {
        match self {
            CounterId::ConnectionsAccepted => "connections_accepted",
            CounterId::CommandsDispatched => "commands_dispatched",
            CounterId::BatchesDispatched => "batches_dispatched",
            CounterId::AppendsCoalesced => "appends_coalesced",
            CounterId::CrossStripeOps => "cross_stripe_ops",
            CounterId::StripeConflicts => "stripe_conflicts",
            CounterId::ProtocolErrors => "protocol_errors",
            CounterId::SlowlogRecorded => "slowlog_recorded",
            CounterId::ReadsTrimmed => "reads_trimmed",
            CounterId::AppendConflicts => "append_conflicts",
            CounterId::PartitionRejections => "partition_rejections",
            CounterId::FaultAzFlips => "fault_az_flips",
            CounterId::FaultPartitionFlips => "fault_partition_flips",
            CounterId::FaultReadDelaySets => "fault_read_delay_sets",
            CounterId::FaultCommitSuspendFlips => "fault_commit_suspend_flips",
            CounterId::FaultClears => "fault_clears",
        }
    }
}

/// A point-in-time gauge (last write wins).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GaugeId {
    /// Node: leadership epoch of the current lease (0 = never led).
    LeaseEpoch,
    /// Monitor: last snapshot-covered log position for the shard.
    SnapshotCoveredEntry,
    /// Node (replica): committed-tail minus applied position.
    ReplicaStalenessEntries,
    /// Txlog: last committed entry id.
    LogCommittedTail,
    /// Txlog: first readable entry id (trim boundary + 1).
    LogFirstAvailable,
    /// Txlog: accepted-but-uncommitted entries.
    LogPendingEntries,
    /// Txlog: AZs currently marked up.
    AzUpCount,
    /// Txlog: appended batches whose quorum ack is still outstanding
    /// (the pipelined-quorum in-flight depth).
    QuorumInflight,
    /// Server: currently connected clients.
    ConnectedClients,
}

impl GaugeId {
    /// Every gauge, in display order.
    pub const ALL: [GaugeId; 9] = [
        GaugeId::LeaseEpoch,
        GaugeId::SnapshotCoveredEntry,
        GaugeId::ReplicaStalenessEntries,
        GaugeId::LogCommittedTail,
        GaugeId::LogFirstAvailable,
        GaugeId::LogPendingEntries,
        GaugeId::AzUpCount,
        GaugeId::QuorumInflight,
        GaugeId::ConnectedClients,
    ];

    /// Stable snake_case name used by INFO and the bench CSVs.
    pub fn name(self) -> &'static str {
        match self {
            GaugeId::LeaseEpoch => "lease_epoch",
            GaugeId::SnapshotCoveredEntry => "snapshot_covered_entry",
            GaugeId::ReplicaStalenessEntries => "replica_staleness_entries",
            GaugeId::LogCommittedTail => "log_committed_tail",
            GaugeId::LogFirstAvailable => "log_first_available",
            GaugeId::LogPendingEntries => "log_pending_entries",
            GaugeId::AzUpCount => "az_up_count",
            GaugeId::QuorumInflight => "quorum_inflight",
            GaugeId::ConnectedClients => "connected_clients",
        }
    }
}

// ---------------------------------------------------------------------------
// Clock seam
// ---------------------------------------------------------------------------

enum ClockInner {
    /// Monotonic wall time since registry creation.
    Wall(Instant),
    /// Manually advanced tick counter (microseconds) — the deterministic
    /// seam for sim/chaos scopes, where the analyzer forbids ambient time.
    Manual(AtomicU64),
}

/// Microsecond clock behind every duration measurement in a [`Registry`].
pub struct Clock(ClockInner);

impl Clock {
    /// Wall clock (monotonic, microseconds since creation).
    pub fn wall() -> Clock {
        Clock(ClockInner::Wall(Instant::now()))
    }

    /// Manual tick-driven clock starting at 0 µs.
    pub fn manual() -> Clock {
        Clock(ClockInner::Manual(AtomicU64::new(0)))
    }

    /// Current time in microseconds.
    pub fn now_us(&self) -> u64 {
        match &self.0 {
            ClockInner::Wall(origin) => {
                // Saturate instead of wrapping ~584k years out.
                u64::try_from(origin.elapsed().as_micros()).unwrap_or(u64::MAX)
            }
            ClockInner::Manual(t) => t.load(Ordering::Relaxed),
        }
    }

    /// Advances a manual clock by `us` microseconds; no-op on a wall clock.
    pub fn advance_us(&self, us: u64) {
        if let ClockInner::Manual(t) = &self.0 {
            t.fetch_add(us, Ordering::Relaxed);
        }
    }

    /// Whether this is the deterministic manual clock.
    pub fn is_manual(&self) -> bool {
        matches!(self.0, ClockInner::Manual(_))
    }
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

/// Number of power-of-two buckets: bucket 0 for value 0, bucket `i` for
/// `[2^(i-1), 2^i)`, bucket 64 for `>= 2^63`.
const NUM_BUCKETS: usize = 65;

/// Lock-free fixed-bucket latency histogram (microsecond values).
pub struct Histogram {
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
    max_us: AtomicU64,
}

fn bucket_for(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Representative (upper-bound) value for a bucket index.
fn bucket_upper(idx: usize) -> u64 {
    if idx >= 64 {
        u64::MAX
    } else {
        // Bucket 0 holds only the value 0; bucket i covers [2^(i-1), 2^i).
        (1u64 << idx) - 1
    }
}

impl Histogram {
    fn new() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
            max_us: AtomicU64::new(0),
        }
    }

    /// Records one microsecond sample.
    pub fn record_us(&self, v: u64) {
        if let Some(b) = self.buckets.get(bucket_for(v)) {
            b.fetch_add(1, Ordering::Relaxed);
        }
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(v, Ordering::Relaxed);
        self.max_us.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples in microseconds.
    pub fn sum_us(&self) -> u64 {
        self.sum_us.load(Ordering::Relaxed)
    }

    /// Largest sample in microseconds (0 when empty).
    pub fn max_us(&self) -> u64 {
        self.max_us.load(Ordering::Relaxed)
    }

    /// Mean sample in microseconds (0 when empty).
    pub fn mean_us(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum_us() as f64 / n as f64
        }
    }

    /// Approximate quantile (bucket upper bound, clamped to the observed
    /// max). Concurrent recording can skew the answer by a sample or two;
    /// counters are monotonic so it never goes backwards structurally.
    pub fn quantile_us(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for (idx, b) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(b.load(Ordering::Relaxed));
            if seen >= rank {
                return bucket_upper(idx).min(self.max_us());
            }
        }
        self.max_us()
    }

    /// Per-bucket (upper_bound_us, count) pairs for non-empty buckets.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(idx, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then_some((bucket_upper(idx), n))
            })
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Slowlog
// ---------------------------------------------------------------------------

/// One slowlog entry (Redis-shaped: id, unix time, duration, argv).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlowlogEntry {
    /// Monotonically increasing entry id, never reset.
    pub id: u64,
    /// Unix timestamp (seconds) when the command finished.
    pub unix_time_s: i64,
    /// Execution duration in microseconds.
    pub duration_us: u64,
    /// Command arguments as received.
    pub args: Vec<Vec<u8>>,
}

/// Fixed-capacity ring of the slowest commands, Redis `SLOWLOG` semantics:
/// threshold < 0 disables recording, 0 records everything, otherwise a
/// command is recorded when its duration (µs) is >= the threshold.
pub struct Slowlog {
    next_id: AtomicU64,
    threshold_us: AtomicI64,
    max_len: usize,
    entries: Mutex<VecDeque<SlowlogEntry>>,
}

impl Slowlog {
    /// Default recording threshold: 10ms, like Redis.
    pub const DEFAULT_THRESHOLD_US: i64 = 10_000;
    /// Default ring capacity.
    pub const DEFAULT_MAX_LEN: usize = 128;

    fn new() -> Slowlog {
        Slowlog {
            next_id: AtomicU64::new(0),
            threshold_us: AtomicI64::new(Self::DEFAULT_THRESHOLD_US),
            max_len: Self::DEFAULT_MAX_LEN,
            entries: Mutex::new(VecDeque::new()),
        }
    }

    /// Current recording threshold in microseconds.
    pub fn threshold_us(&self) -> i64 {
        self.threshold_us.load(Ordering::Relaxed)
    }

    /// Sets the recording threshold in microseconds.
    pub fn set_threshold_us(&self, v: i64) {
        self.threshold_us.store(v, Ordering::Relaxed);
    }

    /// Records the command if it crossed the threshold; `make_args` is only
    /// called when recording (no per-command allocation on the fast path).
    /// Returns whether an entry was recorded.
    pub fn observe<F>(&self, duration_us: u64, unix_time_s: i64, make_args: F) -> bool
    where
        F: FnOnce() -> Vec<Vec<u8>>,
    {
        let threshold = self.threshold_us();
        if threshold < 0 {
            return false; // recording disabled
        }
        if threshold > 0 && duration_us < threshold.unsigned_abs() {
            return false; // fast command
        }
        let entry = SlowlogEntry {
            id: self.next_id.fetch_add(1, Ordering::Relaxed),
            unix_time_s,
            duration_us,
            args: make_args(),
        };
        let mut ring = self.entries.lock();
        if ring.len() >= self.max_len {
            ring.pop_front();
        }
        ring.push_back(entry);
        true
    }

    /// Up to `n` most recent entries, newest first (Redis `SLOWLOG GET`).
    pub fn get(&self, n: usize) -> Vec<SlowlogEntry> {
        self.entries.lock().iter().rev().take(n).cloned().collect()
    }

    /// Number of entries currently retained.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.lock().is_empty()
    }

    /// Clears the ring (ids keep increasing, like Redis).
    pub fn reset(&self) {
        self.entries.lock().clear();
    }
}

// ---------------------------------------------------------------------------
// Registry + snapshot
// ---------------------------------------------------------------------------

/// One component's metrics: flat atomic arrays keyed by the id enums, a
/// slowlog ring, and the clock seam. Cheap to share (`Arc<Registry>`), safe
/// to record into from any thread, and panic-free by construction.
pub struct Registry {
    clock: Clock,
    counters: [AtomicU64; CounterId::ALL.len()],
    gauges: [AtomicI64; GaugeId::ALL.len()],
    stages: [Histogram; StageId::ALL.len()],
    slowlog: Slowlog,
}

impl Registry {
    /// Registry on the wall clock (the real serving stack).
    pub fn new() -> Registry {
        Registry::with_clock(Clock::wall())
    }

    /// Registry on the manual tick clock (sim/chaos scopes).
    pub fn new_manual() -> Registry {
        Registry::with_clock(Clock::manual())
    }

    fn with_clock(clock: Clock) -> Registry {
        Registry {
            clock,
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            gauges: std::array::from_fn(|_| AtomicI64::new(0)),
            stages: std::array::from_fn(|_| Histogram::new()),
            slowlog: Slowlog::new(),
        }
    }

    /// The clock behind this registry.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// Current registry time in microseconds — pair two calls to time a span.
    pub fn now_us(&self) -> u64 {
        self.clock.now_us()
    }

    /// Adds `n` to a counter.
    pub fn add(&self, c: CounterId, n: u64) {
        if let Some(slot) = self.counters.get(c as usize) {
            slot.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Increments a counter by one.
    pub fn incr(&self, c: CounterId) {
        self.add(c, 1);
    }

    /// Current counter value.
    pub fn counter(&self, c: CounterId) -> u64 {
        self.counters
            .get(c as usize)
            .map_or(0, |slot| slot.load(Ordering::Relaxed))
    }

    /// Sets a gauge.
    pub fn set_gauge(&self, g: GaugeId, v: i64) {
        if let Some(slot) = self.gauges.get(g as usize) {
            slot.store(v, Ordering::Relaxed);
        }
    }

    /// Current gauge value.
    pub fn gauge(&self, g: GaugeId) -> i64 {
        self.gauges
            .get(g as usize)
            .map_or(0, |slot| slot.load(Ordering::Relaxed))
    }

    /// Records one duration sample into a stage histogram.
    pub fn record_stage(&self, s: StageId, dur_us: u64) {
        if let Some(h) = self.stages.get(s as usize) {
            h.record_us(dur_us);
        }
    }

    /// The histogram behind a stage.
    pub fn stage(&self, s: StageId) -> &Histogram {
        // The array is sized by StageId::ALL so the lookup always hits; the
        // fallback keeps the accessor total without a panic path.
        match self.stages.get(s as usize) {
            Some(h) => h,
            None => &self.stages[0],
        }
    }

    /// The slowlog ring.
    pub fn slowlog(&self) -> &Slowlog {
        &self.slowlog
    }

    /// A consistent-enough point-in-time copy of everything (counters,
    /// gauges, stage summaries) for INFO/LATENCY rendering and bench output.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: CounterId::ALL
                .iter()
                .map(|&c| (c.name(), self.counter(c)))
                .collect(),
            gauges: GaugeId::ALL
                .iter()
                .map(|&g| (g.name(), self.gauge(g)))
                .collect(),
            stages: StageId::ALL
                .iter()
                .map(|&s| {
                    let h = self.stage(s);
                    StageSummary {
                        name: s.name(),
                        count: h.count(),
                        sum_us: h.sum_us(),
                        p50_us: h.quantile_us(0.50),
                        p99_us: h.quantile_us(0.99),
                        p999_us: h.quantile_us(0.999),
                        max_us: h.max_us(),
                    }
                })
                .collect(),
        }
    }
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

/// Point-in-time copy of a [`Registry`], consumed by the bench drivers and
/// the INFO/LATENCY renderers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// `(name, value)` for every counter, in [`CounterId::ALL`] order.
    pub counters: Vec<(&'static str, u64)>,
    /// `(name, value)` for every gauge, in [`GaugeId::ALL`] order.
    pub gauges: Vec<(&'static str, i64)>,
    /// One summary per stage, in [`StageId::ALL`] order.
    pub stages: Vec<StageSummary>,
}

impl MetricsSnapshot {
    /// Looks up a stage summary by name.
    pub fn stage(&self, name: &str) -> Option<&StageSummary> {
        self.stages.iter().find(|s| s.name == name)
    }

    /// Looks up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, v)| v)
    }
}

/// Summary of one stage histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageSummary {
    /// Stage name (see [`StageId::name`]).
    pub name: &'static str,
    /// Number of samples.
    pub count: u64,
    /// Sum of samples (µs).
    pub sum_us: u64,
    /// Approximate 50th percentile (µs).
    pub p50_us: u64,
    /// Approximate 99th percentile (µs).
    pub p99_us: u64,
    /// Approximate 99.9th percentile (µs).
    pub p999_us: u64,
    /// Largest sample (µs).
    pub max_us: u64,
}

impl StageSummary {
    /// Mean sample in microseconds (0 when empty).
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_us as f64 / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(bucket_for(0), 0);
        assert_eq!(bucket_for(1), 1);
        assert_eq!(bucket_for(2), 2);
        assert_eq!(bucket_for(3), 2);
        assert_eq!(bucket_for(4), 3);
        assert_eq!(bucket_for(1023), 10);
        assert_eq!(bucket_for(1024), 11);
        assert_eq!(bucket_for(u64::MAX), 64);
    }

    #[test]
    fn histogram_quantiles_and_stats() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record_us(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.sum_us(), 500_500);
        assert_eq!(h.max_us(), 1000);
        // p50 of 1..=1000 is ~500; bucket resolution is 2x, so accept the
        // covering bucket's upper bound.
        let p50 = h.quantile_us(0.50);
        assert!((500..=1023).contains(&p50), "p50 {p50}");
        let p999 = h.quantile_us(0.999);
        assert!((999..=1000).contains(&p999), "p999 {p999}");
        assert_eq!(h.quantile_us(1.0), 1000);
    }

    #[test]
    fn histogram_empty_is_all_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile_us(0.99), 0);
        assert_eq!(h.mean_us(), 0.0);
        assert!(h.nonzero_buckets().is_empty());
    }

    #[test]
    fn manual_clock_is_tick_driven() {
        let reg = Registry::new_manual();
        assert!(reg.clock().is_manual());
        let t0 = reg.now_us();
        assert_eq!(t0, 0);
        reg.clock().advance_us(250);
        assert_eq!(reg.now_us(), 250);
        // A span measured across ticks records exactly the ticked amount —
        // the determinism seam the sim/chaos scopes rely on.
        let start = reg.now_us();
        reg.clock().advance_us(1_000);
        reg.record_stage(StageId::Apply, reg.now_us() - start);
        assert_eq!(reg.stage(StageId::Apply).max_us(), 1_000);
    }

    #[test]
    fn wall_clock_advances() {
        let c = Clock::wall();
        let a = c.now_us();
        std::thread::sleep(std::time::Duration::from_millis(2));
        assert!(c.now_us() > a);
        c.advance_us(1_000_000); // no-op on wall clocks
        assert!(c.now_us() < 60_000_000);
    }

    #[test]
    fn counters_and_gauges_roundtrip() {
        let reg = Registry::new();
        reg.incr(CounterId::CommandsDispatched);
        reg.add(CounterId::CommandsDispatched, 4);
        assert_eq!(reg.counter(CounterId::CommandsDispatched), 5);
        reg.set_gauge(GaugeId::LeaseEpoch, 7);
        assert_eq!(reg.gauge(GaugeId::LeaseEpoch), 7);
        reg.set_gauge(GaugeId::LeaseEpoch, -1);
        assert_eq!(reg.gauge(GaugeId::LeaseEpoch), -1);
    }

    #[test]
    fn slowlog_threshold_and_ring_order() {
        let log = Slowlog::new();
        log.set_threshold_us(100);
        assert!(!log.observe(99, 0, || vec![b"FAST".to_vec()]));
        assert!(log.observe(100, 1, || vec![b"SLOW1".to_vec()]));
        assert!(log.observe(500, 2, || vec![b"SLOW2".to_vec()]));
        assert_eq!(log.len(), 2);
        let got = log.get(10);
        // Newest first.
        assert_eq!(got[0].args, vec![b"SLOW2".to_vec()]);
        assert_eq!(got[1].args, vec![b"SLOW1".to_vec()]);
        assert!(got[0].id > got[1].id);
        log.reset();
        assert!(log.is_empty());
        // Ids keep increasing across RESET.
        assert!(log.observe(101, 3, || vec![b"SLOW3".to_vec()]));
        assert!(log.get(1)[0].id > got[0].id);
    }

    #[test]
    fn slowlog_negative_threshold_disables_zero_records_all() {
        let log = Slowlog::new();
        log.set_threshold_us(-1);
        assert!(!log.observe(u64::MAX, 0, Vec::new));
        log.set_threshold_us(0);
        assert!(log.observe(0, 0, Vec::new));
    }

    #[test]
    fn slowlog_ring_caps_length() {
        let log = Slowlog::new();
        log.set_threshold_us(0);
        for i in 0..(Slowlog::DEFAULT_MAX_LEN as u64 + 50) {
            log.observe(i, 0, Vec::new);
        }
        assert_eq!(log.len(), Slowlog::DEFAULT_MAX_LEN);
        // The retained entries are the most recent ones.
        let newest = log.get(1);
        assert_eq!(newest[0].id, Slowlog::DEFAULT_MAX_LEN as u64 + 49);
    }

    #[test]
    fn snapshot_contains_every_id() {
        let reg = Registry::new();
        reg.record_stage(StageId::Engine, 42);
        reg.incr(CounterId::BatchesDispatched);
        let snap = reg.snapshot();
        assert_eq!(snap.counters.len(), CounterId::ALL.len());
        assert_eq!(snap.gauges.len(), GaugeId::ALL.len());
        assert_eq!(snap.stages.len(), StageId::ALL.len());
        let engine = snap.stage("engine").unwrap();
        assert_eq!(engine.count, 1);
        assert_eq!(engine.sum_us, 42);
        assert!(engine.p50_us >= 42 && engine.p50_us <= 63);
        assert_eq!(snap.counter("batches_dispatched"), Some(1));
        assert!(snap.stage("no_such_stage").is_none());
    }
}
