//! `cargo bench` entry point that regenerates every paper figure at reduced
//! duration (harness = false): Figure 4, Figure 5, Figure 6, Figure 7, the
//! §6.1.2.1 bandwidth sweep, and both ablations. The standalone binaries in
//! `src/bin/` run the same drivers at full duration.

use memorydb_bench::output::{kops, ms, Table};
use memorydb_bench::{extras, fig4, fig5, fig6, fig7};
use memorydb_sim::SystemKind;

fn main() {
    println!("=== MemoryDB paper figure reproduction (reduced durations) ===\n");

    // ---- Figure 4 ----------------------------------------------------
    for (panel, read_only) in [("4a read-only", true), ("4b write-only", false)] {
        let rows = fig4::run(read_only, 0.8);
        let mut t = Table::new(&["instance", "redis", "memorydb"]);
        for r in &rows {
            t.row(vec![r.instance.into(), kops(r.redis), kops(r.memorydb)]);
        }
        println!("Figure {panel} — max throughput (op/s)\n{}", t.render());
    }

    // ---- Figure 5 ----------------------------------------------------
    for (panel, w) in [
        ("5a read-only", fig5::Workload::ReadOnly),
        ("5b write-only", fig5::Workload::WriteOnly),
        ("5c mixed 80/20", fig5::Workload::Mixed),
    ] {
        let redis = fig5::run(SystemKind::Redis, w, 0.6);
        let memdb = fig5::run(SystemKind::MemoryDb, w, 0.6);
        let mut t = Table::new(&[
            "offered",
            "redis p50",
            "redis p99",
            "memdb p50",
            "memdb p99",
        ]);
        for (r, m) in redis.iter().zip(&memdb) {
            t.row(vec![
                kops(r.offered),
                ms(r.p50_ms),
                ms(r.p99_ms),
                ms(m.p50_ms),
                ms(m.p99_ms),
            ]);
        }
        println!(
            "Figure {panel} — latency (ms) vs offered load, 16xlarge\n{}",
            t.render()
        );
    }

    // ---- Figure 6 ----------------------------------------------------
    let rows = fig6::run(fig6::Fig6Params::default());
    let mut t = Table::new(&["t(s)", "op/s", "p100 ms", "swap %", "regime"]);
    for r in rows.iter().step_by(5) {
        t.row(vec![
            format!("{:.0}", r.t_s),
            format!("{:.0}", r.throughput),
            ms(r.p100_ms),
            format!("{:.1}", r.swap_pct),
            format!("{:?}", r.pressure),
        ]);
    }
    println!(
        "Figure 6 — Redis BGSave under memory pressure (fork at t=10)\n{}",
        t.render()
    );

    // ---- Figure 7 (real stack, short run) ------------------------------
    let rows = fig7::run(fig7::Fig7Params {
        duration_s: 6,
        snapshot_at_s: 2,
        read_clients: 10,
        write_clients: 4,
        prefill_keys: 1_000,
        value_bytes: 500,
    });
    let mut t = Table::new(&["t(s)", "op/s", "avg ms", "p100 ms", "snapshotting"]);
    for r in &rows {
        t.row(vec![
            r.t_s.to_string(),
            format!("{:.0}", r.throughput),
            ms(r.avg_ms),
            ms(r.p100_ms),
            if r.snapshotting {
                "yes".into()
            } else {
                "".into()
            },
        ]);
    }
    println!(
        "Figure 7 — live MemoryDB during an off-box snapshot (real stack)\n{}",
        t.render()
    );

    // ---- §6.1.2.1 write bandwidth --------------------------------------
    let rows = extras::write_bandwidth(0.5);
    let mut t = Table::new(&["value", "op/s", "MB/s"]);
    for r in &rows {
        t.row(vec![
            format!("{}B", r.value_bytes),
            kops(r.ops),
            format!("{:.1}", r.mb_per_s),
        ]);
    }
    println!(
        "§6.1.2.1 — single-shard write bandwidth (MemoryDB)\n{}",
        t.render()
    );

    // ---- Durability ablation -------------------------------------------
    let rows = extras::durability_ablation(100);
    let mut t = Table::new(&["system", "acked", "lost"]);
    for r in &rows {
        t.row(vec![
            r.system.into(),
            r.acknowledged.to_string(),
            r.lost.to_string(),
        ]);
    }
    println!(
        "Durability ablation — acknowledged writes lost across failover\n{}",
        t.render()
    );

    // ---- Recovery MTTR ---------------------------------------------------
    let rows = extras::recovery_mttr(&[0, 2_000, 8_000], 1_000);
    let mut t = Table::new(&["log suffix", "restore ms", "keys"]);
    for r in &rows {
        t.row(vec![
            r.log_suffix.to_string(),
            format!("{:.1}", r.restore.as_secs_f64() * 1000.0),
            r.keys.to_string(),
        ]);
    }
    println!("Recovery MTTR — restore time vs log suffix\n{}", t.render());

    // ---- §4.1 lease ablation (real stack, small) -----------------------
    {
        use memorydb_core::{ClusterBus, NodeIdGen, Shard, ShardConfig};
        use memorydb_engine::{cmd, Frame, SessionState};
        use memorydb_objectstore::ObjectStore;
        use std::sync::Arc;
        use std::time::{Duration, Instant};
        let mut t = Table::new(&["lease ms", "crash failover ms"]);
        for lease_ms in [100u64, 400] {
            let cfg = ShardConfig {
                lease: Duration::from_millis(lease_ms),
                renew_interval: Duration::from_millis(lease_ms / 3),
                backoff: Duration::from_millis(lease_ms * 3 / 2),
                tick: Duration::from_millis(5),
                ..ShardConfig::default()
            };
            let shard = Shard::bootstrap(
                lease_ms as u32,
                cfg,
                Arc::new(ObjectStore::new()),
                Arc::new(ClusterBus::new()),
                Arc::new(NodeIdGen::new()),
                vec![(0, 16383)],
                1,
            );
            let primary = shard.wait_for_primary(Duration::from_secs(20)).unwrap();
            let mut session = SessionState::new();
            primary.handle(&mut session, &cmd(["SET", "k", "v"]));
            assert!(shard.wait_replicas_caught_up(Duration::from_secs(10)));
            let t0 = Instant::now();
            primary.crash();
            loop {
                if let Some(p) = shard.primary() {
                    if p.id != primary.id {
                        let mut s = SessionState::new();
                        if p.handle(&mut s, &cmd(["SET", "probe", "1"])) == Frame::ok() {
                            break;
                        }
                    }
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            t.row(vec![
                lease_ms.to_string(),
                format!("{:.0}", t0.elapsed().as_secs_f64() * 1000.0),
            ]);
        }
        println!(
            "§4.1 lease ablation — failover window scales with the lease\n{}",
            t.render()
        );
    }

    println!("=== done ===");
}
