//! Criterion microbenchmarks of the building blocks: engine command
//! dispatch, skiplist, RESP codec, HLL, CRC64, snapshot (de)serialization,
//! effect encoding, and the linearizability checker.

use bytes::{Bytes, BytesMut};
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use memorydb_engine::ds::zset::ZSet;
use memorydb_engine::exec::{Engine, Role, SessionState};
use memorydb_engine::{cmd, rdb};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn engine_commands(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine");
    group.throughput(Throughput::Elements(1));

    let mut e = Engine::new(Role::Primary);
    e.set_time_ms(1);
    let mut s = SessionState::new();
    for i in 0..10_000 {
        e.execute(
            &mut s,
            &cmd(["SET", &format!("key:{i}"), "value-payload-100b"]),
        );
    }
    let get = cmd(["GET", "key:5000"]);
    group.bench_function("get_hit", |b| {
        b.iter(|| black_box(e.execute(&mut s, black_box(&get))))
    });
    let get_miss = cmd(["GET", "missing-key"]);
    group.bench_function("get_miss", |b| {
        b.iter(|| black_box(e.execute(&mut s, black_box(&get_miss))))
    });
    let set = cmd(["SET", "key:5000", "new-value"]);
    group.bench_function("set_overwrite", |b| {
        b.iter(|| black_box(e.execute(&mut s, black_box(&set))))
    });
    let incr = cmd(["INCR", "counter"]);
    group.bench_function("incr", |b| {
        b.iter(|| black_box(e.execute(&mut s, black_box(&incr))))
    });
    e.execute(
        &mut s,
        &cmd(["ZADD", "zb", "1", "m1", "2", "m2", "3", "m3"]),
    );
    let zrange = cmd(["ZRANGE", "zb", "0", "-1"]);
    group.bench_function("zrange_small", |b| {
        b.iter(|| black_box(e.execute(&mut s, black_box(&zrange))))
    });
    group.finish();
}

fn skiplist(c: &mut Criterion) {
    let mut group = c.benchmark_group("zset_skiplist");
    group.bench_function("insert_100k_then_rank", |b| {
        b.iter_with_setup(
            || {
                let mut z = ZSet::new();
                let mut rng = StdRng::seed_from_u64(1);
                for i in 0..100_000u32 {
                    z.insert(Bytes::from(format!("member:{i}")), rng.gen_range(0.0..1e6));
                }
                z
            },
            |z| black_box(z.rank(b"member:5000")),
        )
    });
    let mut z = ZSet::new();
    let mut rng = StdRng::seed_from_u64(2);
    for i in 0..100_000u32 {
        z.insert(Bytes::from(format!("member:{i}")), rng.gen_range(0.0..1e6));
    }
    group.bench_function("rank_in_100k", |b| {
        b.iter(|| black_box(z.rank(black_box(b"member:77777"))))
    });
    group.bench_function("by_rank_in_100k", |b| {
        b.iter(|| black_box(z.by_rank(black_box(50_000))))
    });
    group.bench_function("insert_remove_in_100k", |b| {
        b.iter(|| {
            z.insert(Bytes::from_static(b"bench-probe"), 123.0);
            z.remove(b"bench-probe")
        })
    });
    group.finish();
}

fn resp_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("resp");
    let frame = memorydb_resp::Frame::command(["SET", "key:123456", "value-payload-of-100-bytes"]);
    let mut buf = BytesMut::new();
    memorydb_resp::encode(&frame, &mut buf);
    let encoded = buf.freeze();
    group.throughput(Throughput::Bytes(encoded.len() as u64));
    group.bench_function("encode_set", |b| {
        b.iter(|| {
            let mut out = BytesMut::with_capacity(128);
            memorydb_resp::encode(black_box(&frame), &mut out);
            black_box(out)
        })
    });
    group.bench_function("decode_set", |b| {
        b.iter(|| black_box(memorydb_resp::decode(black_box(&encoded)).unwrap()))
    });
    group.finish();
}

fn hll(c: &mut Criterion) {
    let mut group = c.benchmark_group("hyperloglog");
    let mut h = memorydb_engine::ds::hll::Hll::new();
    let mut i = 0u64;
    group.bench_function("pfadd", |b| {
        b.iter(|| {
            i += 1;
            black_box(h.add(&i.to_le_bytes()))
        })
    });
    for j in 0..100_000u64 {
        h.add(&j.to_le_bytes());
    }
    group.bench_function("pfcount_100k", |b| b.iter(|| black_box(h.count())));
    group.finish();
}

fn snapshot_roundtrip(c: &mut Criterion) {
    let mut group = c.benchmark_group("rdb");
    let mut e = Engine::new(Role::Primary);
    let mut s = SessionState::new();
    for i in 0..10_000 {
        e.execute(
            &mut s,
            &cmd(["SET", &format!("key:{i}"), "0123456789abcdef"]),
        );
    }
    let snapshot = rdb::dump(&e.db);
    group.throughput(Throughput::Bytes(snapshot.len() as u64));
    group.bench_function("dump_10k_keys", |b| b.iter(|| black_box(rdb::dump(&e.db))));
    group.bench_function("load_10k_keys", |b| {
        b.iter(|| black_box(rdb::load(black_box(&snapshot)).unwrap()))
    });
    group.bench_function("crc64_1mb", |b| {
        let data = vec![0xA5u8; 1 << 20];
        b.iter(|| black_box(rdb::crc64(black_box(&data))))
    });
    group.finish();
}

fn effects(c: &mut Criterion) {
    let mut group = c.benchmark_group("effects");
    let batch: Vec<Vec<Bytes>> = (0..8)
        .map(|i| cmd(["SET", &format!("k{i}"), "value-payload-of-100-bytes"]))
        .collect();
    group.bench_function("encode_batch_8", |b| {
        b.iter(|| {
            black_box(memorydb_engine::effects::encode_effect_batch(black_box(
                &batch,
            )))
        })
    });
    let encoded = memorydb_engine::effects::encode_effect_batch(&batch);
    group.bench_function("decode_batch_8", |b| {
        b.iter(|| {
            black_box(memorydb_engine::effects::decode_effect_batch(black_box(
                &encoded,
            )))
        })
    });
    group.finish();
}

fn checker(c: &mut Criterion) {
    use memorydb_consistency::{check, KvInput, KvModel, KvOutput, Operation};
    let mut group = c.benchmark_group("linearizability");
    // A 500-op mostly-sequential history over 8 keys.
    let mut ops = Vec::new();
    let mut t = 0u64;
    let mut values: std::collections::HashMap<String, String> = Default::default();
    let mut rng = StdRng::seed_from_u64(3);
    for i in 0..500 {
        let key = format!("k{}", i % 8);
        if rng.gen_bool(0.5) {
            let v = i.to_string();
            values.insert(key.clone(), v.clone());
            ops.push(Operation {
                client: 0,
                input: KvInput::Set(key, v),
                output: KvOutput::Ok,
                call: t,
                ret: t + 1,
            });
        } else {
            ops.push(Operation {
                client: 0,
                input: KvInput::Get(key.clone()),
                output: KvOutput::Value(values.get(&key).cloned()),
                call: t,
                ret: t + 1,
            });
        }
        t += 2;
    }
    group.bench_function("check_500_sequential", |b| {
        b.iter(|| {
            black_box(check(
                &KvModel,
                ops.clone(),
                std::time::Duration::from_secs(10),
            ))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    engine_commands,
    skiplist,
    resp_codec,
    hll,
    snapshot_roundtrip,
    effects,
    checker
);
criterion_main!(benches);
