//! Table and CSV output helpers shared by all figure drivers.

use std::io::Write;
use std::path::Path;

/// A simple column-aligned table printer.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given headers.
    pub fn new(headers: &[&str]) -> Table {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders the table as an aligned string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], widths: &[usize], out: &mut String| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                out.push_str(&format!("{:>width$}", cell, width = widths[i]));
            }
            out.push('\n');
        };
        line(&self.headers, &widths, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            line(row, &widths, &mut out);
        }
        out
    }

    /// Writes the table as CSV to `path` (creating parent directories).
    pub fn write_csv(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let mut f = std::fs::File::create(path)?;
        writeln!(f, "{}", self.headers.join(","))?;
        for row in &self.rows {
            writeln!(f, "{}", row.join(","))?;
        }
        Ok(())
    }
}

/// Formats ops/sec as thousands with one decimal, e.g. `512.3K`.
pub fn kops(v: f64) -> String {
    format!("{:.1}K", v / 1000.0)
}

/// Formats milliseconds with two decimals.
pub fn ms(v: f64) -> String {
    format!("{v:.2}")
}

/// Directory where figure CSVs land.
pub fn results_dir() -> std::path::PathBuf {
    std::path::PathBuf::from(
        std::env::var("MEMORYDB_RESULTS_DIR").unwrap_or_else(|_| "results".into()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "12345".into()]);
        let rendered = t.render();
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[2].ends_with("1"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn csv_roundtrip() {
        let mut t = Table::new(&["x", "y"]);
        t.row(vec!["1".into(), "2".into()]);
        let dir = std::env::temp_dir().join("memorydb-bench-test");
        let path = dir.join("t.csv");
        t.write_csv(&path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "x,y\n1,2\n");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn formatters() {
        assert_eq!(kops(512_300.0), "512.3K");
        assert_eq!(ms(1.2375), "1.24");
    }
}
