//! Closed-loop RESP-over-TCP throughput: the proof harness for the
//! Enhanced-IO server (multiplexed IO threads + pipelined batch execution
//! + txlog group commit).
//!
//! Each case runs K client connections, each keeping a pipeline of P SET
//! commands outstanding against a real [`memorydb_server::Server`] over
//! loopback TCP, in either IO mode. Alongside throughput it reports the
//! txlog append-call count over the measurement window: with group commit,
//! one quorum ack covers a whole pipeline, so `ops/append` should track P.

use memorydb_core::{ClusterBus, NodeIdGen, Shard, ShardConfig};
use memorydb_metrics::{CounterId, MetricsSnapshot};
use memorydb_objectstore::ObjectStore;
use memorydb_server::{BlockingClient, IoMode, Server, ServerOptions};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

/// One (mode, connections, pipeline-depth, stripe-count) point of the sweep.
#[derive(Debug, Clone, Copy)]
pub struct TcpCase {
    pub mode: IoMode,
    pub connections: usize,
    pub pipeline: usize,
    /// Engine stripe count for the case's shard (DESIGN.md §12). 1 is the
    /// pre-striping single-mutex configuration, the scaling baseline.
    pub stripes: usize,
}

/// Sweep parameters.
#[derive(Debug, Clone)]
pub struct TcpParams {
    pub cases: Vec<TcpCase>,
    /// Measurement window per case, seconds.
    pub duration_s: f64,
    /// SET payload size, bytes.
    pub value_bytes: usize,
    /// Hot-key workload: draw keys from one shared, skewed (approximately
    /// Zipfian) distribution instead of disjoint per-connection key sets.
    /// Skewed keys concentrate on few stripes, so this exposes the
    /// contended end of the striping win.
    pub zipfian: bool,
    /// Leadership lease for the bench shard. Large sweeps oversubscribe
    /// the CPU with client threads, and an aggressive lease would let the
    /// primary's renewal starve and demote it mid-measurement; size this
    /// to the load (full sweep uses 5s).
    pub lease: Duration,
    /// Measurement windows per case; the best window is reported, which
    /// filters out scheduler noise on small machines.
    pub windows: usize,
}

impl TcpParams {
    /// The full sweep the benchmark binary runs by default. Stripes 1 vs 16
    /// at every point is the before/after of the §12 lock striping.
    pub fn full() -> TcpParams {
        TcpParams {
            cases: cross(
                &[IoMode::ThreadPerConnection, IoMode::Multiplexed],
                &[1, 8, 64],
                &[1, 16, 64],
                &[1, 16],
            ),
            duration_s: 1.0,
            value_bytes: 64,
            zipfian: false,
            lease: Duration::from_secs(5),
            windows: 3,
        }
    }

    /// A seconds-long sanity sweep for `cargo test` / CI. Includes K=8 so
    /// the cross-connection coalescing gate has a case to bite on, plus a
    /// 1-stripe twin of the multiplexed K=8 point so the stripe-scaling
    /// gate has a baseline to compare against.
    pub fn smoke() -> TcpParams {
        let mut cases = cross(
            &[IoMode::ThreadPerConnection, IoMode::Multiplexed],
            &[1, 8],
            &[1, 8],
            &[16],
        );
        cases.push(TcpCase {
            mode: IoMode::Multiplexed,
            connections: 8,
            pipeline: 8,
            stripes: 1,
        });
        TcpParams {
            cases,
            duration_s: 0.2,
            value_bytes: 16,
            zipfian: false,
            lease: Duration::from_millis(600),
            windows: 1,
        }
    }
}

/// Cartesian product of connection counts × pipeline depths × stripe counts
/// × modes. Modes alternate innermost so the two implementations of each
/// (K, P, stripes) point run back-to-back — fairer when the host throttles
/// sustained CPU use.
pub fn cross(
    modes: &[IoMode],
    conns: &[usize],
    pipelines: &[usize],
    stripes: &[usize],
) -> Vec<TcpCase> {
    let mut cases = Vec::new();
    for &connections in conns {
        for &pipeline in pipelines {
            for &stripes in stripes {
                for &mode in modes {
                    cases.push(TcpCase {
                        mode,
                        connections,
                        pipeline,
                        stripes,
                    });
                }
            }
        }
    }
    cases
}

/// One stage's latency summary, lifted from a [`MetricsSnapshot`] after a
/// case finishes (§10 observability).
#[derive(Debug, Clone)]
pub struct StageLine {
    pub name: &'static str,
    pub count: u64,
    pub mean_us: f64,
    pub p50_us: u64,
    pub p99_us: u64,
    pub max_us: u64,
    pub sum_us: u64,
}

/// One measured point.
#[derive(Debug, Clone)]
pub struct TcpRow {
    pub mode: &'static str,
    pub connections: usize,
    pub pipeline: usize,
    /// Engine stripe count the case ran with.
    pub stripes: usize,
    /// Achieved SETs per second over the measurement window.
    pub ops: f64,
    /// Txlog append calls (= quorum acks) during the window.
    pub append_calls: u64,
    /// Engine batches dispatched during the window. The commit pipeline
    /// coalesces staged batches from many connections into single appends,
    /// so `append_calls < batches` whenever cross-connection group commit
    /// is working.
    pub batches: u64,
    /// Ops amortized per quorum ack; tracks the pipeline depth when group
    /// commit is working.
    pub ops_per_append: f64,
    /// Log appends amortized per acknowledged command — the paper-facing
    /// inverse of `ops_per_append` (lower is better; 1.0 means every
    /// command paid its own quorum round-trip).
    pub appends_per_command: f64,
    /// Per-stage latency attribution over the whole case (warmup included):
    /// every sampled stage from the node and txlog registries.
    pub stages: Vec<StageLine>,
    /// How much of the end-to-end batch span the stage breakdown accounts
    /// for: `(engine + durability) / e2e` by summed microseconds. The
    /// remaining sub-spans (lock hold, apply) nest inside `engine`, so a
    /// healthy pipeline sits just under 1.0.
    pub stage_sum_over_e2e: f64,
}

impl TcpRow {
    /// Looks up one attributed stage by name.
    pub fn stage(&self, name: &str) -> Option<&StageLine> {
        self.stages.iter().find(|s| s.name == name)
    }
}

/// Stages every case must sample, given its IO mode. `io_read` is only
/// recorded by the multiplexed sweep: the thread-per-conn path reads
/// blocking, so its read time is client think time, not server work.
pub fn required_stages(mode: &str) -> Vec<&'static str> {
    let mut required = vec![
        "io_write",
        "parse",
        "engine",
        "engine_lock_hold",
        "stripe_lock_hold",
        "apply",
        "commit_queue_wait",
        "flush_window",
        "durability",
        "e2e",
        "log_append",
        "quorum_ack",
    ];
    if mode == "multiplexed" {
        required.insert(0, "io_read");
    }
    required
}

/// Validates a row's stage attribution: every required stage sampled, and
/// `engine + durability` accounting for the end-to-end span within
/// tolerance. Returns human-readable problems; empty means the row passes.
pub fn attribution_problems(row: &TcpRow) -> Vec<String> {
    let mut problems = Vec::new();
    for name in required_stages(row.mode) {
        if row.stage(name).is_none() {
            problems.push(format!(
                "{} K={} P={} S={}: stage `{name}` has no samples",
                row.mode, row.connections, row.pipeline, row.stripes
            ));
        }
    }
    if !(0.80..=1.02).contains(&row.stage_sum_over_e2e) {
        problems.push(format!(
            "{} K={} P={} S={}: engine+commit_queue_wait+durability accounts for \
             {:.3} of e2e (want 0.80..=1.02)",
            row.mode, row.connections, row.pipeline, row.stripes, row.stage_sum_over_e2e
        ));
    }
    problems
}

/// Validates that cross-connection group commit actually coalesced: on the
/// multiplexed path with enough concurrent connections (K ≥ 8) the
/// committer must have merged staged batches, so the window's append calls
/// must be strictly fewer than its dispatched batches. Empty means pass.
pub fn coalescing_problems(rows: &[TcpRow]) -> Vec<String> {
    let mut problems = Vec::new();
    for r in rows {
        if r.mode == "multiplexed" && r.connections >= 8 && r.append_calls >= r.batches {
            problems.push(format!(
                "{} K={} P={} S={}: no cross-connection coalescing observed \
                 ({} appends for {} batches)",
                r.mode, r.connections, r.pipeline, r.stripes, r.append_calls, r.batches
            ));
        }
    }
    problems
}

/// True when the host has enough cores for stripe scaling to be measurable.
/// On 1-2 core machines every stripe shares one CPU, so the ≥1.5× gate
/// would only measure scheduler noise; the smoke gate skips it there.
pub fn scaling_gate_active() -> bool {
    std::thread::available_parallelism().is_ok_and(|n| n.get() >= 4)
}

/// Validates the §12 scaling claim: for every multiplexed K≥8 point that
/// was measured at both 1 stripe and 16 stripes (same K, P, workload), the
/// striped configuration must deliver ≥1.5× the ops/s of the single-mutex
/// baseline. Empty when the gate is inactive ([`scaling_gate_active`]) or
/// no such pair exists in the sweep.
pub fn scaling_problems(rows: &[TcpRow]) -> Vec<String> {
    let mut problems = Vec::new();
    if !scaling_gate_active() {
        return problems;
    }
    for base in rows {
        if base.mode != "multiplexed" || base.connections < 8 || base.stripes != 1 {
            continue;
        }
        let striped = rows.iter().find(|r| {
            r.mode == base.mode
                && r.connections == base.connections
                && r.pipeline == base.pipeline
                && r.stripes == 16
        });
        if let Some(s) = striped {
            if s.ops < 1.5 * base.ops {
                problems.push(format!(
                    "{} K={} P={}: 16-stripe ops/s must be >=1.5x the 1-stripe \
                     baseline, got {:.0} vs {:.0} ({:.2}x)",
                    base.mode,
                    base.connections,
                    base.pipeline,
                    s.ops,
                    base.ops,
                    s.ops / base.ops.max(1.0)
                ));
            }
        }
    }
    problems
}

pub fn mode_name(mode: IoMode) -> &'static str {
    match mode {
        IoMode::Multiplexed => "multiplexed",
        IoMode::ThreadPerConnection => "thread-per-conn",
    }
}

/// Runs the sweep. Each case gets a fresh single-node shard and server so
/// cases cannot interfere.
pub fn run(params: &TcpParams) -> Vec<TcpRow> {
    params.cases.iter().map(|c| run_case(c, params)).collect()
}

fn run_case(case: &TcpCase, params: &TcpParams) -> TcpRow {
    let lease = params.lease;
    let shard = Shard::bootstrap(
        0,
        ShardConfig {
            lease,
            renew_interval: lease / 5,
            backoff: lease + lease / 10,
            engine_stripes: case.stripes,
            ..ShardConfig::default()
        },
        Arc::new(ObjectStore::new()),
        Arc::new(ClusterBus::new()),
        Arc::new(NodeIdGen::new()),
        vec![(0, 16383)],
        0,
    );
    // The first election only starts after a full backoff.
    let primary = shard
        .wait_for_primary(3 * lease + Duration::from_secs(5))
        .expect("bench shard must elect a primary");
    let mut server = Server::start_with(
        Arc::clone(&primary),
        "127.0.0.1:0",
        ServerOptions {
            mode: case.mode,
            io_threads: 0,
        },
    )
    .expect("bench server must start");
    let addr = server.local_addr;

    let stop = Arc::new(AtomicBool::new(false));
    let ops = Arc::new(AtomicU64::new(0));
    // +1 for the measuring thread.
    let barrier = Arc::new(Barrier::new(case.connections + 1));
    let value = "x".repeat(params.value_bytes);

    let mut workers = Vec::with_capacity(case.connections);
    for conn_id in 0..case.connections {
        let stop = Arc::clone(&stop);
        let ops = Arc::clone(&ops);
        let barrier = Arc::clone(&barrier);
        let value = value.clone();
        let depth = case.pipeline;
        let zipfian = params.zipfian;
        workers.push(std::thread::spawn(move || {
            let mut client = BlockingClient::connect(addr).expect("bench client connect");
            barrier.wait();
            let mut i = 0u64;
            // Per-worker xorshift64* for the skewed key draw; seeded from
            // the connection id so streams differ but stay reproducible.
            let mut rng: u64 = 0x9E37_79B9_7F4A_7C15_u64.wrapping_mul(conn_id as u64 + 1);
            while !stop.load(Ordering::Relaxed) {
                let batch: Vec<Vec<String>> = (0..depth)
                    .map(|j| {
                        let key = if zipfian {
                            // Approximate Zipf by cubing a uniform draw:
                            // low indices get most of the mass (the top
                            // key sees ~10% of ops at N=1024). Every
                            // connection shares the `z` keyspace, so hot
                            // keys pile onto few stripes by design.
                            rng ^= rng >> 12;
                            rng ^= rng << 25;
                            rng ^= rng >> 27;
                            let u = (rng.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64
                                / (1u64 << 53) as f64;
                            format!("z{}", (1024.0 * u * u * u) as usize)
                        } else {
                            format!("c{conn_id}:{}", (i + j as u64) % 1024)
                        };
                        vec!["SET".into(), key, value.clone()]
                    })
                    .collect();
                let replies = client.pipeline(batch).expect("bench pipeline");
                assert_eq!(replies.len(), depth);
                for r in &replies {
                    // Only acknowledged writes count as ops; anything else
                    // (MOVED after a demotion, CLUSTERDOWN) voids the case.
                    assert!(
                        matches!(r, memorydb_engine::Frame::Simple(s) if s == "OK"),
                        "bench SET failed: {r:?}"
                    );
                }
                i += depth as u64;
                ops.fetch_add(depth as u64, Ordering::Relaxed);
            }
        }));
    }

    barrier.wait();
    // Short warmup so connect storms and first-touch allocation stay out
    // of the measured windows.
    std::thread::sleep(Duration::from_secs_f64(params.duration_s * 0.25));
    let window = Duration::from_secs_f64(params.duration_s);

    // Several back-to-back windows; keep the best one. The shard, server,
    // and clients stay hot across windows, so the max is the steady state
    // with the least scheduler interference.
    let mut best: Option<(f64, u64, u64, u64)> = None;
    for _ in 0..params.windows.max(1) {
        let t0 = Instant::now();
        let ops0 = ops.load(Ordering::Relaxed);
        let appends0 = shard.ctx().log.append_calls();
        let batches0 = primary.metrics().counter(CounterId::BatchesDispatched);
        std::thread::sleep(window);
        let done = ops.load(Ordering::Relaxed) - ops0;
        let append_calls = shard.ctx().log.append_calls() - appends0;
        let batches = primary.metrics().counter(CounterId::BatchesDispatched) - batches0;
        let rate = done as f64 / t0.elapsed().as_secs_f64();
        let better = match best {
            Some((best_rate, _, _, _)) => rate > best_rate,
            None => true,
        };
        if better {
            best = Some((rate, done, append_calls, batches));
        }
    }
    stop.store(true, Ordering::Relaxed);
    for w in workers {
        w.join().expect("bench worker failed");
    }
    server.stop();

    // Stage attribution: both registries are cumulative over the case
    // (warmup + all windows), which is what latency percentiles want.
    let node_snap = primary.metrics().snapshot();
    let log_snap = shard.ctx().log.metrics().snapshot();
    let mut stages = Vec::new();
    for snap in [&node_snap, &log_snap] {
        for s in &snap.stages {
            if s.count > 0 {
                stages.push(StageLine {
                    name: s.name,
                    count: s.count,
                    mean_us: s.mean_us(),
                    p50_us: s.p50_us,
                    p99_us: s.p99_us,
                    max_us: s.max_us,
                    sum_us: s.sum_us,
                });
            }
        }
    }
    let sum_us = |snap: &MetricsSnapshot, name: &str| snap.stage(name).map_or(0, |s| s.sum_us);
    let e2e_sum = sum_us(&node_snap, "e2e");
    // Only the top-level spans: lock hold and apply nest inside `engine`,
    // io/parse happen outside the batch's e2e span, and the §11 pipeline
    // tiles the rest of e2e as engine → commit_queue_wait → durability.
    let accounted = sum_us(&node_snap, "engine")
        + sum_us(&node_snap, "commit_queue_wait")
        + sum_us(&node_snap, "durability");
    let stage_sum_over_e2e = if e2e_sum == 0 {
        0.0
    } else {
        accounted as f64 / e2e_sum as f64
    };

    let (rate, done, append_calls, batches) = best.expect("at least one window");
    TcpRow {
        mode: mode_name(case.mode),
        connections: case.connections,
        pipeline: case.pipeline,
        stripes: case.stripes,
        ops: rate,
        append_calls,
        batches,
        ops_per_append: if append_calls == 0 {
            0.0
        } else {
            done as f64 / append_calls as f64
        },
        appends_per_command: if done == 0 {
            0.0
        } else {
            append_calls as f64 / done as f64
        },
        stages,
        stage_sum_over_e2e,
    }
}

/// Hand-rolled JSON encoding of the sweep (no serde dependency needed for
/// a flat numeric table).
pub fn to_json(params: &TcpParams, rows: &[TcpRow]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"bench\": \"tcp_throughput\",\n");
    s.push_str(&format!("  \"duration_s\": {},\n", params.duration_s));
    s.push_str(&format!("  \"value_bytes\": {},\n", params.value_bytes));
    s.push_str(&format!("  \"zipfian\": {},\n", params.zipfian));
    s.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let stages = r
            .stages
            .iter()
            .map(|st| {
                format!(
                    "\"{}\": {{\"count\": {}, \"mean_us\": {:.1}, \"p50_us\": {}, \
                     \"p99_us\": {}, \"max_us\": {}}}",
                    st.name, st.count, st.mean_us, st.p50_us, st.p99_us, st.max_us
                )
            })
            .collect::<Vec<_>>()
            .join(", ");
        s.push_str(&format!(
            "    {{\"mode\": \"{}\", \"connections\": {}, \"pipeline\": {}, \
             \"stripes\": {}, \
             \"ops_per_s\": {:.1}, \"append_calls\": {}, \"batches\": {}, \
             \"ops_per_append\": {:.2}, \"appends_per_command\": {:.4}, \
             \"stage_sum_over_e2e\": {:.3}, \"stages\": {{{}}}}}{}\n",
            r.mode,
            r.connections,
            r.pipeline,
            r.stripes,
            r.ops,
            r.append_calls,
            r.batches,
            r.ops_per_append,
            r.appends_per_command,
            r.stage_sum_over_e2e,
            stages,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The `--smoke` sweep, run as part of the normal test suite: every
    /// case must serve traffic and group commit must amortize appends.
    #[test]
    fn smoke_sweep_serves_and_group_commits() {
        let params = TcpParams::smoke();
        let rows = run(&params);
        assert_eq!(rows.len(), params.cases.len());
        for r in &rows {
            assert!(r.ops > 0.0, "case {r:?} made no progress");
            assert!(r.append_calls > 0, "case {r:?} recorded no appends");
        }
        // Group commit: at pipeline depth 8 each append must cover several
        // SETs (exact depth depends on how bursts land in the window).
        let deep = rows
            .iter()
            .find(|r| r.mode == "multiplexed" && r.pipeline == 8)
            .unwrap();
        assert!(
            deep.ops_per_append > 2.0,
            "pipelined batches should group-commit, got {:.2} ops/append",
            deep.ops_per_append
        );
        // Cross-connection coalescing: with K=8 connections the committer
        // must merge staged batches across connections into fewer appends.
        let problems = coalescing_problems(&rows);
        assert!(
            problems.is_empty(),
            "coalescing gate failed:\n{}",
            problems.join("\n")
        );
        // Stripe scaling (§12): the multiplexed K=8 point runs at both 1
        // and 16 stripes; on a machine with cores to use, 16 stripes must
        // beat the single-mutex baseline by >=1.5x.
        if scaling_gate_active() {
            let problems = scaling_problems(&rows);
            assert!(
                problems.is_empty(),
                "stripe scaling gate failed:\n{}",
                problems.join("\n")
            );
        } else {
            eprintln!("stripe scaling gate skipped: fewer than 4 cores available");
        }
        // Stage attribution (§10): every declared stage sampled and the
        // engine+durability sum consistent with the e2e span, per case.
        for r in &rows {
            let problems = attribution_problems(r);
            assert!(
                problems.is_empty(),
                "stage attribution failed:\n{}",
                problems.join("\n")
            );
        }
        // The in-process registries never see socket IO for stages the
        // server did not run: thread-per-conn cases must not claim io_read.
        let tpc = rows.iter().find(|r| r.mode == "thread-per-conn").unwrap();
        assert!(
            tpc.stage("io_read").is_none(),
            "blocking reads are client think time"
        );
        // JSON encoding stays parseable in shape.
        let json = to_json(&params, &rows);
        assert!(json.contains("\"bench\": \"tcp_throughput\""));
        assert!(json.contains("\"appends_per_command\""));
        assert!(json.contains("\"batches\""));
        assert!(json.contains("\"stripes\": 16"));
        assert!(json.contains("\"stripes\": 1,"));
        assert!(json.contains("\"zipfian\": false"));
        assert!(json.contains("\"stage_sum_over_e2e\""));
        assert!(json.contains("\"e2e\": {\"count\""));
        assert!(json.contains("\"stripe_lock_hold\": {\"count\""));
        assert_eq!(json.matches("\"mode\"").count(), rows.len());
    }

    /// Full-size comparison (ignored by default: ~30s of wall clock).
    #[test]
    #[ignore = "heavy: full 64-connection sweep"]
    fn full_sweep_multiplexed_holds_64_connections() {
        let params = TcpParams {
            cases: cross(
                &[IoMode::ThreadPerConnection, IoMode::Multiplexed],
                &[64],
                &[1, 16],
                &[16],
            ),
            duration_s: 1.0,
            value_bytes: 64,
            zipfian: false,
            lease: Duration::from_secs(5),
            windows: 3,
        };
        let rows = run(&params);
        for r in &rows {
            assert!(r.ops > 0.0, "case {r:?} made no progress");
        }
        let mux16 = rows
            .iter()
            .find(|r| r.mode == "multiplexed" && r.pipeline == 16)
            .unwrap();
        let mux1 = rows
            .iter()
            .find(|r| r.mode == "multiplexed" && r.pipeline == 1)
            .unwrap();
        assert!(
            mux16.ops > 3.0 * mux1.ops,
            "P=16 pipelining should beat unpipelined by >=3x ({:.0} vs {:.0})",
            mux16.ops,
            mux1.ops
        );
    }
}
