//! Restore-MTTR sweep (§4.2, DESIGN.md §14): parallel per-slot restore vs
//! the sequential path, across dataset size × snapshot freshness.
//!
//! Each case builds a shard, loads `scale × base_keys` keys, takes an
//! off-box chunked snapshot (trimming the log), then commits a suffix of
//! `suffix_entries` further writes so the restore has both a snapshot image
//! to load and a log tail to replay. The measured quantity is the wall
//! clock of `restore_replica_opts` — chunk fetch/decode plus partitioned
//! suffix replay — once with one worker (the sequential baseline) and once
//! with a worker pool. The headline claim is the acceptance gate: on a
//! ≥4-core host the parallel restore of the largest dataset must be ≥2×
//! faster than sequential; below 4 cores the workers time-share one CPU
//! and the gate self-skips, exactly like the striping and log-latency
//! gates.

use memorydb_core::restore::{restore_replica_opts, ReplayTarget, RestoreOptions};
use memorydb_core::{ClusterBus, NodeIdGen, OffboxSnapshotter, Shard, ShardConfig};
use memorydb_engine::{cmd, EngineVersion, Frame, SessionState};
use memorydb_objectstore::ObjectStore;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One point of the sweep.
#[derive(Debug, Clone, Copy)]
pub struct RestoreMttrCase {
    /// Dataset multiplier over [`RestoreMttrParams::base_keys`].
    pub scale: usize,
    /// Entries committed after the snapshot (the staleness the restore
    /// must replay from the log).
    pub suffix_entries: usize,
}

/// Sweep parameters.
#[derive(Debug, Clone)]
pub struct RestoreMttrParams {
    pub cases: Vec<RestoreMttrCase>,
    /// Keys at scale 1.
    pub base_keys: usize,
    /// SET payload size, bytes.
    pub value_bytes: usize,
    /// Worker-pool size for the parallel rows (0 = auto).
    pub workers: usize,
}

impl RestoreMttrParams {
    /// The full sweep the binary runs by default.
    pub fn full() -> RestoreMttrParams {
        RestoreMttrParams {
            cases: cross(&[1, 10], &[0, 2_000]),
            base_keys: 5_000,
            value_bytes: 64,
            workers: 0,
        }
    }

    /// A small sweep for CI: still spans 1× → 10× so the speedup gate has
    /// its largest-dataset row to bite on (where the host has the cores).
    pub fn smoke() -> RestoreMttrParams {
        RestoreMttrParams {
            cases: cross(&[1, 10], &[0, 500]),
            base_keys: 1_000,
            value_bytes: 64,
            workers: 0,
        }
    }

    fn resolved_workers(&self) -> usize {
        if self.workers != 0 {
            return self.workers;
        }
        std::thread::available_parallelism()
            .map(|n| n.get().min(8))
            .unwrap_or(1)
    }
}

/// Cartesian product, scale outermost so each freshness pair of one
/// dataset size runs back-to-back.
pub fn cross(scales: &[usize], suffixes: &[usize]) -> Vec<RestoreMttrCase> {
    let mut cases = Vec::new();
    for &scale in scales {
        for &suffix_entries in suffixes {
            cases.push(RestoreMttrCase {
                scale,
                suffix_entries,
            });
        }
    }
    cases
}

/// One measured point.
#[derive(Debug, Clone)]
pub struct RestoreMttrRow {
    pub scale: usize,
    pub suffix_entries: usize,
    /// Keys in the restored image (snapshot + suffix; suffix writes hit
    /// fresh keys, so this is `scale × base_keys + suffix_entries`).
    pub keys: usize,
    /// Worker-pool size used for the parallel measurement.
    pub workers: usize,
    /// Sequential restore wall clock (workers = 1), best of two runs.
    pub seq_ms: f64,
    /// Parallel restore wall clock, best of two runs.
    pub par_ms: f64,
    /// `seq_ms / par_ms`.
    pub speedup: f64,
}

/// Runs the sweep. Each case gets a fresh single-node shard.
pub fn run(params: &RestoreMttrParams) -> Vec<RestoreMttrRow> {
    params.cases.iter().map(|c| run_case(c, params)).collect()
}

fn run_case(case: &RestoreMttrCase, params: &RestoreMttrParams) -> RestoreMttrRow {
    let shard = Shard::bootstrap(
        0,
        ShardConfig::fast(),
        Arc::new(ObjectStore::new()),
        Arc::new(ClusterBus::new()),
        Arc::new(NodeIdGen::new()),
        vec![(0, 16383)],
        0,
    );
    let primary = shard
        .wait_for_primary(Duration::from_secs(10))
        .expect("bench shard must elect a primary");

    let value = "x".repeat(params.value_bytes);
    let mut session = SessionState::new();
    let base = case.scale * params.base_keys;
    for i in 0..base {
        let reply = primary.handle(&mut session, &cmd(["SET", &format!("base{i}"), &value]));
        assert_eq!(reply, Frame::ok(), "bench load SET failed");
    }

    // Chunked off-box snapshot; trimming makes the restore snapshot-seeded
    // rather than a full log replay.
    let offbox = OffboxSnapshotter::new(Arc::clone(shard.ctx()), EngineVersion::CURRENT, 40_001);
    offbox
        .create_snapshot(true)
        .expect("bench snapshot must succeed");

    // Staleness: the suffix the restore replays from the log.
    for i in 0..case.suffix_entries {
        let reply = primary.handle(&mut session, &cmd(["SET", &format!("suffix{i}"), &value]));
        assert_eq!(reply, Frame::ok(), "bench suffix SET failed");
    }
    let want_keys = base + case.suffix_entries;
    let tail = shard.ctx().log.committed_tail();

    let workers = params.resolved_workers();
    let seq_ms =
        timed_restore(&shard, tail, 1, want_keys).min(timed_restore(&shard, tail, 1, want_keys));
    let par_ms = timed_restore(&shard, tail, workers, want_keys)
        .min(timed_restore(&shard, tail, workers, want_keys));

    RestoreMttrRow {
        scale: case.scale,
        suffix_entries: case.suffix_entries,
        keys: want_keys,
        workers,
        seq_ms,
        par_ms,
        speedup: if par_ms > 0.0 { seq_ms / par_ms } else { 0.0 },
    }
}

/// One restore at a fixed replay target, returning milliseconds. Asserts
/// the image is complete so a fast-but-wrong restore can never win.
fn timed_restore(shard: &Shard, tail: memorydb_txlog::EntryId, workers: usize, want: usize) -> f64 {
    let t0 = Instant::now();
    let rp = restore_replica_opts(
        &shard.ctx().store,
        &shard.ctx().log,
        70_000 + workers as u64,
        &shard.ctx().name,
        EngineVersion::CURRENT,
        ReplayTarget::Exactly(tail),
        RestoreOptions { workers },
    )
    .expect("bench restore must succeed");
    let elapsed = t0.elapsed().as_secs_f64() * 1000.0;
    assert_eq!(
        rp.engine.db.len(),
        want,
        "restore (workers={workers}) produced an incomplete image"
    );
    assert_eq!(rp.rs.applied, tail, "restore stopped short of the target");
    elapsed
}

/// True when the host has cores for the parallel path to beat sequential
/// by a real margin; on 1-2 core machines the workers time-share one CPU
/// and the ratio measures scheduler noise.
pub fn speedup_gate_active() -> bool {
    std::thread::available_parallelism().is_ok_and(|n| n.get() >= 4)
}

/// Gate (acceptance criterion): on a ≥4-core host the parallel restore of
/// the largest dataset in the sweep must be ≥2× faster than the sequential
/// path. The freshest row of the largest scale is the snapshot-dominant
/// shape the paper's recovery story targets (§4.2). Empty means pass (or
/// gate inactive).
pub fn speedup_problems(rows: &[RestoreMttrRow]) -> Vec<String> {
    let mut problems = Vec::new();
    if !speedup_gate_active() {
        return problems;
    }
    let Some(max_scale) = rows.iter().map(|r| r.scale).max() else {
        return problems;
    };
    let target = rows
        .iter()
        .filter(|r| r.scale == max_scale)
        .min_by_key(|r| r.suffix_entries);
    if let Some(r) = target {
        if r.speedup < 2.0 {
            problems.push(format!(
                "{}x dataset ({} keys, suffix {}): parallel restore must be \
                 >=2x faster than sequential, got {:.1}ms seq vs {:.1}ms par \
                 ({:.2}x, {} workers)",
                r.scale, r.keys, r.suffix_entries, r.seq_ms, r.par_ms, r.speedup, r.workers
            ));
        }
    }
    problems
}

/// Hand-rolled JSON encoding of the sweep (flat numeric rows).
pub fn to_json(params: &RestoreMttrParams, rows: &[RestoreMttrRow]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"bench\": \"restore_mttr\",\n");
    s.push_str(&format!("  \"base_keys\": {},\n", params.base_keys));
    s.push_str(&format!("  \"value_bytes\": {},\n", params.value_bytes));
    s.push_str(&format!("  \"gate_active\": {},\n", speedup_gate_active()));
    s.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"scale\": {}, \"suffix_entries\": {}, \"keys\": {}, \
             \"workers\": {}, \"seq_ms\": {:.2}, \"par_ms\": {:.2}, \
             \"speedup\": {:.2}}}{}\n",
            r.scale,
            r.suffix_entries,
            r.keys,
            r.workers,
            r.seq_ms,
            r.par_ms,
            r.speedup,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The `--smoke` sweep as a CI test: every row restores a complete
    /// image at both worker counts (correctness is asserted inside
    /// `timed_restore`), MTTR grows with the dataset, and the speedup gate
    /// holds where the host can support it.
    #[test]
    fn smoke_sweep_restores_completely_at_both_worker_counts() {
        let mut params = RestoreMttrParams::smoke();
        // Keep the CI test itself lean; the binary's --smoke runs the
        // full smoke shape.
        params.cases = cross(&[1, 4], &[0, 200]);
        params.base_keys = 400;
        let rows = run(&params);
        assert_eq!(rows.len(), params.cases.len());
        for r in &rows {
            assert!(
                r.seq_ms > 0.0 && r.par_ms > 0.0,
                "case {r:?} measured nothing"
            );
            assert_eq!(r.keys, r.scale * params.base_keys + r.suffix_entries);
        }
        if speedup_gate_active() {
            // The in-test dataset is deliberately small; only report the
            // gate on the binary-sized smoke where the 10x row exists.
            eprintln!("speedup gate evaluated by the restore_mttr binary's --smoke run");
        } else {
            eprintln!("restore speedup gate skipped: fewer than 4 cores available");
        }
        let json = to_json(&params, &rows);
        assert!(json.contains("\"bench\": \"restore_mttr\""));
        assert_eq!(json.matches("\"scale\"").count(), rows.len());
    }
}
