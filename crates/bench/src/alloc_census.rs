//! Allocation census over the K=1 multiplexed GET/SET hot path.
//!
//! BtrLog's low-concurrency thesis applies to the wire path too: at
//! pipeline depth 1 there is no batching to amortize anything, so
//! allocations-per-command is a direct proxy for the per-command constant
//! cost — and unlike the stripe-scaling gates, a 1-core CI box measures it
//! perfectly well. The harness drives a real multiplexed
//! [`memorydb_server::Server`] over loopback TCP with **pre-encoded wire
//! bytes** and `read_exact` reply verification, so the client side of the
//! loop allocates nothing and the census (the process-wide counters behind
//! [`memorydb_metrics::CountingAlloc`], registered as the global allocator
//! by the `alloc_census` binary) is dominated by the serve path under
//! test: socket sweep → decode → submit → execute → stage → encode.
//!
//! There is deliberately **no core-count skip-guard** anywhere in this
//! module: this gate always runs.

use memorydb_core::{ClusterBus, NodeIdGen, Shard, ShardConfig};
use memorydb_metrics::alloc_counts;
use memorydb_objectstore::ObjectStore;
use memorydb_server::{IoMode, Server, ServerOptions};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

/// One measured workload row.
#[derive(Debug, Clone)]
pub struct AllocRow {
    pub workload: &'static str,
    pub commands: u64,
    pub allocs_per_cmd: f64,
    pub bytes_per_cmd: f64,
}

/// Pre-PR baseline rows, measured on this CI box at the parent commit of
/// the zero-copy PR (owned `Vec<u8>` connection buffers, copying RESP
/// decode, per-batch `cmds[i].clone()`, `String` reply frames): the
/// numbers the ≥50%-fewer-allocations acceptance bar is judged against.
/// `(workload, allocs_per_cmd, bytes_per_cmd)`.
pub const BASELINE: &[(&str, f64, f64)] = &[("set_k1", 52.17, 4626.7), ("get_k1", 26.00, 1670.1)];

/// Pinned absolute budgets for the smoke gate, `(workload,
/// allocs_per_cmd)`. Set just above the measured post-PR steady state
/// (25.11 / 7.00 on this box): allocation counts are count-based, not
/// time-based, so they barely jitter, and one new allocation per command
/// is a >3% move that must fail the gate.
pub const ALLOC_BUDGET: &[(&str, f64)] = &[("set_k1", 26.0), ("get_k1", 9.0)];

/// Encodes one RESP command as wire bytes (flat array of bulk strings).
fn wire(parts: &[&[u8]]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(format!("*{}\r\n", parts.len()).as_bytes());
    for p in parts {
        out.extend_from_slice(format!("${}\r\n", p.len()).as_bytes());
        out.extend_from_slice(p);
        out.extend_from_slice(b"\r\n");
    }
    out
}

/// One closed-loop phase: `commands` round-trips of `req`, each reply
/// byte-compared against `expect`. Returns (allocs, bytes) per command.
fn phase(stream: &mut TcpStream, req: &[u8], expect: &[u8], commands: u64) -> (f64, f64) {
    let mut reply = vec![0u8; expect.len()];
    // Warmup: first-touch buffer growth, engine key creation, metrics
    // bucket paging — none of that is steady-state per-command cost.
    for _ in 0..WARMUP {
        stream.write_all(req).expect("census write");
        stream.read_exact(&mut reply).expect("census read");
        assert_eq!(reply, expect, "unexpected reply during census warmup");
    }
    let before = alloc_counts();
    for _ in 0..commands {
        stream.write_all(req).expect("census write");
        stream.read_exact(&mut reply).expect("census read");
        assert_eq!(reply, expect, "unexpected reply during census");
    }
    let d = alloc_counts().since(before);
    (
        d.calls as f64 / commands as f64,
        d.bytes as f64 / commands as f64,
    )
}

const WARMUP: u64 = 500;
const VALUE: &[u8] = b"xxxxxxxxxxxxxxxx"; // 16B, matching the smoke sweep

/// Runs the census: a fresh 1-node shard + multiplexed server, one K=1
/// connection, `commands` SETs then `commands` GETs of one 16-byte value.
pub fn run(commands: u64) -> Vec<AllocRow> {
    let lease = Duration::from_secs(5);
    let shard = Shard::bootstrap(
        0,
        ShardConfig {
            lease,
            renew_interval: lease / 5,
            backoff: lease + lease / 10,
            ..ShardConfig::default()
        },
        Arc::new(ObjectStore::new()),
        Arc::new(ClusterBus::new()),
        Arc::new(NodeIdGen::new()),
        vec![(0, 16383)],
        0,
    );
    let primary = shard
        .wait_for_primary(3 * lease + Duration::from_secs(5))
        .expect("census shard must elect a primary");
    let mut server = Server::start_with(
        Arc::clone(&primary),
        "127.0.0.1:0",
        ServerOptions {
            mode: IoMode::Multiplexed,
            io_threads: 0,
        },
    )
    .expect("census server must start");

    let mut stream = TcpStream::connect(server.local_addr).expect("census connect");
    stream.set_nodelay(true).expect("census nodelay");

    let set = wire(&[b"SET", b"k", VALUE]);
    let get = wire(&[b"GET", b"k"]);
    let get_reply = {
        let mut r = format!("${}\r\n", VALUE.len()).into_bytes();
        r.extend_from_slice(VALUE);
        r.extend_from_slice(b"\r\n");
        r
    };

    let (set_allocs, set_bytes) = phase(&mut stream, &set, b"+OK\r\n", commands);
    let (get_allocs, get_bytes) = phase(&mut stream, &get, &get_reply, commands);

    drop(stream);
    server.stop();

    vec![
        AllocRow {
            workload: "set_k1",
            commands,
            allocs_per_cmd: set_allocs,
            bytes_per_cmd: set_bytes,
        },
        AllocRow {
            workload: "get_k1",
            commands,
            allocs_per_cmd: get_allocs,
            bytes_per_cmd: get_bytes,
        },
    ]
}

/// The smoke gate. Always active — allocation counting needs exactly one
/// core, so unlike the stripe-scaling gates there is no parallelism guard.
/// Each measured row must (a) stay under its pinned absolute budget and
/// (b) show ≥50% fewer allocations-per-command than the pre-PR baseline
/// row. Empty means pass.
pub fn gate_problems(rows: &[AllocRow]) -> Vec<String> {
    // NaN-hostile: an unset/NaN budget or measurement must FAIL the gate,
    // never slide through a comparison that silently returns false.
    fn within(x: f64, bound: f64) -> bool {
        matches!(
            x.partial_cmp(&bound),
            Some(std::cmp::Ordering::Less | std::cmp::Ordering::Equal)
        )
    }
    let mut problems = Vec::new();
    for r in rows {
        let Some(&(_, base_allocs, _)) = BASELINE.iter().find(|(w, _, _)| *w == r.workload) else {
            problems.push(format!("{}: no baseline row", r.workload));
            continue;
        };
        let Some(&(_, budget)) = ALLOC_BUDGET.iter().find(|(w, _)| *w == r.workload) else {
            problems.push(format!("{}: no pinned budget", r.workload));
            continue;
        };
        if !within(r.allocs_per_cmd, budget) {
            problems.push(format!(
                "{}: {:.2} allocs/cmd exceeds the pinned budget {:.2}",
                r.workload, r.allocs_per_cmd, budget
            ));
        }
        if !within(r.allocs_per_cmd, 0.5 * base_allocs) {
            problems.push(format!(
                "{}: {:.2} allocs/cmd is not >=50% below the pre-PR baseline {:.2}",
                r.workload, r.allocs_per_cmd, base_allocs
            ));
        }
    }
    problems
}

/// Hand-rolled JSON: the committed baseline rows plus the current run.
pub fn to_json(rows: &[AllocRow]) -> String {
    let mut s = String::new();
    s.push_str("{\n  \"bench\": \"alloc_census\",\n");
    s.push_str(
        "  \"note\": \"K=1 multiplexed GET/SET over loopback TCP, pre-encoded \
         requests + read_exact replies (client side allocation-free); counters \
         from memorydb_metrics::CountingAlloc as #[global_allocator]; gate runs \
         on 1 core, no skip-guard\",\n",
    );
    s.push_str("  \"rows\": [\n");
    let mut lines = Vec::new();
    for (w, allocs, bytes) in BASELINE {
        lines.push(format!(
            "    {{\"phase\": \"baseline\", \"workload\": \"{w}\", \
             \"allocs_per_cmd\": {allocs:.2}, \"bytes_per_cmd\": {bytes:.1}}}"
        ));
    }
    for r in rows {
        lines.push(format!(
            "    {{\"phase\": \"current\", \"workload\": \"{}\", \
             \"commands\": {}, \"allocs_per_cmd\": {:.2}, \"bytes_per_cmd\": {:.1}}}",
            r.workload, r.commands, r.allocs_per_cmd, r.bytes_per_cmd
        ));
    }
    s.push_str(&lines.join(",\n"));
    s.push_str("\n  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_encodes_flat_resp() {
        assert_eq!(
            wire(&[b"GET", b"k"]),
            b"*2\r\n$3\r\nGET\r\n$1\r\nk\r\n".to_vec()
        );
    }

    #[test]
    fn json_carries_baseline_and_current_rows() {
        let rows = vec![AllocRow {
            workload: "set_k1",
            commands: 10,
            allocs_per_cmd: 3.0,
            bytes_per_cmd: 128.0,
        }];
        let json = to_json(&rows);
        assert!(json.contains("\"bench\": \"alloc_census\""));
        assert!(json.contains("\"phase\": \"baseline\""));
        assert!(json.contains("\"phase\": \"current\""));
        assert_eq!(json.matches("\"workload\"").count(), BASELINE.len() + 1);
    }

    #[test]
    fn gate_flags_budget_and_baseline_misses() {
        let rows = vec![AllocRow {
            workload: "set_k1",
            commands: 10,
            allocs_per_cmd: 1e9,
            bytes_per_cmd: 1e9,
        }];
        let problems = gate_problems(&rows);
        assert_eq!(problems.len(), 2, "{problems:?}");
    }
}
