//! Figure 6: client-perceived latency and throughput during Redis BGSave in
//! a memory-constrained setup.
//!
//! Setup per the paper (§6.2): a 2 vCPU / 16 GB host, 12 GB maxmemory,
//! pre-filled with 20 M keys × 500 B (≈10 GB resident), 100 GET clients and
//! 20 SET clients. Shapes to reproduce: no throughput impact at fork but a
//! p100 spike from the page-table clone (12 ms/GB); then, as copy-on-write
//! under the write load exhausts DRAM and swap exceeds ~8% of memory,
//! latency climbs past a second and throughput collapses toward zero.

use memorydb_baseline::bgsave::{BgSaveModel, BgSaveRun, MemoryPressure};

/// One one-second sample of the Figure 6 timeline.
#[derive(Debug, Clone)]
pub struct Fig6Row {
    /// Seconds since the experiment started.
    pub t_s: f64,
    /// Client throughput, op/s.
    pub throughput: f64,
    /// Average latency, ms.
    pub avg_ms: f64,
    /// p100 latency in this second, ms.
    pub p100_ms: f64,
    /// Swap usage as a percentage of DRAM.
    pub swap_pct: f64,
    /// Pressure regime.
    pub pressure: MemoryPressure,
}

/// Experiment knobs.
#[derive(Debug, Clone, Copy)]
pub struct Fig6Params {
    /// When BGSave starts, seconds into the run.
    pub bgsave_at_s: f64,
    /// Total duration, seconds.
    pub duration_s: f64,
    /// Baseline throughput of the 120-connection workload on the 2 vCPU
    /// host, op/s (calibrated from the small-instance ceiling of Fig 4).
    pub base_throughput: f64,
    /// Fraction of ops that are SETs (20 of 120 clients).
    pub write_fraction: f64,
}

impl Default for Fig6Params {
    fn default() -> Self {
        Fig6Params {
            bgsave_at_s: 10.0,
            duration_s: 60.0,
            base_throughput: 110_000.0,
            write_fraction: 20.0 / 120.0,
        }
    }
}

/// Runs the Figure 6 timeline.
pub fn run(params: Fig6Params) -> Vec<Fig6Row> {
    let model = BgSaveModel {
        // 20M × 500B of data plus per-key overhead fills the 12 GB
        // maxmemory; that is the parent's RSS at fork time.
        dataset_bytes: 12 << 30,
        // Of the 16 GB host, the OS, page cache, and network stack pin
        // ~1.5 GB; this is what Redis + the COW copies can actually use
        // before the kernel starts paging.
        dram_bytes: (14.5 * (1u64 << 30) as f64) as u64,
        // The child serializes to local disk; EBS-class bandwidth, not
        // memory bandwidth, bounds it.
        serialize_bytes_per_sec: 150e6,
        ..BgSaveModel::default()
    };
    let mut rows = Vec::new();
    let mut run: Option<BgSaveRun> = None;
    let mut t = 0.0f64;
    let dt = 1.0;
    while t < params.duration_s {
        let mut p100_ms = 2.0; // healthy tail
        let mut avg_ms = 0.6;
        let mut factor = 1.0;
        let mut swap_pct = 0.0;
        let mut pressure = MemoryPressure::Normal;

        if run.is_none() && t >= params.bgsave_at_s {
            let r = BgSaveRun::start(model);
            // The fork itself: engine frozen for the page-table clone; the
            // requests in flight during that window observe it as p100.
            p100_ms = model.fork_stall_ms();
            run = Some(r);
        } else if let Some(r) = run.as_mut() {
            if !r.finished {
                // Each SET dirties ~2 pages (dict entry + value object),
                // doubling the COW page-touch rate relative to raw op/s.
                let writes =
                    params.base_throughput * r.throughput_factor() * params.write_fraction * 2.0;
                pressure = r.tick(dt, writes);
                factor = r.throughput_factor();
                p100_ms = r.tail_latency_ms();
                avg_ms = match pressure {
                    MemoryPressure::Normal => 0.6,
                    MemoryPressure::Swapping => 0.6 + 0.4 * (1.0 - factor) / 0.9 * 100.0,
                    MemoryPressure::Collapsed => p100_ms * 0.6,
                };
                swap_pct = r.swap_bytes() as f64 / model.dram_bytes as f64 * 100.0;
            }
        }

        rows.push(Fig6Row {
            t_s: t,
            throughput: params.base_throughput * factor,
            avg_ms,
            p100_ms,
            swap_pct,
            pressure,
        });
        t += dt;
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_6_shape() {
        let rows = run(Fig6Params::default());
        // Before BGSave: healthy.
        let before = &rows[5];
        assert_eq!(before.pressure, MemoryPressure::Normal);
        assert!(before.p100_ms < 5.0);
        assert!(before.throughput > 100_000.0);

        // At fork: p100 spike (12 ms/GB × 12 GB = 144 ms) but NO throughput
        // impact yet. (The paper reports a 67 ms spike, i.e. ~5.6 GB
        // resident at their fork point; the 12 ms/GB linearity is the
        // reproduced claim.)
        let at_fork = rows.iter().find(|r| r.t_s >= 10.0).unwrap();
        assert!(
            (138.0..150.0).contains(&at_fork.p100_ms),
            "fork spike {} ms",
            at_fork.p100_ms
        );
        assert!(
            at_fork.throughput > 100_000.0,
            "no throughput impact at fork"
        );

        // Eventually: collapse — throughput near zero, latency over a
        // second, swap beyond 8%.
        let collapsed: Vec<&Fig6Row> = rows
            .iter()
            .filter(|r| r.pressure == MemoryPressure::Collapsed)
            .collect();
        assert!(!collapsed.is_empty(), "the run must reach collapse");
        let worst = collapsed.last().unwrap();
        assert!(worst.throughput < 0.05 * 110_000.0, "{}", worst.throughput);
        assert!(worst.p100_ms >= 1000.0);
        assert!(worst.swap_pct > 8.0);

        // And the regimes appear in order: normal → (swapping) → collapsed.
        let first_collapse = rows
            .iter()
            .position(|r| r.pressure == MemoryPressure::Collapsed)
            .unwrap();
        assert!(rows[..first_collapse]
            .iter()
            .any(|r| r.pressure == MemoryPressure::Swapping));
    }

    #[test]
    fn without_writes_no_collapse() {
        let rows = run(Fig6Params {
            write_fraction: 0.0,
            ..Fig6Params::default()
        });
        assert!(rows.iter().all(|r| r.pressure == MemoryPressure::Normal));
    }
}
