//! Low-latency log path: closed-loop offered-load sweep over the adaptive
//! group-commit window (DESIGN.md §13).
//!
//! Each case runs K client threads against one in-process primary, every
//! thread submitting single-SET batches back-to-back. K is the offered
//! load: at K=1 the pipeline is idle at every submission, so the adaptive
//! window should collapse to the inline fast path (one append per command,
//! no committer handoff); as K grows the window widens and appends
//! amortize across connections. Cases run with the idle fast path on and
//! off so its latency win is measured, not asserted from the design.

use memorydb_core::{ClusterBus, NodeIdGen, Shard, ShardConfig};
use memorydb_engine::{cmd, Frame, SessionState};
use memorydb_objectstore::ObjectStore;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

/// One point of the sweep.
#[derive(Debug, Clone, Copy)]
pub struct LogLatencyCase {
    /// Concurrent closed-loop submitters (the offered load).
    pub connections: usize,
    /// `flush_idle_fastpath` for the case's shard.
    pub fastpath: bool,
}

/// Sweep parameters.
#[derive(Debug, Clone)]
pub struct LogLatencyParams {
    pub cases: Vec<LogLatencyCase>,
    /// Batches each submitter runs (one SET per batch — the
    /// latency-sensitive shape; throughput shapes live in `tcp`).
    pub batches_per_conn: usize,
    /// SET payload size, bytes.
    pub value_bytes: usize,
}

impl LogLatencyParams {
    /// The full sweep the binary runs by default.
    pub fn full() -> LogLatencyParams {
        LogLatencyParams {
            cases: cross(&[1, 2, 4, 8, 16], &[true, false]),
            batches_per_conn: 2000,
            value_bytes: 64,
        }
    }

    /// A small sweep for CI: the K=1 fast-path pair the gates bite on,
    /// plus one loaded point to show the window widening.
    pub fn smoke() -> LogLatencyParams {
        LogLatencyParams {
            cases: cross(&[1, 4], &[true, false]),
            batches_per_conn: 400,
            value_bytes: 16,
        }
    }
}

/// Cartesian product, fast path outermost so each on/off pair of one K
/// runs back-to-back.
pub fn cross(conns: &[usize], fastpaths: &[bool]) -> Vec<LogLatencyCase> {
    let mut cases = Vec::new();
    for &connections in conns {
        for &fastpath in fastpaths {
            cases.push(LogLatencyCase {
                connections,
                fastpath,
            });
        }
    }
    cases
}

/// One measured point.
#[derive(Debug, Clone)]
pub struct LogLatencyRow {
    pub connections: usize,
    pub fastpath: bool,
    /// Acknowledged commands over the case.
    pub commands: u64,
    /// Txlog append calls over the measured burst.
    pub append_calls: u64,
    /// Achieved commands per second (closed loop: offered == achieved).
    pub ops: f64,
    /// Commands amortized per append call.
    pub ops_per_append: f64,
    /// Per-command commit latency (the `e2e` stage histogram — only
    /// client batches record it, so the percentiles are exactly the
    /// burst's samples).
    pub e2e_mean_us: f64,
    pub e2e_p50_us: u64,
    pub e2e_p99_us: u64,
    /// Mean adaptive flush-window span (`flush_window` stage): oldest
    /// staged entry to append, the time group commit traded for
    /// amortization. Near zero at K=1, grows with K.
    pub flush_window_mean_us: f64,
}

/// Runs the sweep. Each case gets a fresh single-node shard.
pub fn run(params: &LogLatencyParams) -> Vec<LogLatencyRow> {
    params.cases.iter().map(|c| run_case(c, params)).collect()
}

fn run_case(case: &LogLatencyCase, params: &LogLatencyParams) -> LogLatencyRow {
    // K=1 rows feed an exact append_calls == commands gate, and a lease
    // renewal landing inside the burst would add one control append. The
    // burst starts right after an observed renewal (see below), so only a
    // burst longer than `renew_interval` can collide; retry a couple of
    // times for the unlucky schedule.
    let attempts = if case.connections == 1 { 3 } else { 1 };
    let mut row = run_case_once(case, params);
    for _ in 1..attempts {
        if row.append_calls == row.commands {
            break;
        }
        row = run_case_once(case, params);
    }
    row
}

fn run_case_once(case: &LogLatencyCase, params: &LogLatencyParams) -> LogLatencyRow {
    let lease = Duration::from_millis(600);
    let shard = Shard::bootstrap(
        0,
        ShardConfig {
            lease,
            renew_interval: Duration::from_millis(200),
            backoff: Duration::from_millis(660),
            flush_idle_fastpath: case.fastpath,
            ..ShardConfig::default()
        },
        Arc::new(ObjectStore::new()),
        Arc::new(ClusterBus::new()),
        Arc::new(NodeIdGen::new()),
        vec![(0, 16383)],
        0,
    );
    let primary = shard
        .wait_for_primary(Duration::from_secs(10))
        .expect("bench shard must elect a primary");

    let value = "x".repeat(params.value_bytes);
    let barrier = Arc::new(Barrier::new(case.connections + 1));
    let mut workers = Vec::with_capacity(case.connections);
    for conn in 0..case.connections {
        let primary = Arc::clone(&primary);
        let barrier = Arc::clone(&barrier);
        let value = value.clone();
        let batches = params.batches_per_conn;
        workers.push(std::thread::spawn(move || {
            let mut session = SessionState::new();
            barrier.wait();
            for i in 0..batches {
                let key = format!("k{conn}:{}", i % 1024);
                let replies = primary.handle_batch(&mut session, &[cmd(["SET", &key, &value])]);
                assert_eq!(replies, vec![Frame::ok()], "bench SET failed");
            }
        }));
    }

    // Start the burst just after a lease renewal lands, so the next
    // control append is a full `renew_interval` away from the measured
    // window (keeps K=1 append counting exact).
    let log = &shard.ctx().log;
    let baseline = log.append_calls();
    let quiet_deadline = Instant::now() + Duration::from_millis(400);
    while log.append_calls() == baseline && Instant::now() < quiet_deadline {
        std::thread::sleep(Duration::from_millis(1));
    }

    let appends0 = log.append_calls();
    let t0 = Instant::now();
    barrier.wait();
    for w in workers {
        w.join().expect("bench worker failed");
    }
    let elapsed = t0.elapsed();
    let append_calls = log.append_calls() - appends0;
    let commands = (case.connections * params.batches_per_conn) as u64;

    let snap = primary.metrics().snapshot();
    let stage = |name: &str| snap.stage(name);
    let (e2e_mean_us, e2e_p50_us, e2e_p99_us) =
        stage("e2e").map_or((0.0, 0, 0), |s| (s.mean_us(), s.p50_us, s.p99_us));
    let flush_window_mean_us = stage("flush_window").map_or(0.0, |s| s.mean_us());

    LogLatencyRow {
        connections: case.connections,
        fastpath: case.fastpath,
        commands,
        append_calls,
        ops: commands as f64 / elapsed.as_secs_f64(),
        ops_per_append: if append_calls == 0 {
            0.0
        } else {
            commands as f64 / append_calls as f64
        },
        e2e_mean_us,
        e2e_p50_us,
        e2e_p99_us,
        flush_window_mean_us,
    }
}

/// Gate: at K=1 with the fast path on, the adaptive window must collapse —
/// every command pays exactly one conditional append (no artificial
/// batching delay, no lost or double appends). Empty means pass.
pub fn fastpath_append_problems(rows: &[LogLatencyRow]) -> Vec<String> {
    let mut problems = Vec::new();
    for r in rows {
        if r.connections == 1 && r.fastpath && r.append_calls != r.commands {
            problems.push(format!(
                "K=1 fastpath: expected one append per command, got {} appends \
                 for {} commands",
                r.append_calls, r.commands
            ));
        }
    }
    problems
}

/// True when the host has cores to make the latency comparison meaningful.
/// On 1-2 core machines the inline path and the committer handoff
/// time-share one CPU and the gate would measure scheduler noise.
pub fn latency_gate_active() -> bool {
    std::thread::available_parallelism().is_ok_and(|n| n.get() >= 4)
}

/// Gate: at K=1 the inline idle fast path must beat the token-bounce
/// baseline (fast path off) on mean commit latency — the point of
/// DESIGN.md §13's idle rule is exactly this row. Empty when the gate is
/// inactive or the sweep has no on/off pair at K=1.
pub fn fastpath_latency_problems(rows: &[LogLatencyRow]) -> Vec<String> {
    let mut problems = Vec::new();
    if !latency_gate_active() {
        return problems;
    }
    let on = rows.iter().find(|r| r.connections == 1 && r.fastpath);
    let off = rows.iter().find(|r| r.connections == 1 && !r.fastpath);
    if let (Some(on), Some(off)) = (on, off) {
        if on.e2e_mean_us >= off.e2e_mean_us {
            problems.push(format!(
                "K=1: inline fast path must beat the committer handoff on mean \
                 commit latency, got {:.1}us (on) vs {:.1}us (off)",
                on.e2e_mean_us, off.e2e_mean_us
            ));
        }
    }
    problems
}

/// Hand-rolled JSON encoding of the sweep (flat numeric rows).
pub fn to_json(params: &LogLatencyParams, rows: &[LogLatencyRow]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"bench\": \"log_latency\",\n");
    s.push_str(&format!(
        "  \"batches_per_conn\": {},\n",
        params.batches_per_conn
    ));
    s.push_str(&format!("  \"value_bytes\": {},\n", params.value_bytes));
    s.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"connections\": {}, \"fastpath\": {}, \"commands\": {}, \
             \"append_calls\": {}, \"ops_per_s\": {:.1}, \"ops_per_append\": {:.2}, \
             \"e2e_mean_us\": {:.1}, \"e2e_p50_us\": {}, \"e2e_p99_us\": {}, \
             \"flush_window_mean_us\": {:.1}}}{}\n",
            r.connections,
            r.fastpath,
            r.commands,
            r.append_calls,
            r.ops,
            r.ops_per_append,
            r.e2e_mean_us,
            r.e2e_p50_us,
            r.e2e_p99_us,
            r.flush_window_mean_us,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The `--smoke` sweep as a CI test: every case serves traffic, the
    /// K=1 fast-path row appends exactly once per command, and the
    /// latency gate holds where the host can support it.
    #[test]
    fn smoke_sweep_fastpath_appends_exactly_once() {
        let params = LogLatencyParams::smoke();
        let rows = run(&params);
        assert_eq!(rows.len(), params.cases.len());
        for r in &rows {
            assert!(r.ops > 0.0, "case {r:?} made no progress");
            assert!(r.append_calls > 0, "case {r:?} recorded no appends");
            assert!(r.e2e_p50_us <= r.e2e_p99_us, "percentiles out of order");
        }
        let problems = fastpath_append_problems(&rows);
        assert!(
            problems.is_empty(),
            "K=1 append gate failed:\n{}",
            problems.join("\n")
        );
        if latency_gate_active() {
            let problems = fastpath_latency_problems(&rows);
            assert!(
                problems.is_empty(),
                "fast-path latency gate failed:\n{}",
                problems.join("\n")
            );
        } else {
            eprintln!("fast-path latency gate skipped: fewer than 4 cores available");
        }
        // Loaded point: with K=4 closed-loop submitters the adaptive
        // window must amortize appends across connections at least some
        // of the time.
        let loaded = rows
            .iter()
            .find(|r| r.connections == 4 && r.fastpath)
            .unwrap();
        assert!(
            loaded.append_calls <= loaded.commands,
            "append calls cannot exceed commands under group commit"
        );
        let json = to_json(&params, &rows);
        assert!(json.contains("\"bench\": \"log_latency\""));
        assert!(json.contains("\"fastpath\": true"));
        assert!(json.contains("\"fastpath\": false"));
        assert!(json.contains("\"flush_window_mean_us\""));
        assert_eq!(json.matches("\"connections\"").count(), rows.len());
    }
}
