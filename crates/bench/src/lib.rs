//! # memorydb-bench — the evaluation-reproduction harness
//!
//! One driver per figure of the paper's §6 plus the ablations DESIGN.md
//! commits to. Each driver returns structured rows; the `src/bin/*`
//! binaries print them as aligned tables and CSV, and the
//! `benches/figures.rs` target (harness = false) runs scaled-down versions
//! under `cargo bench` so every figure regenerates in CI.
//!
//! | Driver | Paper result |
//! |---|---|
//! | [`fig4`] | Fig 4a/4b — max throughput vs instance type |
//! | [`fig5`] | Fig 5a/5b/5c — latency vs offered throughput (16xlarge) |
//! | [`fig6`] | Fig 6 — Redis BGSave under memory pressure |
//! | [`fig7`] | Fig 7 — MemoryDB off-box snapshotting impact |
//! | [`extras`] | §6.1.2.1 write bandwidth, durability & recovery ablations |
//! | [`tcp`] | Enhanced-IO: real TCP throughput, multiplexed vs thread-per-conn |
//! | [`log_latency`] | Adaptive group commit: offered-load sweep over the low-latency log path |
//! | [`restore_mttr`] | Incremental snapshots + parallel restore: MTTR vs dataset size × freshness |
//! | [`chaos_suite`] | Deterministic chaos harness — failover/crash-recovery invariants |
//! | [`alloc_census`] | Zero-copy serve path: allocations-per-command census (runs on 1 core) |

pub mod alloc_census;
pub mod chaos_suite;
pub mod extras;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod log_latency;
pub mod output;
pub mod restore_mttr;
pub mod tcp;
