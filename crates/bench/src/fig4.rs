//! Figure 4: maximum throughput by instance type, read-only and write-only.
//!
//! Paper shapes to reproduce:
//! * (a) read-only — comparable ≤ xlarge (≤ ~200 K op/s); from 2xlarge up,
//!   MemoryDB plateaus ≈ 500 K while Redis tops out ≈ 330 K (Enhanced-IO
//!   multiplexing).
//! * (b) write-only — Redis wins everywhere (≈ 300 K max) because MemoryDB
//!   commits every write to the multi-AZ transaction log (≈ 185 K max).

use memorydb_sim::{run_sim, InstanceType, LoadMode, SimParams, SystemKind};

/// One measurement point.
#[derive(Debug, Clone)]
pub struct Fig4Row {
    /// Instance type name.
    pub instance: &'static str,
    /// Redis max throughput, op/s.
    pub redis: f64,
    /// MemoryDB max throughput, op/s.
    pub memorydb: f64,
}

/// Runs one panel of Figure 4. `read_only` selects panel (a) vs (b);
/// `duration_s` trades precision for speed.
pub fn run(read_only: bool, duration_s: f64) -> Vec<Fig4Row> {
    let read_fraction = if read_only { 1.0 } else { 0.0 };
    InstanceType::all()
        .iter()
        .map(|&instance| {
            let measure = |system| {
                run_sim(SimParams {
                    system,
                    instance,
                    clients: 1000,
                    mode: LoadMode::ClosedLoop,
                    read_fraction,
                    value_bytes: 100,
                    duration_s,
                    warmup_s: duration_s * 0.25,
                    seed: 42,
                })
                .throughput
            };
            Fig4Row {
                instance: instance.name(),
                redis: measure(SystemKind::Redis),
                memorydb: measure(SystemKind::MemoryDb),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_4_shapes_hold() {
        let reads = run(true, 0.5);
        let writes = run(false, 0.5);
        assert_eq!(reads.len(), 7);

        // (a) read-only: MemoryDB ≥ Redis on every 2xlarge+ size, plateaus.
        let big_reads: Vec<&Fig4Row> = reads.iter().skip(2).collect();
        for row in &big_reads {
            assert!(
                row.memorydb > row.redis * 1.3,
                "{}: memdb {} vs redis {}",
                row.instance,
                row.memorydb,
                row.redis
            );
        }
        // Plateau: 16xlarge within 10% of 2xlarge.
        let first = big_reads.first().unwrap();
        let last = big_reads.last().unwrap();
        assert!((last.memorydb / first.memorydb - 1.0).abs() < 0.10);
        // Small instances comparable.
        let small = &reads[0];
        assert!((small.memorydb / small.redis) < 1.45);

        // (b) write-only: Redis wins on every size.
        for row in &writes {
            assert!(
                row.redis > row.memorydb,
                "{}: redis {} vs memdb {}",
                row.instance,
                row.redis,
                row.memorydb
            );
        }
        let top = writes.last().unwrap();
        assert!((270e3..330e3).contains(&top.redis), "{}", top.redis);
        assert!((160e3..205e3).contains(&top.memorydb), "{}", top.memorydb);
    }
}
