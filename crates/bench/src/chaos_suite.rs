//! Chaos-harness drivers: CI smoke coverage and the heavy seed sweep.
//!
//! The harness itself lives in `memorydb_sim::chaos`; this module decides
//! *how much* of it runs where:
//!
//! * [`run_smoke`] — every schedule once, small op counts. Wired into
//!   `cargo test` (see the test at the bottom) so failover and
//!   crash-recovery invariants are exercised on every CI run.
//! * [`run_sweep`] — every schedule × many seeds at full size. Minutes of
//!   wall-clock, so the test wrapper is `#[ignore]`d; run it with
//!   `cargo test -p memorydb-bench --release -- --ignored chaos_sweep`
//!   or via the `chaos` binary.

use crate::output::Table;
use memorydb_sim::chaos::{run_chaos, ChaosConfig, ChaosReport, ScheduleKind};

/// Runs one config and panics with full detail if an invariant broke or
/// the history is non-linearizable.
pub fn run_and_assert(cfg: &ChaosConfig) -> ChaosReport {
    let report = run_chaos(cfg);
    assert!(
        report.passed(),
        "chaos run failed: schedule={} seed={} checker={:?} violations={:#?}",
        report.schedule,
        report.seed,
        report.checker,
        report.violations,
    );
    report
}

/// Every schedule once with smoke-sized runs. Fast enough for CI.
pub fn run_smoke(seed: u64) -> Vec<ChaosReport> {
    ScheduleKind::ALL
        .iter()
        .map(|&schedule| run_and_assert(&ChaosConfig::smoke(schedule, seed)))
        .collect()
}

/// Every schedule × `seeds` full-size runs.
pub fn run_sweep(seeds: std::ops::Range<u64>) -> Vec<ChaosReport> {
    let mut reports = Vec::new();
    for &schedule in &ScheduleKind::ALL {
        for seed in seeds.clone() {
            reports.push(run_and_assert(&ChaosConfig::new(schedule, seed)));
        }
    }
    reports
}

/// Renders reports as the standard aligned table.
pub fn report_table(reports: &[ChaosReport]) -> Table {
    let mut t = Table::new(&[
        "schedule",
        "seed",
        "attempted",
        "recorded",
        "acked-unique",
        "epochs",
        "checker",
        "violations",
    ]);
    for r in reports {
        t.row(vec![
            r.schedule.to_string(),
            r.seed.to_string(),
            r.ops_attempted.to_string(),
            r.ops_recorded.to_string(),
            r.acked_unique_writes.to_string(),
            r.epochs_claimed.to_string(),
            format!("{:?}", r.checker),
            r.violations.len().to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    /// CI smoke: all eight fault schedules under one seed, invariants and
    /// linearizability asserted. (~tens of seconds; the heavy sweep below
    /// is the multi-seed version.)
    #[test]
    fn chaos_smoke_all_schedules() {
        let reports = run_smoke(0xC0FFEE);
        assert_eq!(reports.len(), ScheduleKind::ALL.len());
        // The smoke run must actually exercise the system, not vacuously
        // pass on an empty history.
        for r in &reports {
            assert!(r.ops_recorded > 0, "{}: no operations recorded", r.schedule);
        }
    }

    /// Heavy sweep: every schedule × 20 seeds at full size. Run with
    /// `cargo test -p memorydb-bench --release -- --ignored chaos_sweep`.
    #[test]
    #[ignore = "minutes of wall-clock; run explicitly"]
    fn chaos_sweep_20_seeds() {
        let reports = run_sweep(0..20);
        assert_eq!(reports.len(), ScheduleKind::ALL.len() * 20);
    }
}
