//! Figure 5: latency vs offered throughput on r7g.16xlarge, for read-only,
//! write-only, and 80/20 mixed workloads.
//!
//! Paper shapes: reads — both systems sub-ms p50, <2 ms p99. Writes —
//! Redis sub-ms p50 / ≤3 ms p99; MemoryDB ≈3 ms p50 / ≈6 ms p99 (multi-AZ
//! commit in the critical path). Mixed — sub-ms p50 both; p99 ≈2 ms Redis
//! vs ≈4 ms MemoryDB (the tail lands in the write population).

use memorydb_sim::{run_sim, InstanceType, LoadMode, SimParams, SystemKind};

/// Which Figure 5 panel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// Panel (a): GET only.
    ReadOnly,
    /// Panel (b): SET only.
    WriteOnly,
    /// Panel (c): 80% GET / 20% SET.
    Mixed,
}

impl Workload {
    /// Read fraction of the mix.
    pub fn read_fraction(&self) -> f64 {
        match self {
            Workload::ReadOnly => 1.0,
            Workload::WriteOnly => 0.0,
            Workload::Mixed => 0.8,
        }
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Workload::ReadOnly => "read-only",
            Workload::WriteOnly => "write-only",
            Workload::Mixed => "mixed-80-20",
        }
    }

    /// Offered-load sweep points (op/s), spanning up to each system's
    /// saturation region from Figure 4.
    pub fn sweep(&self) -> Vec<f64> {
        match self {
            Workload::ReadOnly => vec![50e3, 100e3, 200e3, 300e3, 400e3, 480e3],
            Workload::WriteOnly => vec![25e3, 50e3, 100e3, 150e3, 180e3, 250e3],
            Workload::Mixed => vec![50e3, 100e3, 200e3, 300e3, 400e3],
        }
    }
}

/// One sweep point.
#[derive(Debug, Clone)]
pub struct Fig5Row {
    /// Offered load, op/s.
    pub offered: f64,
    /// Achieved throughput, op/s.
    pub achieved: f64,
    /// Median latency, ms.
    pub p50_ms: f64,
    /// 99th percentile latency, ms.
    pub p99_ms: f64,
}

/// Runs one system's sweep for one workload.
pub fn run(system: SystemKind, workload: Workload, duration_s: f64) -> Vec<Fig5Row> {
    workload
        .sweep()
        .into_iter()
        .map(|rate| {
            let result = run_sim(SimParams {
                system,
                instance: InstanceType::X16Large,
                clients: 1000,
                mode: LoadMode::OpenLoop(rate),
                read_fraction: workload.read_fraction(),
                value_bytes: 100,
                duration_s,
                warmup_s: duration_s * 0.25,
                seed: 7,
            });
            Fig5Row {
                offered: rate,
                achieved: result.throughput,
                p50_ms: result.all.p50_ms(),
                p99_ms: result.all.p99_ms(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_latency_panel_a() {
        let redis = run(SystemKind::Redis, Workload::ReadOnly, 0.4);
        let memdb = run(SystemKind::MemoryDb, Workload::ReadOnly, 0.4);
        // Below saturation both are sub-ms p50 and <2 ms p99.
        for row in redis.iter().take(4).chain(memdb.iter().take(4)) {
            assert!(row.p50_ms < 1.0, "p50 {} at {}", row.p50_ms, row.offered);
            assert!(row.p99_ms < 2.0, "p99 {} at {}", row.p99_ms, row.offered);
        }
    }

    #[test]
    fn write_latency_panel_b() {
        let redis = run(SystemKind::Redis, Workload::WriteOnly, 0.4);
        let memdb = run(SystemKind::MemoryDb, Workload::WriteOnly, 0.4);
        for row in redis.iter().take(4) {
            assert!(row.p50_ms < 1.0, "redis write p50 {}", row.p50_ms);
            assert!(row.p99_ms < 3.0, "redis write p99 {}", row.p99_ms);
        }
        for row in memdb.iter().take(4) {
            assert!(
                (2.0..4.5).contains(&row.p50_ms),
                "memdb write p50 {} at {}",
                row.p50_ms,
                row.offered
            );
            assert!(row.p99_ms < 7.0, "memdb write p99 {}", row.p99_ms);
        }
    }

    #[test]
    fn mixed_latency_panel_c() {
        let redis = run(SystemKind::Redis, Workload::Mixed, 0.4);
        let memdb = run(SystemKind::MemoryDb, Workload::Mixed, 0.4);
        for (r, m) in redis.iter().take(3).zip(memdb.iter().take(3)) {
            assert!(r.p50_ms < 1.0 && m.p50_ms < 1.0);
            assert!(r.p99_ms < 2.5, "redis mixed p99 {}", r.p99_ms);
            assert!(
                (2.0..6.5).contains(&m.p99_ms),
                "memdb mixed p99 {}",
                m.p99_ms
            );
            assert!(m.p99_ms > r.p99_ms);
        }
    }

    #[test]
    fn achieved_tracks_offered_below_saturation() {
        let rows = run(SystemKind::MemoryDb, Workload::ReadOnly, 0.4);
        for row in rows.iter().take(4) {
            let ratio = row.achieved / row.offered;
            assert!((0.9..1.1).contains(&ratio), "{} at {}", ratio, row.offered);
        }
    }
}
