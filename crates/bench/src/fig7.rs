//! Figure 7: throughput and latency of a MemoryDB cluster while an off-box
//! snapshot runs in parallel.
//!
//! Unlike Figures 4–6 this experiment runs the **real threaded stack**: a
//! live shard with multi-AZ commit latency serving a mixed read/write
//! workload, while an off-box shadow replica (sharing only the object store
//! and the transaction log) builds and verifies a snapshot. The paper's
//! shape: average latency ≈1 ms and max 10–20 ms, *unchanged* before,
//! during, and after snapshotting — because the customer cluster is not
//! involved at all.

use memorydb_core::{ClusterBus, NodeIdGen, OffboxSnapshotter, Shard, ShardConfig};
use memorydb_engine::{cmd, SessionState};
use memorydb_objectstore::ObjectStore;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Experiment knobs.
#[derive(Debug, Clone, Copy)]
pub struct Fig7Params {
    /// Total run, seconds.
    pub duration_s: u64,
    /// When the off-box snapshot starts, seconds into the run.
    pub snapshot_at_s: u64,
    /// GET-issuing client threads (paper: 100).
    pub read_clients: usize,
    /// SET-issuing client threads (paper: 20).
    pub write_clients: usize,
    /// Pre-filled keys.
    pub prefill_keys: usize,
    /// Value size (paper: 500 B).
    pub value_bytes: usize,
}

impl Default for Fig7Params {
    fn default() -> Self {
        Fig7Params {
            duration_s: 12,
            snapshot_at_s: 4,
            read_clients: 20,
            write_clients: 8,
            prefill_keys: 2_000,
            value_bytes: 500,
        }
    }
}

/// One one-second sample.
#[derive(Debug, Clone)]
pub struct Fig7Row {
    /// Seconds since start.
    pub t_s: u64,
    /// Completed ops in this second.
    pub throughput: f64,
    /// Average latency, ms.
    pub avg_ms: f64,
    /// Max (p100) latency in this second, ms.
    pub p100_ms: f64,
    /// Whether the off-box snapshot was running during this second.
    pub snapshotting: bool,
}

#[derive(Default)]
struct Window {
    count: u64,
    sum_us: u64,
    max_us: u64,
}

/// Runs the Figure 7 experiment on the real stack. Wall-clock time equals
/// `params.duration_s`.
pub fn run(params: Fig7Params) -> Vec<Fig7Row> {
    let cfg = ShardConfig {
        log: memorydb_txlog::LogConfig::multi_az(),
        ..ShardConfig::default()
    };
    let shard = Shard::bootstrap(
        0,
        cfg,
        Arc::new(ObjectStore::new()),
        Arc::new(ClusterBus::new()),
        Arc::new(NodeIdGen::new()),
        vec![(0, 16383)],
        1,
    );
    let primary = shard
        .wait_for_primary(Duration::from_secs(10))
        .expect("primary");

    // Pre-fill concurrently (each write waits out its own commit; the
    // engine pipeline overlaps them).
    let value = "v".repeat(params.value_bytes);
    let prefill_threads = 16usize;
    let per = params.prefill_keys.div_ceil(prefill_threads);
    let mut handles = Vec::new();
    for t in 0..prefill_threads {
        let primary = Arc::clone(&primary);
        let value = value.clone();
        handles.push(std::thread::spawn(move || {
            let mut session = SessionState::new();
            for i in (t * per)..((t + 1) * per) {
                let _ = primary.handle(&mut session, &cmd(["SET", &format!("key:{i}"), &value]));
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }

    // Shared per-second windows.
    let windows: Arc<Vec<Mutex<Window>>> = Arc::new(
        (0..params.duration_s)
            .map(|_| Mutex::new(Window::default()))
            .collect(),
    );
    let stop = Arc::new(AtomicBool::new(false));
    let t0 = Instant::now();

    let spawn_client = |is_writer: bool, seed: usize| {
        let primary = Arc::clone(&primary);
        let windows = Arc::clone(&windows);
        let stop = Arc::clone(&stop);
        let value = value.clone();
        let keys = params.prefill_keys;
        std::thread::spawn(move || {
            let mut session = SessionState::new();
            let mut x = seed as u64 + 1;
            while !stop.load(Ordering::Relaxed) {
                // xorshift key choice
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let key = format!("key:{}", x as usize % keys);
                let started = Instant::now();
                let reply = if is_writer {
                    primary.handle(&mut session, &cmd(["SET", key.as_str(), &value]))
                } else {
                    primary.handle(&mut session, &cmd(["GET", key.as_str()]))
                };
                let lat_us = started.elapsed().as_micros() as u64;
                let _ = reply;
                let slot = t0.elapsed().as_secs();
                if let Some(w) = windows.get(slot as usize) {
                    let mut w = w.lock();
                    w.count += 1;
                    w.sum_us += lat_us;
                    w.max_us = w.max_us.max(lat_us);
                }
            }
        })
    };

    let mut clients = Vec::new();
    for i in 0..params.read_clients {
        clients.push(spawn_client(false, i));
    }
    for i in 0..params.write_clients {
        clients.push(spawn_client(true, 1000 + i));
    }

    // The off-box snapshot, on schedule (§4.2.2): an ephemeral worker that
    // only touches the object store and the log.
    let snap_window: Arc<Mutex<(u64, u64)>> = Arc::new(Mutex::new((u64::MAX, 0)));
    let snap_window2 = Arc::clone(&snap_window);
    let ctx = Arc::clone(shard.ctx());
    let snapshot_at = params.snapshot_at_s;
    let snapshotter = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_secs(snapshot_at));
        let started_s = t0.elapsed().as_secs();
        let worker = OffboxSnapshotter::new(ctx, memorydb_engine::EngineVersion::CURRENT, 999_999);
        worker.create_snapshot(true).expect("off-box snapshot");
        let ended_s = t0.elapsed().as_secs();
        *snap_window2.lock() = (started_s, ended_s);
    });

    std::thread::sleep(Duration::from_secs(params.duration_s));
    stop.store(true, Ordering::Relaxed);
    for c in clients {
        let _ = c.join();
    }
    let _ = snapshotter.join();

    let (snap_start, snap_end) = *snap_window.lock();
    windows
        .iter()
        .enumerate()
        .map(|(i, w)| {
            let w = w.lock();
            Fig7Row {
                t_s: i as u64,
                throughput: w.count as f64,
                avg_ms: if w.count == 0 {
                    0.0
                } else {
                    w.sum_us as f64 / w.count as f64 / 1000.0
                },
                p100_ms: w.max_us as f64 / 1000.0,
                snapshotting: (i as u64) >= snap_start && (i as u64) <= snap_end,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offbox_snapshot_does_not_disturb_serving() {
        let rows = run(Fig7Params {
            duration_s: 6,
            snapshot_at_s: 2,
            read_clients: 8,
            write_clients: 4,
            prefill_keys: 500,
            value_bytes: 500,
        });
        assert!(rows.iter().any(|r| r.snapshotting), "snapshot must run");
        // Drop the first (warm-up) and last (shutdown) windows.
        let mid = &rows[1..rows.len() - 1];
        let tputs: Vec<f64> = mid.iter().map(|r| r.throughput).collect();
        let max = tputs.iter().cloned().fold(0.0, f64::max);
        let min = tputs.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(min > 0.0);
        // Stability: no window collapses (generous bound for CI noise) —
        // the Figure 6 counterpart here would drop to ~0.
        assert!(
            min > max * 0.3,
            "throughput should stay stable: min {min} max {max}"
        );
        // Latency stays in the single/double-digit-ms regime throughout.
        for r in mid {
            assert!(r.avg_ms < 50.0, "avg {} ms at t={}", r.avg_ms, r.t_s);
        }
    }
}
