//! Ablations and prose claims beyond the four figures.
//!
//! * [`write_bandwidth`] — §6.1.2.1's claim that a single shard sustains up
//!   to ~100 MB/s of write bandwidth with larger payloads/pipelining.
//! * [`durability_ablation`] — the §2.2-vs-§4 comparison: acknowledged
//!   writes lost across a failover, Redis vs MemoryDB (real stacks).
//! * [`recovery_mttr`] — §4.2.1/§4.2.3: restore time vs log-suffix length;
//!   fresher snapshots keep restoration snapshot-dominant.

use memorydb_core::{ClusterBus, NodeIdGen, OffboxSnapshotter, Shard, ShardConfig};
use memorydb_engine::{cmd, Frame, SessionState};
use memorydb_objectstore::ObjectStore;
use memorydb_sim::{run_sim, InstanceType, LoadMode, SimParams, SystemKind};
use std::sync::Arc;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Write bandwidth (§6.1.2.1)
// ---------------------------------------------------------------------------

/// One value-size point of the bandwidth sweep.
#[derive(Debug, Clone)]
pub struct BandwidthRow {
    /// Payload size per SET, bytes.
    pub value_bytes: usize,
    /// Simulated concurrent connections (pipelining modeled as extra
    /// outstanding requests).
    pub connections: usize,
    /// Achieved ops/s.
    pub ops: f64,
    /// Achieved write bandwidth, MB/s.
    pub mb_per_s: f64,
}

/// Sweeps payload size at high concurrency on MemoryDB; the curve should
/// rise with value size and flatten near the 100 MB/s log cap.
pub fn write_bandwidth(duration_s: f64) -> Vec<BandwidthRow> {
    [100usize, 1024, 4096, 16 * 1024, 64 * 1024]
        .iter()
        .map(|&value_bytes| {
            let connections = 4000; // 1000 conns × pipeline depth 4
            let result = run_sim(SimParams {
                system: SystemKind::MemoryDb,
                instance: InstanceType::X16Large,
                clients: connections,
                mode: LoadMode::ClosedLoop,
                read_fraction: 0.0,
                value_bytes,
                duration_s,
                warmup_s: duration_s * 0.25,
                seed: 11,
            });
            BandwidthRow {
                value_bytes,
                connections,
                ops: result.throughput,
                mb_per_s: result.throughput * value_bytes as f64 / 1e6,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Durability ablation (real stacks)
// ---------------------------------------------------------------------------

/// Result of one durability trial.
#[derive(Debug, Clone)]
pub struct DurabilityRow {
    /// System under test.
    pub system: &'static str,
    /// Writes acknowledged before the primary was killed.
    pub acknowledged: usize,
    /// Acknowledged writes missing after failover.
    pub lost: usize,
}

/// Kills the primary mid-burst on both stacks and counts acknowledged-but-
/// lost writes after failover. MemoryDB must report zero; Redis with
/// replication lag must not.
pub fn durability_ablation(writes: usize) -> Vec<DurabilityRow> {
    let mut rows = Vec::new();

    // --- OSS Redis with async replication -------------------------------
    {
        let shard = memorydb_baseline::RedisShard::new(
            memorydb_baseline::ReplicationConfig {
                lag: Duration::from_millis(50),
            },
            1,
        );
        let mut session = SessionState::new();
        let mut acked = Vec::new();
        for i in 0..writes {
            let key = format!("k{i}");
            if shard.execute(&mut session, &cmd(["SET", key.as_str(), "v"])) == Frame::ok() {
                acked.push(key);
            }
            // Trickle so the burst spans several lag windows: the replica
            // has the old prefix, and exactly the acked tail is at risk.
            if i % 5 == 0 {
                std::thread::sleep(Duration::from_millis(5));
            }
        }
        shard.kill_primary();
        memorydb_baseline::failover::elect_and_promote(&shard);
        let mut lost = 0;
        let mut s = SessionState::new();
        for key in &acked {
            if shard.execute(&mut s, &cmd(["GET", key.as_str()])) == Frame::Null {
                lost += 1;
            }
        }
        rows.push(DurabilityRow {
            system: "redis-async",
            acknowledged: acked.len(),
            lost,
        });
    }

    // --- MemoryDB -------------------------------------------------------
    {
        let shard = Shard::bootstrap(
            0,
            ShardConfig::fast(),
            Arc::new(ObjectStore::new()),
            Arc::new(ClusterBus::new()),
            Arc::new(NodeIdGen::new()),
            vec![(0, 16383)],
            2,
        );
        let primary = shard
            .wait_for_primary(Duration::from_secs(5))
            .expect("primary");
        let mut session = SessionState::new();
        let mut acked = Vec::new();
        for i in 0..writes {
            let key = format!("k{i}");
            if primary.handle(&mut session, &cmd(["SET", key.as_str(), "v"])) == Frame::ok() {
                acked.push(key);
            }
        }
        primary.crash();
        let new_primary = shard
            .wait_for_primary(Duration::from_secs(10))
            .expect("failover");
        let mut lost = 0;
        let mut s = SessionState::new();
        for key in &acked {
            if new_primary.handle(&mut s, &cmd(["GET", key.as_str()])) == Frame::Null {
                lost += 1;
            }
        }
        rows.push(DurabilityRow {
            system: "memorydb",
            acknowledged: acked.len(),
            lost,
        });
    }

    rows
}

// ---------------------------------------------------------------------------
// Recovery MTTR vs snapshot freshness (§4.2.1, §4.2.3)
// ---------------------------------------------------------------------------

/// One restore-time measurement.
#[derive(Debug, Clone)]
pub struct MttrRow {
    /// Log entries written after the snapshot (the suffix a recovering
    /// replica must replay).
    pub log_suffix: u64,
    /// Wall-clock restore time.
    pub restore: Duration,
    /// Keys restored.
    pub keys: usize,
}

/// Measures replica restore time as the un-snapshotted log suffix grows.
pub fn recovery_mttr(suffixes: &[u64], base_keys: usize) -> Vec<MttrRow> {
    suffixes
        .iter()
        .map(|&suffix| {
            let shard = Shard::bootstrap(
                0,
                ShardConfig::fast(),
                Arc::new(ObjectStore::new()),
                Arc::new(ClusterBus::new()),
                Arc::new(NodeIdGen::new()),
                vec![(0, 16383)],
                0,
            );
            let primary = shard
                .wait_for_primary(Duration::from_secs(5))
                .expect("primary");
            let mut session = SessionState::new();
            for i in 0..base_keys {
                primary.handle(&mut session, &cmd(["SET", &format!("base:{i}"), "v"]));
            }
            // Snapshot now; everything after is replay work.
            let offbox = OffboxSnapshotter::new(
                Arc::clone(shard.ctx()),
                memorydb_engine::EngineVersion::CURRENT,
                999,
            );
            offbox.create_snapshot(true).expect("snapshot");
            for i in 0..suffix {
                primary.handle(&mut session, &cmd(["SET", &format!("suffix:{i}"), "v"]));
            }
            let t0 = Instant::now();
            let node = shard.add_node();
            assert!(shard.wait_replicas_caught_up(Duration::from_secs(30)));
            let restore = t0.elapsed();
            MttrRow {
                log_suffix: suffix,
                restore,
                keys: node.key_count(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_flattens_near_the_log_cap() {
        let rows = write_bandwidth(0.3);
        // Rising with value size...
        assert!(rows[1].mb_per_s > rows[0].mb_per_s);
        assert!(rows[2].mb_per_s > rows[1].mb_per_s);
        // ...flattening near 100 MB/s for large payloads (§6.1.2.1).
        let top = rows.last().unwrap();
        assert!(
            (70.0..110.0).contains(&top.mb_per_s),
            "cap at {} MB/s",
            top.mb_per_s
        );
        // Small values are ops-bound, far below the cap.
        assert!(rows[0].mb_per_s < 25.0, "{}", rows[0].mb_per_s);
    }

    #[test]
    fn durability_redis_loses_memorydb_does_not() {
        let rows = durability_ablation(60);
        let redis = rows.iter().find(|r| r.system == "redis-async").unwrap();
        let memdb = rows.iter().find(|r| r.system == "memorydb").unwrap();
        assert!(redis.lost > 0, "redis with lag must lose acked writes");
        assert_eq!(memdb.lost, 0, "memorydb must lose nothing");
        assert!(memdb.acknowledged > 0);
    }

    #[test]
    fn restore_time_grows_with_log_suffix() {
        let rows = recovery_mttr(&[0, 400], 200);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].keys, 200);
        assert_eq!(rows[1].keys, 600);
        // Replaying 400 extra entries must cost measurably more than zero.
        assert!(
            rows[1].restore > rows[0].restore,
            "suffix replay not visible: {:?} vs {:?}",
            rows[1].restore,
            rows[0].restore
        );
    }
}
