//! Ablation of the §4.1 lease design: failover time as a function of the
//! lease/backoff durations, on the real stack.
//!
//! The paper's safety argument requires `backoff > lease` (disjoint
//! leases). The cost of that safety is availability: after a primary crash,
//! no writes are possible until a replica's backoff elapses and its claim
//! commits. This bench measures that window — and contrasts it with the
//! collaborative transfer (LeaseRelease), which skips the backoff entirely.

use memorydb_bench::output::{results_dir, Table};
use memorydb_core::{ClusterBus, NodeIdGen, Shard, ShardConfig};
use memorydb_engine::{cmd, Frame, SessionState};
use memorydb_objectstore::ObjectStore;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn measure(lease_ms: u64, collaborative: bool, trials: u32) -> Duration {
    let mut total = Duration::ZERO;
    for trial in 0..trials {
        let cfg = ShardConfig {
            lease: Duration::from_millis(lease_ms),
            renew_interval: Duration::from_millis(lease_ms / 3),
            backoff: Duration::from_millis(lease_ms * 3 / 2),
            tick: Duration::from_millis(5),
            ..ShardConfig::default()
        };
        let shard = Shard::bootstrap(
            trial,
            cfg,
            Arc::new(ObjectStore::new()),
            Arc::new(ClusterBus::new()),
            Arc::new(NodeIdGen::new()),
            vec![(0, 16383)],
            1,
        );
        let primary = shard
            .wait_for_primary(Duration::from_secs(20))
            .expect("primary");
        let mut session = SessionState::new();
        for i in 0..20 {
            primary.handle(&mut session, &cmd(["SET", &format!("k{i}"), "v"]));
        }
        assert!(shard.wait_replicas_caught_up(Duration::from_secs(10)));

        let t0 = Instant::now();
        if collaborative {
            primary.release_leadership();
        } else {
            primary.crash();
        }
        // Time to first successful write on the NEW primary.
        loop {
            if let Some(p) = shard.primary() {
                if p.id != primary.id {
                    let mut s = SessionState::new();
                    if p.handle(&mut s, &cmd(["SET", "probe", "1"])) == Frame::ok() {
                        break;
                    }
                }
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        total += t0.elapsed();
    }
    total / trials
}

fn main() {
    let trials = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);
    println!(
        "§4.1 ablation — write-unavailability window after leadership change\n\
         (backoff fixed at 1.5× lease; {trials} trials per point; real stack)\n"
    );
    let mut table = Table::new(&["lease ms", "crash failover ms", "collaborative transfer ms"]);
    for lease_ms in [100u64, 200, 400, 800] {
        let crash = measure(lease_ms, false, trials);
        let collab = measure(lease_ms, true, trials);
        table.row(vec![
            lease_ms.to_string(),
            format!("{:.0}", crash.as_secs_f64() * 1000.0),
            format!("{:.0}", collab.as_secs_f64() * 1000.0),
        ]);
    }
    println!("{}", table.render());
    let csv = results_dir().join("failover_latency.csv");
    if table.write_csv(&csv).is_ok() {
        println!("wrote {}", csv.display());
    }
    println!(
        "\nExpected: crash failover scales with the backoff (safety: leases stay disjoint,\n\
         so a successor must wait out ~1.5× lease); collaborative transfer (§5.2's N+1\n\
         scaling path) is near-constant because LeaseRelease waives the backoff."
    );
}
