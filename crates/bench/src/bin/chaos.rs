//! Chaos-harness driver: seeded fault schedules against a live shard.
//!
//! ```text
//! chaos                         # smoke: every schedule, seed 0xC0FFEE
//! chaos --smoke                 # same, explicitly
//! chaos --seeds 20              # full sweep: every schedule × seeds 0..20
//! chaos --schedule az-outage --seeds 5
//! chaos --seed 42               # one full-size pass at a specific seed
//! ```
//!
//! A run prints one table row per (schedule, seed) and exits non-zero if
//! any invariant broke or a history was non-linearizable.

use memorydb_bench::chaos_suite::report_table;
use memorydb_bench::output::results_dir;
use memorydb_sim::chaos::{run_chaos, ChaosConfig, ChaosReport, ScheduleKind};

fn parse_schedule(name: &str) -> Option<ScheduleKind> {
    ScheduleKind::ALL
        .into_iter()
        .find(|s| s.to_string() == name)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = args.is_empty();
    let mut seeds: u64 = 1;
    let mut base_seed: u64 = 0xC0FFEE;
    let mut only: Option<ScheduleKind> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => smoke = true,
            "--seeds" => {
                i += 1;
                seeds = args[i].parse().expect("--seeds takes a count");
                base_seed = 0;
            }
            "--seed" => {
                i += 1;
                base_seed = args[i].parse().expect("--seed takes a number");
            }
            "--schedule" => {
                i += 1;
                only = Some(parse_schedule(&args[i]).unwrap_or_else(|| {
                    let all: Vec<String> =
                        ScheduleKind::ALL.iter().map(|s| s.to_string()).collect();
                    panic!("unknown schedule {:?}; one of {}", args[i], all.join(", "))
                }));
            }
            other => panic!("unknown flag {other}; see the module docs"),
        }
        i += 1;
    }

    let schedules: Vec<ScheduleKind> = match only {
        Some(s) => vec![s],
        None => ScheduleKind::ALL.to_vec(),
    };
    let mut reports: Vec<ChaosReport> = Vec::new();
    for &schedule in &schedules {
        for s in 0..seeds {
            let cfg = if smoke {
                ChaosConfig::smoke(schedule, base_seed + s)
            } else {
                ChaosConfig::new(schedule, base_seed + s)
            };
            println!("running {schedule} seed {} ...", cfg.seed);
            reports.push(run_chaos(&cfg));
        }
    }

    let table = report_table(&reports);
    println!("\n{}", table.render());
    let csv = results_dir().join("chaos.csv");
    if table.write_csv(&csv).is_ok() {
        println!("wrote {}", csv.display());
    }

    let failed: Vec<&ChaosReport> = reports.iter().filter(|r| !r.passed()).collect();
    if !failed.is_empty() {
        for r in &failed {
            eprintln!(
                "FAIL {} seed {}: checker={:?} violations={:#?}",
                r.schedule, r.seed, r.checker, r.violations
            );
        }
        std::process::exit(1);
    }
    println!(
        "all {} runs passed: single-leased fencing, no acked write lost, \
         checksum convergence, restorability",
        reports.len()
    );
}
