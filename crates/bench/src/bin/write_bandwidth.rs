//! Reproduces the §6.1.2.1 prose claim: with more clients / pipelining /
//! larger payloads, a single shard reaches ~100 MB/s of write bandwidth.

use memorydb_bench::extras::write_bandwidth;
use memorydb_bench::output::{kops, results_dir, Table};

fn main() {
    let duration = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.5);
    let rows = write_bandwidth(duration);
    let mut table = Table::new(&["value size", "connections", "op/s", "MB/s"]);
    for row in &rows {
        table.row(vec![
            format!("{}B", row.value_bytes),
            row.connections.to_string(),
            kops(row.ops),
            format!("{:.1}", row.mb_per_s),
        ]);
    }
    println!("§6.1.2.1 — single-shard write bandwidth vs payload size (MemoryDB, 16xlarge)");
    println!("{}", table.render());
    let csv = results_dir().join("write_bandwidth.csv");
    if table.write_csv(&csv).is_ok() {
        println!("wrote {}", csv.display());
    }
    println!("\nPaper claim: the curve flattens near ~100 MB/s (the transaction-log bandwidth).");
}
