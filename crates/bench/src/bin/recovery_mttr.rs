//! Recovery-MTTR ablation (§4.2.1, §4.2.3): replica restore time as the
//! un-snapshotted log suffix grows — why MemoryDB keeps restoration
//! snapshot-dominant.

use memorydb_bench::extras::recovery_mttr;
use memorydb_bench::output::{results_dir, Table};

fn main() {
    let base_keys = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2_000);
    let suffixes = [0u64, 1_000, 4_000, 16_000];
    println!(
        "§4.2 — replica restore time vs log suffix (snapshot covers {base_keys} keys; the\n\
         suffix is replayed entry by entry). Running on the real stack...\n"
    );
    let rows = recovery_mttr(&suffixes, base_keys);
    let mut table = Table::new(&["log suffix entries", "restore time ms", "keys restored"]);
    for row in &rows {
        table.row(vec![
            row.log_suffix.to_string(),
            format!("{:.1}", row.restore.as_secs_f64() * 1000.0),
            row.keys.to_string(),
        ]);
    }
    println!("{}", table.render());
    let csv = results_dir().join("recovery_mttr.csv");
    if table.write_csv(&csv).is_ok() {
        println!("wrote {}", csv.display());
    }
    println!(
        "\nExpected: restore time grows with the suffix; the snapshot scheduler (§4.2.3)\n\
         bounds that suffix so cold restarts stay snapshot-dominant."
    );
}
