//! Reproduces Figure 7: MemoryDB serving while an off-box snapshot runs.
//! This one runs the REAL threaded stack (live shard + off-box worker).

use memorydb_bench::fig7::{run, Fig7Params};
use memorydb_bench::output::{ms, results_dir, Table};

fn main() {
    let duration = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(12);
    println!(
        "Figure 7 — live MemoryDB shard (multi-AZ commit latency), mixed GET/SET clients,\n\
         off-box snapshot mid-run. Running for {duration}s of wall-clock time...\n"
    );
    let rows = run(Fig7Params {
        duration_s: duration,
        ..Fig7Params::default()
    });
    let mut table = Table::new(&[
        "t (s)",
        "throughput op/s",
        "avg ms",
        "p100 ms",
        "snapshotting",
    ]);
    for row in &rows {
        table.row(vec![
            row.t_s.to_string(),
            format!("{:.0}", row.throughput),
            ms(row.avg_ms),
            ms(row.p100_ms),
            if row.snapshotting {
                "yes".into()
            } else {
                "".into()
            },
        ]);
    }
    println!("{}", table.render());
    let csv = results_dir().join("fig7.csv");
    if table.write_csv(&csv).is_ok() {
        println!("wrote {}", csv.display());
    }
    println!(
        "\nPaper shape: throughput and latency unchanged before/during/after the snapshot —\n\
         the off-box cluster shares only S3 and the transaction log with the serving cluster,\n\
         so customers reserve no memory for snapshots and never schedule around them."
    );
}
