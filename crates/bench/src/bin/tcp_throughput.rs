//! Closed-loop RESP-over-TCP throughput for the Enhanced-IO server.
//!
//! Sweeps K connections × pipeline depth P in both IO modes over real
//! loopback sockets. Usage:
//!
//! ```text
//! tcp_throughput [--smoke] [--duration S] [--value-bytes N] [--zipfian]
//!                [--conns a,b,..] [--pipeline a,b,..] [--stripes a,b,..]
//!                [--json PATH]
//! ```
//!
//! The interesting comparisons: multiplexed vs thread-per-conn at 64
//! connections, P=16 pipelined SET vs P=1 (group commit should hold
//! `ops/append` near P the whole time), and 16 engine stripes vs 1 at
//! K>=8 (DESIGN.md §12 lock striping). `--zipfian` replaces the disjoint
//! per-connection keys with one shared hot-key distribution, showing the
//! contended end of the striping win.

use memorydb_bench::output::{kops, results_dir, Table};
use memorydb_bench::tcp::{
    attribution_problems, coalescing_problems, cross, run, scaling_gate_active, scaling_problems,
    to_json, TcpParams, TcpRow,
};
use memorydb_server::IoMode;

/// Mean µs for one attributed stage, `-` when the case never sampled it.
fn stage_mean(r: &TcpRow, name: &str) -> String {
    r.stage(name)
        .map_or_else(|| "-".to_string(), |s| format!("{:.1}", s.mean_us))
}

fn parse_list(s: &str) -> Vec<usize> {
    s.split(',')
        .filter(|p| !p.is_empty())
        .map(|p| p.parse().expect("expected comma-separated integers"))
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut params = TcpParams::full();
    let mut json_path: Option<String> = None;
    let mut conns: Option<Vec<usize>> = None;
    let mut pipelines: Option<Vec<usize>> = None;
    let mut stripes: Option<Vec<usize>> = None;
    let mut smoke = false;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => {
                params = TcpParams::smoke();
                smoke = true;
            }
            "--zipfian" => params.zipfian = true,
            "--duration" => {
                params.duration_s = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--duration needs seconds");
            }
            "--value-bytes" => {
                params.value_bytes = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--value-bytes needs an integer");
            }
            "--conns" => conns = Some(parse_list(it.next().expect("--conns needs a list"))),
            "--pipeline" => {
                pipelines = Some(parse_list(it.next().expect("--pipeline needs a list")))
            }
            "--stripes" => stripes = Some(parse_list(it.next().expect("--stripes needs a list"))),
            "--json" => json_path = Some(it.next().expect("--json needs a path").clone()),
            other => panic!("unknown argument: {other}"),
        }
    }
    if conns.is_some() || pipelines.is_some() || stripes.is_some() {
        params.cases = cross(
            &[IoMode::ThreadPerConnection, IoMode::Multiplexed],
            &conns.unwrap_or_else(|| vec![1, 8, 64]),
            &pipelines.unwrap_or_else(|| vec![1, 16, 64]),
            &stripes.unwrap_or_else(|| vec![1, 16]),
        );
    }

    let rows = run(&params);

    let mut table = Table::new(&[
        "mode",
        "conns",
        "pipeline",
        "stripes",
        "op/s",
        "appends",
        "batches",
        "ops/append",
        "appends/cmd",
    ]);
    for r in &rows {
        table.row(vec![
            r.mode.to_string(),
            r.connections.to_string(),
            r.pipeline.to_string(),
            r.stripes.to_string(),
            kops(r.ops),
            r.append_calls.to_string(),
            r.batches.to_string(),
            format!("{:.1}", r.ops_per_append),
            format!("{:.4}", r.appends_per_command),
        ]);
    }
    println!(
        "Enhanced-IO — closed-loop SET throughput over TCP ({}B values, {}s/case)",
        params.value_bytes, params.duration_s
    );
    println!("{}", table.render());

    // Per-stage latency attribution (§10): mean µs per stage, plus how much
    // of the e2e batch span the engine+durability breakdown accounts for.
    let mut attr = Table::new(&[
        "mode",
        "conns",
        "pipeline",
        "stripes",
        "io_read",
        "io_write",
        "parse",
        "engine",
        "stripe_hold",
        "apply",
        "cqw",
        "durability",
        "e2e",
        "e2e_p99",
        "stage/e2e",
    ]);
    for r in &rows {
        attr.row(vec![
            r.mode.to_string(),
            r.connections.to_string(),
            r.pipeline.to_string(),
            r.stripes.to_string(),
            stage_mean(r, "io_read"),
            stage_mean(r, "io_write"),
            stage_mean(r, "parse"),
            stage_mean(r, "engine"),
            stage_mean(r, "stripe_lock_hold"),
            stage_mean(r, "apply"),
            stage_mean(r, "commit_queue_wait"),
            stage_mean(r, "durability"),
            stage_mean(r, "e2e"),
            r.stage("e2e")
                .map_or_else(|| "-".to_string(), |s| s.p99_us.to_string()),
            format!("{:.3}", r.stage_sum_over_e2e),
        ]);
    }
    println!("Per-stage latency attribution (mean µs per span)");
    println!("{}", attr.render());

    let csv = results_dir().join("tcp_throughput.csv");
    if table.write_csv(&csv).is_ok() {
        println!("wrote {}", csv.display());
    }
    let attr_csv = results_dir().join("tcp_stage_latency.csv");
    if attr.write_csv(&attr_csv).is_ok() {
        println!("wrote {}", attr_csv.display());
    }
    if let Some(path) = json_path {
        std::fs::write(&path, to_json(&params, &rows)).expect("write --json output");
        println!("wrote {path}");
    }
    println!(
        "\nClaims under test: multiplexed >= thread-per-conn at 64 conns; \
         pipelined SET scales with P; ops/append tracks the pipeline depth; \
         16 stripes beat 1 at K>=8 multiplexed."
    );

    // In smoke mode the attribution doubles as a gate: every declared
    // stage must have samples, the stage sums must be consistent with the
    // measured e2e span, cross-connection coalescing must be observed at
    // K >= 8 (append calls strictly below dispatched batches), and the
    // 16-stripe configuration must beat the 1-stripe baseline by >=1.5x
    // at K >= 8 multiplexed (skipped on hosts with fewer than 4 cores,
    // where stripes just time-share one CPU).
    if smoke {
        let mut problems: Vec<String> = rows.iter().flat_map(attribution_problems).collect();
        problems.extend(coalescing_problems(&rows));
        problems.extend(scaling_problems(&rows));
        if !problems.is_empty() {
            eprintln!("metrics smoke FAILED:");
            for p in &problems {
                eprintln!("  {p}");
            }
            std::process::exit(1);
        }
        let scaling_note = if scaling_gate_active() {
            "stripe scaling gate held"
        } else {
            "stripe scaling gate skipped (<4 cores)"
        };
        println!(
            "metrics smoke OK: all stages sampled, stage sums consistent with e2e, \
             cross-connection coalescing observed, {scaling_note}"
        );
    }
}
