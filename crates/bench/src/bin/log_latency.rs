//! Low-latency log path: closed-loop offered-load sweep (DESIGN.md §13).
//!
//! Sweeps K concurrent single-SET submitters with the adaptive
//! group-commit idle fast path on and off. Usage:
//!
//! ```text
//! log_latency [--smoke] [--batches N] [--value-bytes N] [--conns a,b,..]
//!             [--json PATH]
//! ```
//!
//! The interesting comparisons: at K=1 the fast path must append exactly
//! once per command and beat the committer-handoff baseline on mean commit
//! latency; as K grows, `ops/append` rises and the `flush_window` span
//! widens — the adaptive window trading latency for amortization exactly
//! where load exists to amortize over.

use memorydb_bench::log_latency::{
    cross, fastpath_append_problems, fastpath_latency_problems, latency_gate_active, run, to_json,
    LogLatencyParams, LogLatencyRow,
};
use memorydb_bench::output::{kops, results_dir, Table};

fn parse_list(s: &str) -> Vec<usize> {
    s.split(',')
        .filter(|p| !p.is_empty())
        .map(|p| p.parse().expect("expected comma-separated integers"))
        .collect()
}

fn fastpath_name(r: &LogLatencyRow) -> &'static str {
    if r.fastpath {
        "on"
    } else {
        "off"
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut params = LogLatencyParams::full();
    let mut json_path: Option<String> = None;
    let mut smoke = false;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => {
                params = LogLatencyParams::smoke();
                smoke = true;
            }
            "--batches" => {
                params.batches_per_conn = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--batches needs an integer");
            }
            "--value-bytes" => {
                params.value_bytes = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--value-bytes needs an integer");
            }
            "--conns" => {
                let conns = parse_list(it.next().expect("--conns needs a list"));
                params.cases = cross(&conns, &[true, false]);
            }
            "--json" => json_path = Some(it.next().expect("--json needs a path").clone()),
            other => panic!("unknown argument: {other}"),
        }
    }
    // The smoke rows double as the checked-in BENCH_log_latency.json
    // fixture unless the caller redirects them.
    if smoke && json_path.is_none() {
        json_path = Some("BENCH_log_latency.json".into());
    }

    let rows = run(&params);

    let mut table = Table::new(&[
        "conns",
        "fastpath",
        "op/s",
        "commands",
        "appends",
        "ops/append",
        "e2e_mean_us",
        "e2e_p50_us",
        "e2e_p99_us",
        "flush_win_us",
    ]);
    for r in &rows {
        table.row(vec![
            r.connections.to_string(),
            fastpath_name(r).to_string(),
            kops(r.ops),
            r.commands.to_string(),
            r.append_calls.to_string(),
            format!("{:.2}", r.ops_per_append),
            format!("{:.1}", r.e2e_mean_us),
            r.e2e_p50_us.to_string(),
            r.e2e_p99_us.to_string(),
            format!("{:.1}", r.flush_window_mean_us),
        ]);
    }
    println!(
        "Low-latency log path — closed-loop single-SET commit latency \
         ({}B values, {} batches/conn)",
        params.value_bytes, params.batches_per_conn
    );
    println!("{}", table.render());

    let csv = results_dir().join("log_latency.csv");
    if table.write_csv(&csv).is_ok() {
        println!("wrote {}", csv.display());
    }
    if let Some(path) = json_path {
        std::fs::write(&path, to_json(&params, &rows)).expect("write --json output");
        println!("wrote {path}");
    }
    println!(
        "\nClaims under test: K=1 fast path appends exactly once per command \
         and beats the committer handoff on mean latency; ops/append and the \
         flush_window span grow with K."
    );

    // Smoke gates: exact K=1 append accounting always; the latency
    // comparison only where the host has cores to make it meaningful.
    if smoke {
        let mut problems = fastpath_append_problems(&rows);
        problems.extend(fastpath_latency_problems(&rows));
        if !problems.is_empty() {
            eprintln!("log-latency smoke FAILED:");
            for p in &problems {
                eprintln!("  {p}");
            }
            std::process::exit(1);
        }
        let latency_note = if latency_gate_active() {
            "fast-path latency gate held"
        } else {
            "fast-path latency gate skipped (<4 cores)"
        };
        println!(
            "log-latency smoke OK: K=1 fast path appended exactly once per \
             command, {latency_note}"
        );
    }
}
