//! Restore-MTTR sweep (§4.2, DESIGN.md §14): parallel per-slot restore vs
//! the sequential path across dataset size × snapshot freshness. Usage:
//!
//! ```text
//! restore_mttr [--smoke] [--base-keys N] [--value-bytes N]
//!              [--scales a,b,..] [--suffixes a,b,..] [--workers N]
//!              [--json PATH]
//! ```
//!
//! The interesting comparison: the largest-dataset, freshest-snapshot row
//! is the snapshot-dominant shape the paper's recovery story targets —
//! there the worker pool must cut restore time ≥2× on a ≥4-core host
//! (below 4 cores the gate self-skips; workers would only time-share one
//! CPU).

use memorydb_bench::output::{results_dir, Table};
use memorydb_bench::restore_mttr::{
    cross, run, speedup_gate_active, speedup_problems, to_json, RestoreMttrParams,
};

fn parse_list(s: &str) -> Vec<usize> {
    s.split(',')
        .filter(|p| !p.is_empty())
        .map(|p| p.parse().expect("expected comma-separated integers"))
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut params = RestoreMttrParams::full();
    let mut scales: Vec<usize> = vec![1, 10];
    let mut suffixes: Vec<usize> = vec![0, 2_000];
    let mut json_path: Option<String> = None;
    let mut smoke = false;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => {
                params = RestoreMttrParams::smoke();
                suffixes = vec![0, 500];
                smoke = true;
            }
            "--base-keys" => {
                params.base_keys = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--base-keys needs an integer");
            }
            "--value-bytes" => {
                params.value_bytes = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--value-bytes needs an integer");
            }
            "--workers" => {
                params.workers = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--workers needs an integer");
            }
            "--scales" => scales = parse_list(it.next().expect("--scales needs a list")),
            "--suffixes" => suffixes = parse_list(it.next().expect("--suffixes needs a list")),
            "--json" => json_path = Some(it.next().expect("--json needs a path").clone()),
            other => panic!("unknown argument: {other}"),
        }
    }
    params.cases = cross(&scales, &suffixes);
    // The smoke rows double as the checked-in BENCH_restore_mttr.json
    // fixture unless the caller redirects them.
    if smoke && json_path.is_none() {
        json_path = Some("BENCH_restore_mttr.json".into());
    }

    let rows = run(&params);

    let mut table = Table::new(&[
        "scale", "suffix", "keys", "workers", "seq_ms", "par_ms", "speedup",
    ]);
    for r in &rows {
        table.row(vec![
            r.scale.to_string(),
            r.suffix_entries.to_string(),
            r.keys.to_string(),
            r.workers.to_string(),
            format!("{:.2}", r.seq_ms),
            format!("{:.2}", r.par_ms),
            format!("{:.2}x", r.speedup),
        ]);
    }
    println!(
        "Restore MTTR — chunked snapshot load + partitioned suffix replay \
         ({}B values, base {} keys)",
        params.value_bytes, params.base_keys
    );
    println!("{}", table.render());

    let csv = results_dir().join("restore_mttr.csv");
    if table.write_csv(&csv).is_ok() {
        println!("wrote {}", csv.display());
    }
    if let Some(path) = json_path {
        std::fs::write(&path, to_json(&params, &rows)).expect("write --json output");
        println!("wrote {path}");
    }
    println!(
        "\nClaims under test: restore time is snapshot-dominant (grows with \
         dataset, mildly with suffix); the worker pool cuts the largest \
         dataset's restore >=2x where the host has >=4 cores."
    );

    if smoke {
        let problems = speedup_problems(&rows);
        if !problems.is_empty() {
            eprintln!("restore-mttr smoke FAILED:");
            for p in &problems {
                eprintln!("  {p}");
            }
            std::process::exit(1);
        }
        let note = if speedup_gate_active() {
            "parallel speedup gate held"
        } else {
            "parallel speedup gate skipped (<4 cores)"
        };
        println!("restore-mttr smoke OK: all rows restored complete images, {note}");
    }
}
