//! Reproduces Figure 5: latency vs offered throughput on r7g.16xlarge.

use memorydb_bench::fig5::{run, Workload};
use memorydb_bench::output::{kops, ms, results_dir, Table};
use memorydb_sim::SystemKind;

fn main() {
    let duration = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.5);

    for (panel, workload) in [
        ("5a", Workload::ReadOnly),
        ("5b", Workload::WriteOnly),
        ("5c", Workload::Mixed),
    ] {
        let redis = run(SystemKind::Redis, workload, duration);
        let memdb = run(SystemKind::MemoryDb, workload, duration);
        let mut table = Table::new(&[
            "offered",
            "redis p50 ms",
            "redis p99 ms",
            "memdb p50 ms",
            "memdb p99 ms",
        ]);
        for (r, m) in redis.iter().zip(&memdb) {
            table.row(vec![
                kops(r.offered),
                ms(r.p50_ms),
                ms(r.p99_ms),
                ms(m.p50_ms),
                ms(m.p99_ms),
            ]);
        }
        println!(
            "Figure {panel} — {} latency vs offered load (r7g.16xlarge)",
            workload.name()
        );
        println!("{}", table.render());
        let csv = results_dir().join(format!("fig{panel}.csv"));
        if table.write_csv(&csv).is_ok() {
            println!("wrote {}\n", csv.display());
        }
    }
    println!(
        "Paper shapes: reads sub-ms p50 / <2ms p99 both systems; writes Redis sub-ms p50 vs\n\
         MemoryDB ~3ms p50 / ~6ms p99; mixed sub-ms p50 both, p99 ~2ms Redis vs ~4ms MemoryDB."
    );
}
