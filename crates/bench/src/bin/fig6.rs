//! Reproduces Figure 6: client-perceived latency and throughput during
//! Redis BGSave under memory pressure.

use memorydb_bench::fig6::{run, Fig6Params};
use memorydb_bench::output::{ms, results_dir, Table};

fn main() {
    let rows = run(Fig6Params::default());
    let mut table = Table::new(&[
        "t (s)",
        "throughput op/s",
        "avg ms",
        "p100 ms",
        "swap %",
        "regime",
    ]);
    for row in &rows {
        table.row(vec![
            format!("{:.0}", row.t_s),
            format!("{:.0}", row.throughput),
            ms(row.avg_ms),
            ms(row.p100_ms),
            format!("{:.1}", row.swap_pct),
            format!("{:?}", row.pressure),
        ]);
    }
    println!(
        "Figure 6 — Redis BGSave on a 2 vCPU / 16 GB host, 12 GB maxmemory, 20M×500B keys,\n\
         100 GET + 20 SET clients. BGSave starts at t=10s.\n"
    );
    println!("{}", table.render());
    let csv = results_dir().join("fig6.csv");
    if table.write_csv(&csv).is_ok() {
        println!("wrote {}", csv.display());
    }
    println!(
        "\nPaper shape: p100 spike at fork (12 ms/GB page-table clone; 144 ms for our 12 GB RSS,\n\
         the paper's 67 ms implies ~5.6 GB resident), no throughput impact at fork, then COW\n\
         exhausts DRAM and — once swap exceeds ~8% — latency passes 1s and throughput drops to ~0."
    );
}
