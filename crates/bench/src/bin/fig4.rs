//! Reproduces Figure 4: maximum throughput by instance type.

use memorydb_bench::fig4;
use memorydb_bench::output::{kops, results_dir, Table};

fn main() {
    let duration = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2.0);

    for (panel, read_only) in [("4a (read-only)", true), ("4b (write-only)", false)] {
        let rows = fig4::run(read_only, duration);
        let mut table = Table::new(&["instance", "redis op/s", "memorydb op/s", "memorydb/redis"]);
        for row in &rows {
            table.row(vec![
                row.instance.to_string(),
                kops(row.redis),
                kops(row.memorydb),
                format!("{:.2}x", row.memorydb / row.redis),
            ]);
        }
        println!("Figure {panel} — max throughput, 1000 closed-loop connections, 100B values");
        println!("{}", table.render());
        let csv = results_dir().join(format!("fig{}.csv", if read_only { "4a" } else { "4b" }));
        if table.write_csv(&csv).is_ok() {
            println!("wrote {}\n", csv.display());
        }
    }
    println!(
        "Paper shapes: (a) comparable <2xl; from 2xl MemoryDB ~500K flat vs Redis ~330K.\n\
         (b) Redis wins everywhere: ~300K vs MemoryDB ~185K (every write commits multi-AZ)."
    );
}
