//! Durability ablation: acknowledged writes lost across failover —
//! OSS-Redis-style async replication vs MemoryDB (both on real stacks).

use memorydb_bench::extras::durability_ablation;
use memorydb_bench::output::{results_dir, Table};

fn main() {
    let writes = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(200);
    let trials = 3;
    let mut table = Table::new(&["trial", "system", "acked writes", "lost after failover"]);
    for trial in 1..=trials {
        for row in durability_ablation(writes) {
            table.row(vec![
                trial.to_string(),
                row.system.to_string(),
                row.acknowledged.to_string(),
                row.lost.to_string(),
            ]);
        }
    }
    println!("§2.2 vs §3/§4 — acknowledged-write loss across primary failure + election\n");
    println!("{}", table.render());
    let csv = results_dir().join("durability_ablation.csv");
    if table.write_csv(&csv).is_ok() {
        println!("wrote {}", csv.display());
    }
    println!(
        "\nExpected: redis-async loses a nonzero tail of acknowledged writes (replication lag\n\
         at crash time); memorydb loses exactly zero — replies are withheld until the\n\
         multi-AZ transaction log commits, and only caught-up replicas can win elections."
    );
}
