//! Allocation census for the zero-copy serve path (DESIGN.md §15).
//!
//! Registers [`memorydb_metrics::CountingAlloc`] as the global allocator
//! and measures allocations-per-command and bytes-per-command on the K=1
//! multiplexed GET/SET path over real loopback TCP. Usage:
//!
//! ```text
//! alloc_census [--smoke] [--commands N] [--json PATH]
//! ```
//!
//! `--smoke` turns the run into a gate: every row must stay under its
//! pinned budget *and* ≥50% below the committed pre-PR baseline. This gate
//! has **no core-count skip-guard** — per-command allocation cost is
//! exactly what a 1-core box measures best.

use memorydb_bench::alloc_census::{gate_problems, run, to_json, BASELINE};
use memorydb_bench::output::Table;
use memorydb_metrics::CountingAlloc;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut commands: u64 = 4000;
    let mut json_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--commands" => {
                commands = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--commands needs an integer");
            }
            "--json" => json_path = Some(it.next().expect("--json needs a path").clone()),
            other => panic!("unknown argument: {other}"),
        }
    }

    let rows = run(commands);

    let mut table = Table::new(&[
        "workload",
        "phase",
        "allocs/cmd",
        "bytes/cmd",
        "vs baseline",
    ]);
    for (w, allocs, bytes) in BASELINE {
        table.row(vec![
            w.to_string(),
            "baseline".into(),
            format!("{allocs:.2}"),
            format!("{bytes:.1}"),
            "1.00x".into(),
        ]);
    }
    for r in &rows {
        let base = BASELINE
            .iter()
            .find(|(w, _, _)| *w == r.workload)
            .map_or(f64::NAN, |&(_, a, _)| a);
        table.row(vec![
            r.workload.to_string(),
            "current".into(),
            format!("{:.2}", r.allocs_per_cmd),
            format!("{:.1}", r.bytes_per_cmd),
            format!("{:.2}x", r.allocs_per_cmd / base),
        ]);
    }
    println!(
        "Allocation census — K=1 multiplexed GET/SET, {commands} commands/phase \
         (counting global allocator)"
    );
    println!("{}", table.render());

    if let Some(path) = json_path {
        std::fs::write(&path, to_json(&rows)).expect("write --json output");
        println!("wrote {path}");
    }

    if smoke {
        let problems = gate_problems(&rows);
        if !problems.is_empty() {
            eprintln!("alloc census FAILED:");
            for p in &problems {
                eprintln!("  {p}");
            }
            std::process::exit(1);
        }
        println!(
            "alloc census OK: every workload under budget and >=50% below the \
             pre-PR baseline (gate ran with no core-count skip)"
        );
    }
}
