//! # memorydb-objectstore — an S3-like durable object store
//!
//! MemoryDB stores point-in-time snapshots durably in S3 (paper §4.2) so
//! that data restoration is local to the restoring replica: fetch the latest
//! snapshot, then replay the transaction log suffix — no interaction with
//! healthy peers, no centralized bottleneck. This crate reproduces the slice
//! of S3 semantics that workflow depends on:
//!
//! * immutable, versioned puts with read-after-write consistency;
//! * per-object integrity checksums verified on read;
//! * listing by key prefix (newest first), as used to find the latest
//!   snapshot of a shard;
//! * unlimited concurrent readers — S3 and the transaction log are scaled
//!   so *all* replicas can restore at once (§4.2.1), which we model by
//!   making reads lock-briefly and never throttle;
//! * optional injected latency to keep restore-time benchmarks honest.

use bytes::Bytes;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::time::Duration;

/// Integrity checksum (FNV-1a 64); cheap and adequate for corruption
/// detection in tests and benches.
fn fnv1a(data: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf29ce484222325;
    const PRIME: u64 = 0x100000001b3;
    let mut h = OFFSET;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Metadata of one stored object version.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObjectMeta {
    /// Full key of the object.
    pub key: String,
    /// Monotone version assigned at put time (global across the store).
    pub version: u64,
    /// Payload size in bytes.
    pub size: usize,
    /// Integrity checksum of the payload.
    pub checksum: u64,
}

/// Errors from store operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// No object at the requested key.
    NotFound,
    /// The stored payload no longer matches its checksum.
    IntegrityFailure,
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::NotFound => write!(f, "object not found"),
            StoreError::IntegrityFailure => write!(f, "object integrity check failed"),
        }
    }
}

impl std::error::Error for StoreError {}

#[derive(Debug, Clone)]
struct Stored {
    meta: ObjectMeta,
    data: Bytes,
}

/// The object store. Clone-free sharing via `Arc<ObjectStore>`.
#[derive(Debug, Default)]
pub struct ObjectStore {
    objects: RwLock<BTreeMap<String, Stored>>,
    counter: RwLock<u64>,
    /// Simulated per-operation latency (applied to put and get).
    latency: RwLock<Duration>,
}

impl ObjectStore {
    /// Creates an empty store with no injected latency.
    pub fn new() -> ObjectStore {
        ObjectStore::default()
    }

    /// Sets the simulated per-operation latency.
    pub fn set_latency(&self, latency: Duration) {
        *self.latency.write() = latency;
    }

    fn simulate_latency(&self) {
        let lat = *self.latency.read();
        if !lat.is_zero() {
            std::thread::sleep(lat);
        }
    }

    /// Stores an object, replacing any previous version at the same key.
    /// Returns the new version's metadata.
    pub fn put(&self, key: &str, data: Bytes) -> ObjectMeta {
        self.simulate_latency();
        let mut counter = self.counter.write();
        *counter += 1;
        let meta = ObjectMeta {
            key: key.to_string(),
            version: *counter,
            size: data.len(),
            checksum: fnv1a(&data),
        };
        self.objects.write().insert(
            key.to_string(),
            Stored {
                meta: meta.clone(),
                data,
            },
        );
        meta
    }

    /// Fetches an object, verifying its checksum.
    pub fn get(&self, key: &str) -> Result<(ObjectMeta, Bytes), StoreError> {
        self.simulate_latency();
        let guard = self.objects.read();
        let stored = guard.get(key).ok_or(StoreError::NotFound)?;
        if fnv1a(&stored.data) != stored.meta.checksum {
            return Err(StoreError::IntegrityFailure);
        }
        Ok((stored.meta.clone(), stored.data.clone()))
    }

    /// Deletes an object; idempotent.
    pub fn delete(&self, key: &str) {
        self.objects.write().remove(key);
    }

    /// Lists object metadata under a key prefix, newest version first.
    pub fn list(&self, prefix: &str) -> Vec<ObjectMeta> {
        let guard = self.objects.read();
        let mut out: Vec<ObjectMeta> = guard
            .range(prefix.to_string()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(_, s)| s.meta.clone())
            .collect();
        out.sort_by_key(|m| std::cmp::Reverse(m.version));
        out
    }

    /// Metadata of the newest object under a prefix.
    pub fn latest(&self, prefix: &str) -> Option<ObjectMeta> {
        self.list(prefix).into_iter().next()
    }

    /// Total number of stored objects.
    pub fn len(&self) -> usize {
        self.objects.read().len()
    }

    /// True when the store holds no objects.
    pub fn is_empty(&self) -> bool {
        self.objects.read().is_empty()
    }

    /// Test hook: silently corrupts a stored payload (flips one byte)
    /// without updating its checksum, so the next `get` fails integrity.
    pub fn corrupt_for_test(&self, key: &str) -> bool {
        let mut guard = self.objects.write();
        match guard.get_mut(key) {
            Some(stored) if !stored.data.is_empty() => {
                let mut raw = stored.data.to_vec();
                let mid = raw.len() / 2;
                raw[mid] ^= 0xFF;
                stored.data = Bytes::from(raw);
                true
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let store = ObjectStore::new();
        let meta = store.put("snapshots/shard-0/1", Bytes::from_static(b"payload"));
        assert_eq!(meta.size, 7);
        let (got_meta, data) = store.get("snapshots/shard-0/1").unwrap();
        assert_eq!(got_meta, meta);
        assert_eq!(data, Bytes::from_static(b"payload"));
    }

    #[test]
    fn missing_object() {
        let store = ObjectStore::new();
        assert_eq!(store.get("nope").unwrap_err(), StoreError::NotFound);
    }

    #[test]
    fn overwrite_bumps_version() {
        let store = ObjectStore::new();
        let v1 = store.put("k", Bytes::from_static(b"one"));
        let v2 = store.put("k", Bytes::from_static(b"two"));
        assert!(v2.version > v1.version);
        let (_, data) = store.get("k").unwrap();
        assert_eq!(data, Bytes::from_static(b"two"));
    }

    #[test]
    fn list_by_prefix_newest_first() {
        let store = ObjectStore::new();
        store.put("snap/shard-0/a", Bytes::from_static(b"1"));
        store.put("snap/shard-0/b", Bytes::from_static(b"2"));
        store.put("snap/shard-1/a", Bytes::from_static(b"3"));
        let listed = store.list("snap/shard-0/");
        assert_eq!(listed.len(), 2);
        assert_eq!(listed[0].key, "snap/shard-0/b");
        assert_eq!(store.latest("snap/shard-0/").unwrap().key, "snap/shard-0/b");
        assert!(store.latest("snap/shard-9/").is_none());
        assert_eq!(store.list("").len(), 3);
    }

    #[test]
    fn delete_is_idempotent() {
        let store = ObjectStore::new();
        store.put("k", Bytes::from_static(b"x"));
        store.delete("k");
        store.delete("k");
        assert_eq!(store.get("k").unwrap_err(), StoreError::NotFound);
        assert!(store.is_empty());
    }

    #[test]
    fn corruption_detected_on_read() {
        let store = ObjectStore::new();
        store.put("k", Bytes::from_static(b"important bytes"));
        assert!(store.corrupt_for_test("k"));
        assert_eq!(store.get("k").unwrap_err(), StoreError::IntegrityFailure);
        assert!(!store.corrupt_for_test("missing"));
    }

    #[test]
    fn concurrent_readers() {
        let store = std::sync::Arc::new(ObjectStore::new());
        store.put("shared", Bytes::from(vec![7u8; 1024]));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let store = store.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    let (_, data) = store.get("shared").unwrap();
                    assert_eq!(data.len(), 1024);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }
}
