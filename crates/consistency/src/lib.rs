//! # memorydb-consistency — linearizability checking (paper §7.2.2)
//!
//! MemoryDB validates its consistency claims by recording concurrent client
//! histories and checking them with porcupine, a linearizability checker.
//! This crate is a from-scratch Rust equivalent:
//!
//! * [`checker`] — the Wing–Gong tree search with Lowe's memoization
//!   (cache of `(linearized-set, state)` pairs) and **P-compositionality**
//!   (per-key partitioning), the same algorithm family porcupine uses.
//! * [`model`] — sequential specifications: a per-key register/value model
//!   covering the command shapes the histories exercise.
//! * [`history`] — a thread-safe recorder of invoke/return events with
//!   monotonic timestamps.
//! * [`generator`] — a spec-driven command generator with **argument
//!   biasing** (§7.2.2.2): keys and values are drawn from small domains so
//!   contention and edge cases actually occur.

pub mod checker;
pub mod generator;
pub mod history;
pub mod model;

pub use checker::{check, CheckOutcome, Model, Operation};
pub use generator::CommandGenerator;
pub use history::{HistoryRecorder, OpHandle};
pub use model::{KvInput, KvModel, KvOutput};
