//! Spec-driven command generation with argument biasing (paper §7.2.2.2).
//!
//! "To ensure the framework has full coverage over the Redis API, we parse
//! the API specification provided by the engine and generate commands based
//! on the output. We leverage argument biasing to improve our testing
//! coverage, especially around edge-cases."
//!
//! This generator reads the engine's command table and produces
//! syntactically valid commands. **Argument biasing**: keys come from a
//! tiny pool (forcing contention and type collisions), values are biased
//! toward edge cases (empty, binary, huge-ish, numeric extremes), counts
//! and ranges toward boundaries (0, 1, -1, ±max).

use bytes::Bytes;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A biased random command generator.
pub struct CommandGenerator {
    rng: StdRng,
    keys: Vec<String>,
}

impl CommandGenerator {
    /// Creates a generator with `key_domain` distinct keys (small domains
    /// maximize contention).
    pub fn new(seed: u64, key_domain: usize) -> CommandGenerator {
        CommandGenerator {
            rng: StdRng::seed_from_u64(seed),
            keys: (0..key_domain.max(1)).map(|i| format!("key{i}")).collect(),
        }
    }

    fn key(&mut self) -> String {
        let i = self.rng.gen_range(0..self.keys.len());
        self.keys[i].clone()
    }

    /// A biased value: empty / short / binary / long / numeric extreme.
    fn value(&mut self) -> Vec<u8> {
        match self.rng.gen_range(0..6) {
            0 => Vec::new(),
            1 => vec![b'a' + self.rng.gen_range(0..26)],
            2 => (0..self.rng.gen_range(1..8))
                .map(|_| self.rng.gen::<u8>())
                .collect(),
            3 => vec![b'x'; self.rng.gen_range(64..256)],
            4 => i64::MAX.to_string().into_bytes(),
            _ => self.rng.gen_range(-100i64..100).to_string().into_bytes(),
        }
    }

    /// A biased integer: boundaries dominate.
    fn int(&mut self) -> i64 {
        match self.rng.gen_range(0..7) {
            0 => 0,
            1 => 1,
            2 => -1,
            3 => i64::MAX,
            4 => i64::MIN,
            _ => self.rng.gen_range(-1000..1000),
        }
    }

    /// A biased score string for ZADD and friends.
    fn score(&mut self) -> String {
        match self.rng.gen_range(0..6) {
            0 => "0".into(),
            1 => "+inf".into(),
            2 => "-inf".into(),
            3 => "1.5e300".into(),
            _ => format!("{:.3}", self.rng.gen_range(-100.0..100.0)),
        }
    }

    /// Names of all commands the generator can produce (subset of the
    /// engine's table: commands with data-path semantics).
    pub fn covered_commands() -> Vec<&'static str> {
        vec![
            "GET",
            "SET",
            "SETNX",
            "GETSET",
            "GETDEL",
            "APPEND",
            "STRLEN",
            "INCR",
            "DECR",
            "INCRBY",
            "DECRBY",
            "INCRBYFLOAT",
            "MGET",
            "MSET",
            "SETRANGE",
            "GETRANGE",
            "DEL",
            "EXISTS",
            "TYPE",
            "EXPIRE",
            "PEXPIRE",
            "TTL",
            "PTTL",
            "PERSIST",
            "RENAME",
            "COPY",
            "HSET",
            "HGET",
            "HDEL",
            "HLEN",
            "HGETALL",
            "HINCRBY",
            "HEXISTS",
            "HKEYS",
            "HVALS",
            "LPUSH",
            "RPUSH",
            "LPOP",
            "RPOP",
            "LLEN",
            "LRANGE",
            "LINDEX",
            "LSET",
            "LREM",
            "LTRIM",
            "SADD",
            "SREM",
            "SMEMBERS",
            "SISMEMBER",
            "SCARD",
            "SPOP",
            "SMOVE",
            "SUNIONSTORE",
            "SINTERSTORE",
            "SDIFFSTORE",
            "ZADD",
            "ZREM",
            "ZSCORE",
            "ZINCRBY",
            "ZCARD",
            "ZCOUNT",
            "ZRANGE",
            "ZRANK",
            "ZPOPMIN",
            "ZPOPMAX",
            "ZREMRANGEBYSCORE",
            "XADD",
            "XLEN",
            "XRANGE",
            "XDEL",
            "XTRIM",
            "PFADD",
            "PFCOUNT",
            "PFMERGE",
        ]
    }

    /// Generates one command.
    pub fn gen_command(&mut self) -> Vec<Bytes> {
        let commands = Self::covered_commands();
        let name = commands[self.rng.gen_range(0..commands.len())];
        self.gen_named(name)
    }

    /// Generates a command with a specific name.
    pub fn gen_named(&mut self, name: &str) -> Vec<Bytes> {
        let k = self.key();
        let k2 = self.key();
        let parts: Vec<Vec<u8>> = match name {
            "GET" | "STRLEN" | "INCR" | "DECR" | "TTL" | "PTTL" | "PERSIST" | "TYPE" | "GETDEL"
            | "HLEN" | "HGETALL" | "HKEYS" | "HVALS" | "LLEN" | "LPOP" | "RPOP" | "SMEMBERS"
            | "SCARD" | "SPOP" | "ZCARD" | "ZPOPMIN" | "ZPOPMAX" | "XLEN" | "PFCOUNT"
            | "EXISTS" | "DEL" => {
                vec![name.into(), k.into_bytes()]
            }
            "SET" | "SETNX" | "GETSET" | "APPEND" => {
                vec![name.into(), k.into_bytes(), self.value()]
            }
            "INCRBY" | "DECRBY" | "EXPIRE" | "PEXPIRE" => {
                vec![
                    name.into(),
                    k.into_bytes(),
                    self.int().to_string().into_bytes(),
                ]
            }
            "INCRBYFLOAT" => vec![name.into(), k.into_bytes(), self.score().into_bytes()],
            "MGET" => vec![name.into(), k.into_bytes(), k2.into_bytes()],
            "MSET" => vec![
                name.into(),
                k.into_bytes(),
                self.value(),
                k2.into_bytes(),
                self.value(),
            ],
            "SETRANGE" => vec![
                name.into(),
                k.into_bytes(),
                self.rng.gen_range(0..64).to_string().into_bytes(),
                self.value(),
            ],
            "GETRANGE" | "LRANGE" | "LTRIM" => vec![
                name.into(),
                k.into_bytes(),
                self.int().to_string().into_bytes(),
                self.int().to_string().into_bytes(),
            ],
            "RENAME" | "COPY" | "SMOVE" => {
                let mut v = vec![name.into(), k.into_bytes(), k2.into_bytes()];
                if name == "SMOVE" {
                    v.push(self.value());
                }
                v
            }
            "HSET" => vec![name.into(), k.into_bytes(), b"field".to_vec(), self.value()],
            "HGET" | "HDEL" | "HEXISTS" => {
                vec![name.into(), k.into_bytes(), b"field".to_vec()]
            }
            "HINCRBY" => vec![
                name.into(),
                k.into_bytes(),
                b"field".to_vec(),
                self.int().to_string().into_bytes(),
            ],
            "LPUSH" | "RPUSH" | "SADD" | "SREM" | "PFADD" => {
                vec![name.into(), k.into_bytes(), self.value()]
            }
            "LINDEX" => vec![
                name.into(),
                k.into_bytes(),
                self.int().to_string().into_bytes(),
            ],
            "LSET" => vec![
                name.into(),
                k.into_bytes(),
                self.int().to_string().into_bytes(),
                self.value(),
            ],
            "LREM" => vec![
                name.into(),
                k.into_bytes(),
                self.int().to_string().into_bytes(),
                self.value(),
            ],
            "SISMEMBER" => vec![name.into(), k.into_bytes(), self.value()],
            "SUNIONSTORE" | "SINTERSTORE" | "SDIFFSTORE" | "PFMERGE" => {
                vec![name.into(), k.into_bytes(), k2.into_bytes()]
            }
            "ZADD" => vec![
                name.into(),
                k.into_bytes(),
                self.score().into_bytes(),
                self.value(),
            ],
            "ZREM" | "ZSCORE" | "ZRANK" => vec![name.into(), k.into_bytes(), self.value()],
            "ZINCRBY" => vec![
                name.into(),
                k.into_bytes(),
                self.score().into_bytes(),
                self.value(),
            ],
            "ZCOUNT" | "ZREMRANGEBYSCORE" => vec![
                name.into(),
                k.into_bytes(),
                "-inf".into(),
                self.score().into_bytes(),
            ],
            "ZRANGE" => vec![
                name.into(),
                k.into_bytes(),
                self.int().to_string().into_bytes(),
                self.int().to_string().into_bytes(),
            ],
            "XADD" => vec![
                name.into(),
                k.into_bytes(),
                b"*".to_vec(),
                b"f".to_vec(),
                self.value(),
            ],
            "XRANGE" => vec![name.into(), k.into_bytes(), b"-".to_vec(), b"+".to_vec()],
            "XDEL" => vec![name.into(), k.into_bytes(), b"1-1".to_vec()],
            "XTRIM" => vec![
                name.into(),
                k.into_bytes(),
                b"MAXLEN".to_vec(),
                self.rng.gen_range(0..10).to_string().into_bytes(),
            ],
            other => vec![other.into(), k.into_bytes()],
        };
        parts.into_iter().map(Bytes::from).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memorydb_engine::exec::{Engine, Role, SessionState};
    use memorydb_engine::Frame;

    #[test]
    fn covered_commands_exist_in_the_spec() {
        let known: std::collections::HashSet<&str> = memorydb_engine::command::all_commands()
            .iter()
            .map(|s| s.name)
            .collect();
        for name in CommandGenerator::covered_commands() {
            assert!(known.contains(name), "{name} missing from the engine spec");
        }
        assert!(CommandGenerator::covered_commands().len() >= 60);
    }

    #[test]
    fn generated_commands_never_crash_the_engine() {
        let mut generator = CommandGenerator::new(1, 4);
        let mut engine = Engine::new(Role::Primary);
        engine.set_time_ms(1);
        let mut session = SessionState::new();
        let mut errors = 0;
        let mut oks = 0;
        for _ in 0..5_000 {
            let cmd = generator.gen_command();
            let out = engine.execute(&mut session, &cmd);
            match out.reply {
                Frame::Error(msg) => {
                    // Errors are fine (WRONGTYPE etc.) but never protocol-
                    // level "unknown command" — the generator must emit
                    // valid shapes.
                    assert!(
                        !msg.contains("unknown command"),
                        "generator produced {cmd:?} -> {msg}"
                    );
                    errors += 1;
                }
                _ => oks += 1,
            }
        }
        // Biasing guarantees both success and failure paths get exercised.
        assert!(oks > 1000, "too few successes: {oks}");
        assert!(errors > 50, "too few error paths: {errors}");
    }

    #[test]
    fn generated_workload_replicates_deterministically() {
        // Tie the generator into the core replication property: random
        // biased workloads must keep primary and replica convergent.
        let mut generator = CommandGenerator::new(7, 3);
        let mut primary = Engine::new(Role::Primary);
        primary.set_time_ms(1000);
        primary.seed_rng(99);
        let mut replica = Engine::new(Role::Replica);
        let mut session = SessionState::new();
        for _ in 0..3_000 {
            let cmd = generator.gen_command();
            let out = primary.execute(&mut session, &cmd);
            for eff in &out.effects {
                replica
                    .apply_effect(eff)
                    .unwrap_or_else(|e| panic!("{cmd:?} effect {eff:?} diverged: {e}"));
            }
        }
        assert_eq!(
            memorydb_engine::rdb::dump(&primary.db),
            memorydb_engine::rdb::dump(&replica.db)
        );
    }

    #[test]
    fn determinism_of_the_generator_itself() {
        let a: Vec<_> = {
            let mut g = CommandGenerator::new(42, 5);
            (0..50).map(|_| g.gen_command()).collect()
        };
        let b: Vec<_> = {
            let mut g = CommandGenerator::new(42, 5);
            (0..50).map(|_| g.gen_command()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<_> = {
            let mut g = CommandGenerator::new(43, 5);
            (0..50).map(|_| g.gen_command()).collect()
        };
        assert_ne!(a, c);
    }
}
