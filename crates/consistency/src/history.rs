//! Thread-safe recording of concurrent histories.

use crate::checker::Operation;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Handle for an in-flight operation; complete it with
/// [`HistoryRecorder::finish`].
#[derive(Debug)]
pub struct OpHandle<I> {
    client: usize,
    input: I,
    call: u64,
}

struct Inner<I, O> {
    ops: Mutex<Vec<Operation<I, O>>>,
    // A logical clock strictly ordered with real time: ticks on every
    // event, so equal wall-clock instants still get distinct, ordered
    // stamps consistent with happens-before.
    clock: AtomicU64,
    epoch: Instant,
}

/// Records invoke/return events from many client threads.
pub struct HistoryRecorder<I, O> {
    inner: Arc<Inner<I, O>>,
}

impl<I, O> Clone for HistoryRecorder<I, O> {
    fn clone(&self) -> Self {
        HistoryRecorder {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<I, O> Default for HistoryRecorder<I, O> {
    fn default() -> Self {
        Self::new()
    }
}

impl<I, O> HistoryRecorder<I, O> {
    /// Creates an empty recorder.
    pub fn new() -> HistoryRecorder<I, O> {
        HistoryRecorder {
            inner: Arc::new(Inner {
                ops: Mutex::new(Vec::new()),
                clock: AtomicU64::new(0),
                epoch: Instant::now(),
            }),
        }
    }

    fn stamp(&self) -> u64 {
        // Nanoseconds since epoch, made strictly monotone across threads by
        // a fetch_max-style CAS loop.
        let now = self.inner.epoch.elapsed().as_nanos() as u64;
        let mut cur = self.inner.clock.load(Ordering::SeqCst);
        loop {
            let next = now.max(cur + 1);
            match self
                .inner
                .clock
                .compare_exchange(cur, next, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => return next,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Records an invocation.
    pub fn begin(&self, client: usize, input: I) -> OpHandle<I> {
        OpHandle {
            client,
            input,
            call: self.stamp(),
        }
    }

    /// Records the matching return.
    pub fn finish(&self, handle: OpHandle<I>, output: O) {
        let ret = self.stamp();
        self.inner.ops.lock().push(Operation {
            client: handle.client,
            input: handle.input,
            output,
            call: handle.call,
            ret,
        });
    }

    /// Records an operation whose outcome is unknown (a Jepsen-style "info"
    /// op): the return stamp is `u64::MAX`, so the checker may linearize it
    /// anywhere from its invocation to the end of the history. Use this for
    /// errored/timed-out writes that may or may not have been applied —
    /// paired with a model output that treats the write as applied, this is
    /// sound for linearizability: if the write never landed, linearizing it
    /// after every completed operation leaves all observed outputs legal.
    pub fn finish_open(&self, handle: OpHandle<I>, output: O) {
        self.inner.ops.lock().push(Operation {
            client: handle.client,
            input: handle.input,
            output,
            call: handle.call,
            ret: u64::MAX,
        });
    }

    /// Takes the recorded history (completed operations only — in-flight
    /// operations at crash time are legitimately ambiguous and omitted,
    /// which is the permissive treatment).
    pub fn take(&self) -> Vec<Operation<I, O>> {
        std::mem::take(&mut self.inner.ops.lock())
    }

    /// Number of completed operations recorded so far.
    pub fn len(&self) -> usize {
        self.inner.ops.lock().len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_intervals_in_order() {
        let rec: HistoryRecorder<&'static str, i32> = HistoryRecorder::new();
        let h = rec.begin(0, "op1");
        rec.finish(h, 1);
        let h2 = rec.begin(1, "op2");
        rec.finish(h2, 2);
        let ops = rec.take();
        assert_eq!(ops.len(), 2);
        assert!(ops[0].call < ops[0].ret);
        assert!(
            ops[0].ret < ops[1].call,
            "sequential ops have ordered stamps"
        );
        assert!(rec.is_empty());
    }

    #[test]
    fn finish_open_records_an_unbounded_return_window() {
        let rec: HistoryRecorder<&'static str, i32> = HistoryRecorder::new();
        let h = rec.begin(0, "ambiguous-write");
        rec.finish_open(h, -1);
        let h2 = rec.begin(0, "later-op");
        rec.finish(h2, 2);
        let ops = rec.take();
        assert_eq!(ops[0].ret, u64::MAX, "open op overlaps everything after it");
        assert!(ops[1].ret < u64::MAX);
        assert!(ops[0].call < ops[1].call);
    }

    #[test]
    fn concurrent_recording_is_safe_and_strictly_stamped() {
        let rec: HistoryRecorder<usize, usize> = HistoryRecorder::new();
        let mut handles = Vec::new();
        for t in 0..8 {
            let rec = rec.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..100 {
                    let h = rec.begin(t, i);
                    rec.finish(h, i);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let ops = rec.take();
        assert_eq!(ops.len(), 800);
        // All stamps distinct.
        let mut stamps: Vec<u64> = ops.iter().flat_map(|o| [o.call, o.ret]).collect();
        stamps.sort_unstable();
        stamps.dedup();
        assert_eq!(stamps.len(), 1600);
    }
}
