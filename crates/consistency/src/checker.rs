//! The linearizability checker: Wing–Gong search with Lowe's memoization.
//!
//! Given a concurrent history of operations (invoke/return timestamp
//! intervals), decide whether some linear order of the operations —
//! consistent with real-time precedence — is legal under a sequential
//! model. The search walks the history as a doubly-linked list of
//! call/return events, tentatively linearizing calls and backtracking on
//! dead ends; a cache of `(linearized-set, state)` pairs prunes re-visits
//! (Lowe's optimization), and P-compositionality splits the history into
//! independent sub-histories (per key) checked separately.

use std::collections::HashSet;
use std::hash::Hash;
use std::time::{Duration, Instant};

/// One completed operation in a history.
#[derive(Debug, Clone)]
pub struct Operation<I, O> {
    /// Issuing client (diagnostics only).
    pub client: usize,
    /// The operation's input.
    pub input: I,
    /// The observed output.
    pub output: O,
    /// Invocation timestamp (any monotonic unit).
    pub call: u64,
    /// Return timestamp; must be ≥ `call`.
    pub ret: u64,
}

/// A sequential specification.
pub trait Model {
    /// Sequential state.
    type State: Clone + Eq + Hash;
    /// Operation input.
    type Input: Clone;
    /// Operation output.
    type Output: Clone;

    /// Initial state.
    fn init(&self) -> Self::State;

    /// Applies `input` to `state`; returns whether `output` is legal and
    /// the successor state.
    fn step(
        &self,
        state: &Self::State,
        input: &Self::Input,
        output: &Self::Output,
    ) -> (bool, Self::State);

    /// Splits a history into independently-checkable partitions
    /// (P-compositionality). Default: one partition.
    fn partition(
        &self,
        ops: Vec<Operation<Self::Input, Self::Output>>,
    ) -> Vec<Vec<Operation<Self::Input, Self::Output>>> {
        vec![ops]
    }
}

/// Result of a check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckOutcome {
    /// A legal linearization exists.
    Ok,
    /// No legal linearization exists — the history is NOT linearizable.
    Illegal,
    /// The search hit its time budget before deciding.
    Unknown,
}

/// Checks a history against a model within a time budget.
pub fn check<M: Model>(
    model: &M,
    history: Vec<Operation<M::Input, M::Output>>,
    timeout: Duration,
) -> CheckOutcome {
    let deadline = Instant::now() + timeout;
    for part in model.partition(history) {
        match check_partition(model, part, deadline) {
            CheckOutcome::Ok => continue,
            other => return other,
        }
    }
    CheckOutcome::Ok
}

// --- the WGL search over one partition -------------------------------------

#[derive(Clone, Copy, PartialEq, Eq)]
enum EventKind {
    Call,
    Return,
}

/// Event node in the doubly-linked list. `usize::MAX` is the null link.
struct Event {
    kind: EventKind,
    op: usize,
    prev: usize,
    next: usize,
    /// For a Call: index of its matching Return event.
    matching: usize,
}

const NIL: usize = usize::MAX;

struct EventList {
    events: Vec<Event>,
    head: usize, // sentinel-free: index of first live event
}

impl EventList {
    /// Builds the event list from operations, ordered by (time, Call<Return).
    fn build<I, O>(ops: &[Operation<I, O>]) -> EventList {
        let mut order: Vec<(u64, u8, usize, EventKind)> = Vec::with_capacity(ops.len() * 2);
        for (i, op) in ops.iter().enumerate() {
            // Calls sort before returns at equal timestamps, making
            // same-instant operations concurrent (permissive, avoiding
            // false Illegal verdicts from clock granularity).
            order.push((op.call, 0, i, EventKind::Call));
            order.push((op.ret, 1, i, EventKind::Return));
        }
        order.sort_by_key(|&(t, k, i, _)| (t, k, i));
        let mut events: Vec<Event> = order
            .iter()
            .map(|&(_, _, op, kind)| Event {
                kind,
                op,
                prev: NIL,
                next: NIL,
                matching: NIL,
            })
            .collect();
        // Link.
        for i in 0..events.len() {
            events[i].prev = if i == 0 { NIL } else { i - 1 };
            events[i].next = if i + 1 == events.len() { NIL } else { i + 1 };
        }
        // Match calls to returns.
        let mut pending_call: Vec<usize> = vec![NIL; ops.len()];
        for i in 0..events.len() {
            match events[i].kind {
                EventKind::Call => pending_call[events[i].op] = i,
                EventKind::Return => {
                    let c = pending_call[events[i].op];
                    events[c].matching = i;
                    events[i].matching = c;
                }
            }
        }
        EventList { events, head: 0 }
    }

    fn lift(&mut self, call: usize) {
        // Unlink the call and its return.
        let ret = self.events[call].matching;
        for &e in &[call, ret] {
            let (p, n) = (self.events[e].prev, self.events[e].next);
            if p != NIL {
                self.events[p].next = n;
            } else if self.head == e {
                self.head = n;
            }
            if n != NIL {
                self.events[n].prev = p;
            }
        }
    }

    fn unlift(&mut self, call: usize) {
        // Re-link in reverse order: return first, then call.
        let ret = self.events[call].matching;
        for &e in &[ret, call] {
            let (p, n) = (self.events[e].prev, self.events[e].next);
            if p != NIL {
                self.events[p].next = e;
            } else {
                self.head = e;
            }
            if n != NIL {
                self.events[n].prev = e;
            }
        }
    }
}

/// Compact bitset keyed into the memoization cache.
#[derive(Clone, PartialEq, Eq, Hash)]
struct BitSet(Vec<u64>);

impl BitSet {
    fn new(n: usize) -> BitSet {
        BitSet(vec![0; n.div_ceil(64)])
    }
    fn set(&mut self, i: usize) {
        self.0[i / 64] |= 1 << (i % 64);
    }
    fn clear(&mut self, i: usize) {
        self.0[i / 64] &= !(1 << (i % 64));
    }
}

fn check_partition<M: Model>(
    model: &M,
    ops: Vec<Operation<M::Input, M::Output>>,
    deadline: Instant,
) -> CheckOutcome {
    let n = ops.len();
    if n == 0 {
        return CheckOutcome::Ok;
    }
    let mut list = EventList::build(&ops);
    let mut state = model.init();
    let mut linearized = BitSet::new(n);
    let mut cache: HashSet<(BitSet, M::State)> = HashSet::new();
    // Undo stack: (call event index, state before linearizing it).
    let mut calls: Vec<(usize, M::State)> = Vec::new();
    let mut entry = list.head;
    let mut steps: u64 = 0;

    loop {
        steps += 1;
        if steps.is_multiple_of(4096) && Instant::now() >= deadline {
            return CheckOutcome::Unknown;
        }
        if list.head == NIL {
            return CheckOutcome::Ok; // everything linearized
        }
        if entry == NIL {
            // Exhausted candidates at this level: backtrack.
            let Some((call, prev_state)) = calls.pop() else {
                return CheckOutcome::Illegal;
            };
            state = prev_state;
            linearized.clear(list.events[call].op);
            list.unlift(call);
            entry = list.events[call].next;
            continue;
        }
        let ev = &list.events[entry];
        match ev.kind {
            EventKind::Call => {
                let op_idx = ev.op;
                let (ok, new_state) = model.step(&state, &ops[op_idx].input, &ops[op_idx].output);
                if ok {
                    let mut tentative = linearized.clone();
                    tentative.set(op_idx);
                    if cache.insert((tentative.clone(), new_state.clone())) {
                        // Linearize it.
                        calls.push((entry, state));
                        state = new_state;
                        linearized = tentative;
                        list.lift(entry);
                        entry = list.head;
                        continue;
                    }
                }
                entry = list.events[entry].next;
            }
            EventKind::Return => {
                // A pending return blocks further postponement: everything
                // before it must linearize first; trigger backtracking by
                // treating this as "no candidate".
                entry = NIL;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A simple int register: Write(v) -> Ok, Read -> v.
    struct IntRegister;

    #[derive(Debug, Clone, PartialEq)]
    enum In {
        Read,
        Write(i64),
    }

    #[derive(Debug, Clone, PartialEq)]
    enum Out {
        Value(i64),
        Ok,
    }

    impl Model for IntRegister {
        type State = i64;
        type Input = In;
        type Output = Out;

        fn init(&self) -> i64 {
            0
        }

        fn step(&self, state: &i64, input: &In, output: &Out) -> (bool, i64) {
            match (input, output) {
                (In::Read, Out::Value(v)) => (v == state, *state),
                (In::Write(v), Out::Ok) => (true, *v),
                _ => (false, *state),
            }
        }
    }

    fn op(client: usize, input: In, output: Out, call: u64, ret: u64) -> Operation<In, Out> {
        Operation {
            client,
            input,
            output,
            call,
            ret,
        }
    }

    const T: Duration = Duration::from_secs(10);

    #[test]
    fn empty_history_is_linearizable() {
        assert_eq!(check(&IntRegister, vec![], T), CheckOutcome::Ok);
    }

    #[test]
    fn sequential_history_ok() {
        let h = vec![
            op(0, In::Write(1), Out::Ok, 0, 1),
            op(0, In::Read, Out::Value(1), 2, 3),
            op(0, In::Write(2), Out::Ok, 4, 5),
            op(0, In::Read, Out::Value(2), 6, 7),
        ];
        assert_eq!(check(&IntRegister, h, T), CheckOutcome::Ok);
    }

    #[test]
    fn stale_read_after_write_returns_is_illegal() {
        // W(1) completes before the read starts, yet the read sees 0.
        let h = vec![
            op(0, In::Write(1), Out::Ok, 0, 1),
            op(1, In::Read, Out::Value(0), 2, 3),
        ];
        assert_eq!(check(&IntRegister, h, T), CheckOutcome::Illegal);
    }

    #[test]
    fn concurrent_read_may_see_either_value() {
        // Read overlaps the write: both 0 and 1 are legal.
        let h0 = vec![
            op(0, In::Write(1), Out::Ok, 0, 10),
            op(1, In::Read, Out::Value(0), 1, 2),
        ];
        let h1 = vec![
            op(0, In::Write(1), Out::Ok, 0, 10),
            op(1, In::Read, Out::Value(1), 1, 2),
        ];
        assert_eq!(check(&IntRegister, h0, T), CheckOutcome::Ok);
        assert_eq!(check(&IntRegister, h1, T), CheckOutcome::Ok);
    }

    #[test]
    fn read_cannot_unsee_a_value() {
        // Classic: two sequential reads observe 1 then 0 with no
        // intervening write back to 0 — not linearizable.
        let h = vec![
            op(0, In::Write(1), Out::Ok, 0, 10),
            op(1, In::Read, Out::Value(1), 11, 12),
            op(1, In::Read, Out::Value(0), 13, 14),
        ];
        assert_eq!(check(&IntRegister, h, T), CheckOutcome::Illegal);
    }

    #[test]
    fn interleaved_writers_classic_example() {
        // Porcupine's standard example: C0 writes 0, C1 writes 1, C2 reads.
        let ok = vec![
            op(0, In::Write(100), Out::Ok, 0, 10),
            op(1, In::Write(200), Out::Ok, 5, 15),
            op(2, In::Read, Out::Value(200), 6, 7),
            op(3, In::Read, Out::Value(100), 8, 9),
        ];
        // Read(200) then Read(100): 200 before 100 requires W(100) to
        // linearize after W(200); both orders are possible given overlap —
        // but the two reads are sequential (6..7 then 8..9), so we need
        // state to go 200 -> 100, i.e. W(200) ; R(200) ; W(100) ; R(100).
        // That respects all intervals, so it IS linearizable.
        assert_eq!(check(&IntRegister, ok, T), CheckOutcome::Ok);

        let bad = vec![
            op(0, In::Write(100), Out::Ok, 0, 10),
            op(1, In::Write(200), Out::Ok, 5, 15),
            op(2, In::Read, Out::Value(200), 6, 7),
            op(3, In::Read, Out::Value(100), 8, 9),
            // A third read after both writes completed seeing 200 again —
            // needs 100 -> 200 after R(100), but W(200) was already used.
            op(4, In::Read, Out::Value(200), 20, 21),
        ];
        assert_eq!(check(&IntRegister, bad, T), CheckOutcome::Illegal);
    }

    #[test]
    fn wrong_write_ack_rejected() {
        let h = vec![op(0, In::Write(1), Out::Value(5), 0, 1)];
        assert_eq!(check(&IntRegister, h, T), CheckOutcome::Illegal);
    }

    /// Brute-force oracle: try all permutations respecting real-time order.
    fn brute_force(ops: &[Operation<In, Out>]) -> bool {
        fn recurse(
            model: &IntRegister,
            ops: &[Operation<In, Out>],
            remaining: &mut Vec<usize>,
            state: i64,
        ) -> bool {
            if remaining.is_empty() {
                return true;
            }
            for pos in 0..remaining.len() {
                let idx = remaining[pos];
                // Real-time: cannot linearize an op if some other remaining
                // op returned before this one was called.
                let blocked = remaining
                    .iter()
                    .any(|&other| other != idx && ops[other].ret < ops[idx].call);
                if blocked {
                    continue;
                }
                let (ok, new_state) = model.step(&state, &ops[idx].input, &ops[idx].output);
                if !ok {
                    continue;
                }
                remaining.remove(pos);
                if recurse(model, ops, remaining, new_state) {
                    remaining.insert(pos, idx);
                    return true;
                }
                remaining.insert(pos, idx);
            }
            false
        }
        let mut remaining: Vec<usize> = (0..ops.len()).collect();
        recurse(&IntRegister, ops, &mut remaining, 0)
    }

    #[test]
    fn matches_brute_force_on_random_histories() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0xC0FFEE);
        let mut checked = 0;
        let mut illegal_seen = 0;
        for _case in 0..300 {
            let n = rng.gen_range(1..=6);
            let mut ops = Vec::new();
            for client in 0..n {
                let call = rng.gen_range(0..20) * 2;
                let ret = call + rng.gen_range(1..10) * 2 + 1;
                let (input, output) = if rng.gen_bool(0.5) {
                    (In::Write(rng.gen_range(1..4)), Out::Ok)
                } else {
                    (In::Read, Out::Value(rng.gen_range(0..4)))
                };
                ops.push(op(client, input, output, call, ret));
            }
            let expect = brute_force(&ops);
            let got = check(&IntRegister, ops.clone(), T);
            let got_bool = match got {
                CheckOutcome::Ok => true,
                CheckOutcome::Illegal => false,
                CheckOutcome::Unknown => panic!("tiny history timed out"),
            };
            assert_eq!(got_bool, expect, "mismatch on {ops:?}");
            checked += 1;
            if !expect {
                illegal_seen += 1;
            }
        }
        assert_eq!(checked, 300);
        assert!(
            illegal_seen > 30,
            "random cases should include illegal ones"
        );
    }

    #[test]
    fn large_legal_history_checks_fast() {
        // 2000 sequential ops: the memoized search must be ~linear here.
        let mut h = Vec::new();
        let mut t = 0;
        let mut value = 0;
        for i in 0..2000 {
            if i % 3 == 0 {
                value = i as i64;
                h.push(op(0, In::Write(value), Out::Ok, t, t + 1));
            } else {
                h.push(op(0, In::Read, Out::Value(value), t, t + 1));
            }
            t += 2;
        }
        let t0 = Instant::now();
        assert_eq!(check(&IntRegister, h, T), CheckOutcome::Ok);
        assert!(t0.elapsed() < Duration::from_secs(2));
    }

    #[test]
    fn timeout_returns_unknown() {
        // An adversarial all-concurrent history with contradictory reads
        // forces heavy search; a zero budget must yield Unknown quickly.
        let mut h = Vec::new();
        for i in 0..14 {
            h.push(op(i, In::Write(i as i64), Out::Ok, 0, 1000));
            h.push(op(
                100 + i,
                In::Read,
                Out::Value(((i + 7) % 14) as i64),
                0,
                1000,
            ));
        }
        let got = check(&IntRegister, h, Duration::from_millis(0));
        assert!(matches!(got, CheckOutcome::Unknown | CheckOutcome::Illegal));
    }
}
