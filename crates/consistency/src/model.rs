//! Sequential specification of the key-value surface the consistency tests
//! exercise, with per-key partitioning (P-compositionality).

use crate::checker::{Model, Operation};
use std::collections::HashMap;

/// Input of one KV operation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum KvInput {
    /// `GET key`.
    Get(String),
    /// `SET key value`.
    Set(String, String),
    /// `DEL key`.
    Del(String),
    /// `INCR key`.
    Incr(String),
    /// `APPEND key suffix`.
    Append(String, String),
}

impl KvInput {
    /// The key this operation touches (the partition function's basis).
    pub fn key(&self) -> &str {
        match self {
            KvInput::Get(k)
            | KvInput::Set(k, _)
            | KvInput::Del(k)
            | KvInput::Incr(k)
            | KvInput::Append(k, _) => k,
        }
    }
}

/// Observed output of one KV operation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum KvOutput {
    /// `+OK`.
    Ok,
    /// Bulk value or nil.
    Value(Option<String>),
    /// Integer reply.
    Int(i64),
    /// An error reply (never legal in these histories).
    Error,
    /// The operation's outcome is unknown (errored/timed-out write that may
    /// or may not have been applied — a Jepsen-style "info" op). The model
    /// treats the write as applied; recording it with an open return window
    /// (ret = `u64::MAX`) lets the checker also linearize it arbitrarily
    /// late, which together covers both the applied and never-applied cases.
    Ambiguous,
}

/// The per-key sequential model: state is the key's current value.
#[derive(Debug, Clone, Copy, Default)]
pub struct KvModel;

impl Model for KvModel {
    type State = Option<String>;
    type Input = KvInput;
    type Output = KvOutput;

    fn init(&self) -> Self::State {
        None
    }

    fn step(
        &self,
        state: &Self::State,
        input: &Self::Input,
        output: &Self::Output,
    ) -> (bool, Self::State) {
        match (input, output) {
            (KvInput::Get(_), KvOutput::Value(v)) => (v == state, state.clone()),
            (KvInput::Set(_, v), KvOutput::Ok) => (true, Some(v.clone())),
            (KvInput::Del(_), KvOutput::Int(n)) => {
                let existed = state.is_some() as i64;
                (*n == existed, None)
            }
            (KvInput::Incr(_), KvOutput::Int(n)) => {
                let current: i64 = match state {
                    None => 0,
                    Some(s) => match s.parse() {
                        Ok(v) => v,
                        Err(_) => return (false, state.clone()),
                    },
                };
                let next = current + 1;
                (*n == next, Some(next.to_string()))
            }
            (KvInput::Append(_, suffix), KvOutput::Int(n)) => {
                let mut new = state.clone().unwrap_or_default();
                new.push_str(suffix);
                (*n == new.len() as i64, Some(new))
            }
            // Ambiguous writes: any return value would have been legal, so
            // the transition is unconditionally accepted with the write's
            // effect applied. Ambiguous reads carry no information and must
            // not be recorded (a Get here is a recorder bug, not a legal op).
            (KvInput::Set(_, v), KvOutput::Ambiguous) => (true, Some(v.clone())),
            (KvInput::Del(_), KvOutput::Ambiguous) => (true, None),
            (KvInput::Incr(_), KvOutput::Ambiguous) => {
                let current: i64 = match state {
                    None => 0,
                    Some(s) => match s.parse() {
                        Ok(v) => v,
                        Err(_) => return (false, state.clone()),
                    },
                };
                (true, Some((current + 1).to_string()))
            }
            (KvInput::Append(_, suffix), KvOutput::Ambiguous) => {
                let mut new = state.clone().unwrap_or_default();
                new.push_str(suffix);
                (true, Some(new))
            }
            _ => (false, state.clone()),
        }
    }

    fn partition(
        &self,
        ops: Vec<Operation<KvInput, KvOutput>>,
    ) -> Vec<Vec<Operation<KvInput, KvOutput>>> {
        let mut by_key: HashMap<String, Vec<Operation<KvInput, KvOutput>>> = HashMap::new();
        for op in ops {
            by_key
                .entry(op.input.key().to_string())
                .or_default()
                .push(op);
        }
        by_key.into_values().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::{check, CheckOutcome};
    use std::time::Duration;

    fn op(
        client: usize,
        input: KvInput,
        output: KvOutput,
        call: u64,
        ret: u64,
    ) -> Operation<KvInput, KvOutput> {
        Operation {
            client,
            input,
            output,
            call,
            ret,
        }
    }

    const T: Duration = Duration::from_secs(5);

    #[test]
    fn get_set_del_semantics() {
        let h = vec![
            op(0, KvInput::Get("k".into()), KvOutput::Value(None), 0, 1),
            op(0, KvInput::Set("k".into(), "v".into()), KvOutput::Ok, 2, 3),
            op(
                0,
                KvInput::Get("k".into()),
                KvOutput::Value(Some("v".into())),
                4,
                5,
            ),
            op(0, KvInput::Del("k".into()), KvOutput::Int(1), 6, 7),
            op(0, KvInput::Del("k".into()), KvOutput::Int(0), 8, 9),
            op(0, KvInput::Get("k".into()), KvOutput::Value(None), 10, 11),
        ];
        assert_eq!(check(&KvModel, h, T), CheckOutcome::Ok);
    }

    #[test]
    fn incr_and_append_chains() {
        let h = vec![
            op(0, KvInput::Incr("n".into()), KvOutput::Int(1), 0, 1),
            op(0, KvInput::Incr("n".into()), KvOutput::Int(2), 2, 3),
            op(
                0,
                KvInput::Get("n".into()),
                KvOutput::Value(Some("2".into())),
                4,
                5,
            ),
            op(
                0,
                KvInput::Append("s".into(), "ab".into()),
                KvOutput::Int(2),
                0,
                1,
            ),
            op(
                0,
                KvInput::Append("s".into(), "c".into()),
                KvOutput::Int(3),
                2,
                3,
            ),
        ];
        assert_eq!(check(&KvModel, h, T), CheckOutcome::Ok);
    }

    #[test]
    fn incr_on_non_numeric_is_never_legal() {
        let h = vec![
            op(
                0,
                KvInput::Set("k".into(), "abc".into()),
                KvOutput::Ok,
                0,
                1,
            ),
            op(0, KvInput::Incr("k".into()), KvOutput::Int(1), 2, 3),
        ];
        assert_eq!(check(&KvModel, h, T), CheckOutcome::Illegal);
    }

    #[test]
    fn partitioning_checks_keys_independently() {
        // Key `a` is fine; key `b` has a stale read — the whole history is
        // illegal, and partitioning must still find it.
        let h = vec![
            op(0, KvInput::Set("a".into(), "1".into()), KvOutput::Ok, 0, 1),
            op(
                0,
                KvInput::Get("a".into()),
                KvOutput::Value(Some("1".into())),
                2,
                3,
            ),
            op(1, KvInput::Set("b".into(), "1".into()), KvOutput::Ok, 0, 1),
            op(1, KvInput::Get("b".into()), KvOutput::Value(None), 2, 3),
        ];
        assert_eq!(check(&KvModel, h, T), CheckOutcome::Illegal);
    }

    #[test]
    fn ambiguous_write_may_or_may_not_be_observed() {
        // The SET errored out (e.g. CLUSTERDOWN mid-failover): recorded as
        // ambiguous with an open return window. Later reads seeing either
        // the old or the new value must both be legal.
        let saw_new = vec![
            op(
                0,
                KvInput::Set("k".into(), "old".into()),
                KvOutput::Ok,
                0,
                1,
            ),
            op(
                1,
                KvInput::Set("k".into(), "new".into()),
                KvOutput::Ambiguous,
                2,
                u64::MAX,
            ),
            op(
                2,
                KvInput::Get("k".into()),
                KvOutput::Value(Some("new".into())),
                10,
                11,
            ),
        ];
        let saw_old = vec![
            op(
                0,
                KvInput::Set("k".into(), "old".into()),
                KvOutput::Ok,
                0,
                1,
            ),
            op(
                1,
                KvInput::Set("k".into(), "new".into()),
                KvOutput::Ambiguous,
                2,
                u64::MAX,
            ),
            op(
                2,
                KvInput::Get("k".into()),
                KvOutput::Value(Some("old".into())),
                10,
                11,
            ),
        ];
        assert_eq!(check(&KvModel, saw_new, T), CheckOutcome::Ok);
        assert_eq!(check(&KvModel, saw_old, T), CheckOutcome::Ok);

        // But an ambiguous write is not a wildcard: a read of a value nobody
        // ever wrote stays illegal.
        let impossible = vec![
            op(
                0,
                KvInput::Set("k".into(), "old".into()),
                KvOutput::Ok,
                0,
                1,
            ),
            op(
                1,
                KvInput::Set("k".into(), "new".into()),
                KvOutput::Ambiguous,
                2,
                u64::MAX,
            ),
            op(
                2,
                KvInput::Get("k".into()),
                KvOutput::Value(Some("other".into())),
                10,
                11,
            ),
        ];
        assert_eq!(check(&KvModel, impossible, T), CheckOutcome::Illegal);
    }

    #[test]
    fn concurrent_incrs_must_account_exactly() {
        // Two concurrent INCRs may return (1,2) or (2,1)... but never both 1.
        let good = vec![
            op(0, KvInput::Incr("n".into()), KvOutput::Int(1), 0, 10),
            op(1, KvInput::Incr("n".into()), KvOutput::Int(2), 0, 10),
        ];
        let bad = vec![
            op(0, KvInput::Incr("n".into()), KvOutput::Int(1), 0, 10),
            op(1, KvInput::Incr("n".into()), KvOutput::Int(1), 0, 10),
        ];
        assert_eq!(check(&KvModel, good, T), CheckOutcome::Ok);
        assert_eq!(check(&KvModel, bad, T), CheckOutcome::Illegal);
    }
}
