//! Shard snapshots: a point-in-time keyspace image plus the log metadata
//! needed for verified restoration (paper §4.2, §7.2.1).

use bytes::Bytes;
use memorydb_engine::rdb::{self, Crc64};
use memorydb_engine::{Db, EngineVersion};
use memorydb_objectstore::ObjectStore;
use memorydb_txlog::EntryId;

/// A serialized shard snapshot.
///
/// Stores, per §7.2.1: the data itself (with its own internal checksum via
/// the RDB format), the positional identifier of the last log entry the
/// snapshot covers, and the running checksum of the log prefix it captures —
/// the basis for off-box verification.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardSnapshot {
    /// Last transaction-log entry included in this image.
    pub covered: EntryId,
    /// Running checksum of the record payload sequence through `covered`.
    pub running_crc: u64,
    /// Engine version that produced the image (§7.1: during upgrades,
    /// off-box snapshots are taken with the *oldest* running version).
    pub engine_version: EngineVersion,
    /// Leadership epoch at snapshot time (diagnostics).
    pub epoch: u64,
    /// Slot ownership at snapshot time, as inclusive ranges — needed so a
    /// restoring node learns ownership even after the log prefix holding
    /// the `SlotOwnership`/migration records has been trimmed.
    pub slot_ranges: Vec<(u16, u16)>,
    /// Slots blocked mid-migration at snapshot time.
    pub blocked_slots: Vec<u16>,
    /// The RDB-format keyspace image.
    pub rdb: Vec<u8>,
}

/// Errors decoding or verifying a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub enum SnapshotError {
    /// The blob is structurally invalid or its checksum fails.
    Corrupt(String),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Corrupt(why) => write!(f, "corrupt snapshot: {why}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

const MAGIC: &[u8; 4] = b"MDSS";

impl ShardSnapshot {
    /// Creates a snapshot from a keyspace at a known log position.
    pub fn capture(
        db: &Db,
        covered: EntryId,
        running_crc: u64,
        engine_version: EngineVersion,
        epoch: u64,
        slot_ranges: Vec<(u16, u16)>,
        blocked_slots: Vec<u16>,
    ) -> ShardSnapshot {
        Self::capture_multi(
            &[db],
            covered,
            running_crc,
            engine_version,
            epoch,
            slot_ranges,
            blocked_slots,
        )
    }

    /// Creates a snapshot from a striped keyspace: the per-stripe databases
    /// are captured as one image, ascending stripe order (stripes hold
    /// contiguous slot ranges, so the dump stays slot-ordered like the
    /// unstriped one). Caller must hold every stripe lock — the consistent
    /// cut the striped node takes under `EngineStripes::lock_all`.
    pub fn capture_multi(
        dbs: &[&Db],
        covered: EntryId,
        running_crc: u64,
        engine_version: EngineVersion,
        epoch: u64,
        slot_ranges: Vec<(u16, u16)>,
        blocked_slots: Vec<u16>,
    ) -> ShardSnapshot {
        ShardSnapshot {
            covered,
            running_crc,
            engine_version,
            epoch,
            slot_ranges,
            blocked_slots,
            rdb: rdb::dump_multi(dbs),
        }
    }

    /// Serializes to a blob for the object store.
    pub fn encode(&self) -> Bytes {
        let mut out = Vec::with_capacity(self.rdb.len() + 64);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&self.covered.0.to_le_bytes());
        out.extend_from_slice(&self.running_crc.to_le_bytes());
        out.extend_from_slice(&self.engine_version.major.to_le_bytes());
        out.extend_from_slice(&self.engine_version.minor.to_le_bytes());
        out.extend_from_slice(&self.engine_version.patch.to_le_bytes());
        out.extend_from_slice(&self.epoch.to_le_bytes());
        out.extend_from_slice(&(self.slot_ranges.len() as u32).to_le_bytes());
        for (lo, hi) in &self.slot_ranges {
            out.extend_from_slice(&lo.to_le_bytes());
            out.extend_from_slice(&hi.to_le_bytes());
        }
        out.extend_from_slice(&(self.blocked_slots.len() as u32).to_le_bytes());
        for s in &self.blocked_slots {
            out.extend_from_slice(&s.to_le_bytes());
        }
        out.extend_from_slice(&(self.rdb.len() as u64).to_le_bytes());
        out.extend_from_slice(&self.rdb);
        // Envelope checksum over everything above.
        let mut crc = Crc64::new();
        crc.update(&out);
        out.extend_from_slice(&crc.digest().to_le_bytes());
        Bytes::from(out)
    }

    /// Parses and integrity-checks a blob produced by [`encode`].
    ///
    /// Verifies both the envelope checksum and the inner RDB checksum — the
    /// "validate the contents of the snapshot itself" step of §7.2.1.
    ///
    /// [`encode`]: ShardSnapshot::encode
    pub fn decode(data: &[u8]) -> Result<ShardSnapshot, SnapshotError> {
        if data.len() < 4 + 8 + 8 + 6 + 8 + 8 + 8 {
            return Err(SnapshotError::Corrupt("too short".into()));
        }
        let (payload, trailer) = data.split_at(data.len() - 8);
        let stored = u64::from_le_bytes(trailer.try_into().expect("8 bytes"));
        let mut crc = Crc64::new();
        crc.update(payload);
        if crc.digest() != stored {
            return Err(SnapshotError::Corrupt("envelope checksum mismatch".into()));
        }
        if &payload[..4] != MAGIC {
            return Err(SnapshotError::Corrupt("bad magic".into()));
        }
        struct Cur<'a> {
            d: &'a [u8],
            p: usize,
        }
        impl<'a> Cur<'a> {
            fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
                // Checked arithmetic: `n` comes from untrusted length fields,
                // so `p + n` must not be allowed to wrap before the range
                // check sees it.
                let end = self
                    .p
                    .checked_add(n)
                    .ok_or_else(|| SnapshotError::Corrupt("length overflow".into()))?;
                let out = self
                    .d
                    .get(self.p..end)
                    .ok_or_else(|| SnapshotError::Corrupt("truncated".into()))?;
                self.p = end;
                Ok(out)
            }
            fn remaining(&self) -> usize {
                self.d.len().saturating_sub(self.p)
            }
            fn u16(&mut self) -> Result<u16, SnapshotError> {
                Ok(u16::from_le_bytes(
                    self.take(2)?.try_into().expect("2 bytes"),
                ))
            }
            fn u32(&mut self) -> Result<u32, SnapshotError> {
                Ok(u32::from_le_bytes(
                    self.take(4)?.try_into().expect("4 bytes"),
                ))
            }
            fn u64(&mut self) -> Result<u64, SnapshotError> {
                Ok(u64::from_le_bytes(
                    self.take(8)?.try_into().expect("8 bytes"),
                ))
            }
        }
        let mut c = Cur { d: payload, p: 4 };
        let covered = EntryId(c.u64()?);
        let running_crc = c.u64()?;
        let engine_version = EngineVersion::new(c.u16()?, c.u16()?, c.u16()?);
        let epoch = c.u64()?;
        let nranges = c.u32()? as usize;
        // Reject declared counts before allocating for them: the count must
        // be plausible (≤ one range per slot) AND the remaining buffer must
        // actually hold that many encoded elements.
        if nranges > 16384 || nranges.saturating_mul(4) > c.remaining() {
            return Err(SnapshotError::Corrupt("too many slot ranges".into()));
        }
        let mut slot_ranges = Vec::with_capacity(nranges);
        for _ in 0..nranges {
            let lo = c.u16()?;
            let hi = c.u16()?;
            slot_ranges.push((lo, hi));
        }
        let nblocked = c.u32()? as usize;
        if nblocked > 16384 || nblocked.saturating_mul(2) > c.remaining() {
            return Err(SnapshotError::Corrupt("too many blocked slots".into()));
        }
        let mut blocked_slots = Vec::with_capacity(nblocked);
        for _ in 0..nblocked {
            blocked_slots.push(c.u16()?);
        }
        // Compare in u64 so a huge declared length can neither wrap the
        // cursor nor (on 32-bit targets) truncate before the check.
        let rdb_len = c.u64()?;
        if rdb_len != c.remaining() as u64 {
            return Err(SnapshotError::Corrupt("length mismatch".into()));
        }
        let rdb = payload[c.p..].to_vec();
        Ok(ShardSnapshot {
            covered,
            running_crc,
            engine_version,
            epoch,
            slot_ranges,
            blocked_slots,
            rdb,
        })
    }

    /// Loads the keyspace image, verifying the inner RDB checksum.
    pub fn load_db(&self) -> Result<Db, SnapshotError> {
        rdb::load(&self.rdb).map_err(|e| SnapshotError::Corrupt(e.to_string()))
    }

    /// Object-store key for a shard's snapshot at this position; zero-padded
    /// so lexicographic order equals log order.
    pub fn store_key(shard_name: &str, covered: EntryId) -> String {
        format!("snapshots/{shard_name}/{:020}", covered.0)
    }

    /// Uploads this snapshot; returns its store key.
    pub fn upload(&self, store: &ObjectStore, shard_name: &str) -> String {
        let key = Self::store_key(shard_name, self.covered);
        store.put(&key, self.encode());
        key
    }

    /// Fetches the newest *verified* snapshot of a shard, if any.
    ///
    /// A corrupt blob at the head of the prefix does not fail the fetch:
    /// restoration degrades to the next-older snapshot that decodes and
    /// checksums cleanly (it merely replays a longer log suffix). Only when
    /// snapshots exist but none verifies does this return the last error.
    pub fn fetch_latest(
        store: &ObjectStore,
        shard_name: &str,
    ) -> Result<Option<ShardSnapshot>, SnapshotError> {
        let prefix = format!("snapshots/{shard_name}/");
        let mut metas = store.list(&prefix);
        if metas.is_empty() {
            return Ok(None);
        }
        // Zero-padded keys order by covered position; walk newest first.
        metas.sort_by(|a, b| b.key.cmp(&a.key));
        let mut last_err = SnapshotError::Corrupt("no verifiable snapshot".into());
        for meta in metas {
            let blob = match store.get(&meta.key) {
                Ok((_, blob)) => blob,
                Err(e) => {
                    last_err = SnapshotError::Corrupt(e.to_string());
                    continue;
                }
            };
            match ShardSnapshot::decode(&blob) {
                Ok(snap) => return Ok(Some(snap)),
                Err(e) => last_err = e,
            }
        }
        Err(last_err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memorydb_engine::cmd;
    use memorydb_engine::exec::{Engine, Role, SessionState};

    fn sample_snapshot() -> ShardSnapshot {
        let mut e = Engine::new(Role::Primary);
        let mut s = SessionState::new();
        e.execute(&mut s, &cmd(["SET", "k", "v"]));
        e.execute(&mut s, &cmd(["ZADD", "z", "1", "a"]));
        ShardSnapshot::capture(
            &e.db,
            EntryId(17),
            0xABCD,
            EngineVersion::CURRENT,
            3,
            vec![(0, 8191), (9000, 9000)],
            vec![42],
        )
    }

    #[test]
    fn encode_decode_roundtrip() {
        let snap = sample_snapshot();
        let blob = snap.encode();
        let back = ShardSnapshot::decode(&blob).unwrap();
        assert_eq!(back, snap);
        let db = back.load_db().unwrap();
        assert_eq!(db.len(), 2);
    }

    #[test]
    fn envelope_corruption_detected() {
        let snap = sample_snapshot();
        let mut blob = snap.encode().to_vec();
        let mid = blob.len() / 2;
        blob[mid] ^= 1;
        assert!(ShardSnapshot::decode(&blob).is_err());
        assert!(ShardSnapshot::decode(&blob[..10]).is_err());
    }

    #[test]
    fn store_roundtrip_latest() {
        let store = ObjectStore::new();
        assert!(ShardSnapshot::fetch_latest(&store, "shard-0")
            .unwrap()
            .is_none());
        let mut old = sample_snapshot();
        old.covered = EntryId(5);
        old.upload(&store, "shard-0");
        let mut newer = sample_snapshot();
        newer.covered = EntryId(9);
        newer.upload(&store, "shard-0");
        let got = ShardSnapshot::fetch_latest(&store, "shard-0")
            .unwrap()
            .unwrap();
        assert_eq!(got.covered, EntryId(9));
        // Other shards are isolated.
        assert!(ShardSnapshot::fetch_latest(&store, "shard-1")
            .unwrap()
            .is_none());
    }

    #[test]
    fn fetch_latest_falls_back_past_corrupted_newest() {
        let store = ObjectStore::new();
        let mut old = sample_snapshot();
        old.covered = EntryId(5);
        old.upload(&store, "shard-0");
        let mut newer = sample_snapshot();
        newer.covered = EntryId(9);
        let newest_key = newer.upload(&store, "shard-0");
        // Corrupting the newest blob must degrade the fetch to the older
        // verified snapshot (longer replay), not fail the restore outright.
        assert!(store.corrupt_for_test(&newest_key));
        let got = ShardSnapshot::fetch_latest(&store, "shard-0")
            .unwrap()
            .unwrap();
        assert_eq!(got.covered, EntryId(5));
        // Once every candidate is corrupt there is nothing to degrade to.
        let old_key = ShardSnapshot::store_key("shard-0", EntryId(5));
        assert!(store.corrupt_for_test(&old_key));
        assert!(ShardSnapshot::fetch_latest(&store, "shard-0").is_err());
    }

    #[test]
    fn decode_survives_randomized_corruption() {
        // Fuzz-style sweep: byte flips, truncations, and inflated length
        // fields — with the envelope CRC re-stamped so the mutations reach
        // the structural parser — must yield Err or a valid snapshot, never
        // a panic or an allocation driven by an unchecked length.
        struct Lcg(u64);
        impl Lcg {
            fn next(&mut self) -> u64 {
                self.0 = self
                    .0
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                self.0 >> 33
            }
        }
        fn restamp(m: &mut [u8]) {
            let len = m.len();
            if len < 8 {
                return;
            }
            let mut crc = Crc64::new();
            crc.update(&m[..len - 8]);
            m[len - 8..].copy_from_slice(&crc.digest().to_le_bytes());
        }
        let blob = sample_snapshot().encode().to_vec();
        let mut rng = Lcg(0x9E37_79B9_7F4A_7C15);
        for round in 0..600 {
            let mut m = blob.clone();
            match round % 3 {
                0 => {
                    let i = (rng.next() as usize) % m.len();
                    m[i] ^= (rng.next() as u8) | 1;
                }
                1 => {
                    m.truncate((rng.next() as usize) % m.len());
                }
                _ => {
                    // Stomp a 4-byte window with a huge value, aimed across
                    // the whole header so every length field gets hit.
                    if m.len() > 24 {
                        let i = 4 + (rng.next() as usize) % (m.len() - 16);
                        let v = (rng.next() as u32) | 0x8000_0000;
                        m[i..i + 4].copy_from_slice(&v.to_le_bytes());
                    }
                }
            }
            restamp(&mut m);
            let _ = ShardSnapshot::decode(&m);
        }
    }

    #[test]
    fn capture_multi_equals_whole_db_capture() {
        let filled = || {
            let mut e = Engine::new(Role::Primary);
            let mut s = SessionState::new();
            for k in ["k1", "k2", "foo", "bar", "hello"] {
                e.execute(&mut s, &cmd(["SET", k, k]));
            }
            e
        };
        let whole = ShardSnapshot::capture(
            &filled().db,
            EntryId(3),
            9,
            EngineVersion::CURRENT,
            2,
            vec![(0, 16383)],
            vec![],
        );
        let parts = filled().split_striped(4, |s| crate::stripes::stripe_of(s, 4));
        let dbs: Vec<&memorydb_engine::Db> = parts.iter().map(|p| &p.db).collect();
        let multi = ShardSnapshot::capture_multi(
            &dbs,
            EntryId(3),
            9,
            EngineVersion::CURRENT,
            2,
            vec![(0, 16383)],
            vec![],
        );
        assert_eq!(whole, multi, "striped capture must be byte-identical");
        assert_eq!(multi.load_db().unwrap().len(), 5);
    }

    #[test]
    fn store_key_orders_lexicographically() {
        let a = ShardSnapshot::store_key("s", EntryId(9));
        let b = ShardSnapshot::store_key("s", EntryId(10));
        let c = ShardSnapshot::store_key("s", EntryId(100));
        assert!(a < b && b < c);
    }
}
