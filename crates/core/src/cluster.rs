//! A multi-shard MemoryDB cluster: slot partitioning, shard lifecycle, and
//! the scaling operations of paper §5.2.

use crate::bus::ClusterBus;
use crate::config::ShardConfig;
use crate::migration::{migrate_slot, MigrationError};
use crate::record::ShardId;
use crate::shard::{NodeIdGen, Shard};
use memorydb_engine::NUM_SLOTS;
use memorydb_objectstore::ObjectStore;
use parking_lot::RwLock;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A MemoryDB cluster.
pub struct Cluster {
    store: Arc<ObjectStore>,
    bus: Arc<ClusterBus>,
    ids: Arc<NodeIdGen>,
    cfg: ShardConfig,
    shards: RwLock<Vec<Arc<Shard>>>,
    next_shard_id: AtomicU32,
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("shards", &self.shards.read().len())
            .finish()
    }
}

/// Splits the 16384 slots into `n` contiguous ranges.
pub fn even_slot_ranges(n: usize) -> Vec<(u16, u16)> {
    assert!(n > 0 && n <= NUM_SLOTS as usize);
    let per = NUM_SLOTS as usize / n;
    let mut rem = NUM_SLOTS as usize % n;
    let mut out = Vec::with_capacity(n);
    let mut start = 0usize;
    for _ in 0..n {
        let mut len = per;
        if rem > 0 {
            len += 1;
            rem -= 1;
        }
        out.push((start as u16, (start + len - 1) as u16));
        start += len;
    }
    out
}

impl Cluster {
    /// Launches a cluster with `num_shards` shards (slots split evenly) and
    /// `replicas` replicas per shard.
    pub fn launch(cfg: ShardConfig, num_shards: usize, replicas: usize) -> Arc<Cluster> {
        let cluster = Arc::new(Cluster {
            store: Arc::new(ObjectStore::new()),
            bus: Arc::new(ClusterBus::new()),
            ids: Arc::new(NodeIdGen::new()),
            cfg,
            shards: RwLock::new(Vec::new()),
            next_shard_id: AtomicU32::new(0),
        });
        for range in even_slot_ranges(num_shards) {
            cluster.create_shard(vec![range], replicas);
        }
        cluster
    }

    /// The shared snapshot store.
    pub fn store(&self) -> &Arc<ObjectStore> {
        &self.store
    }

    /// The cluster bus.
    pub fn bus(&self) -> &Arc<ClusterBus> {
        &self.bus
    }

    /// All shards.
    pub fn shards(&self) -> Vec<Arc<Shard>> {
        self.shards.read().clone()
    }

    /// Looks up a shard by id.
    pub fn shard(&self, id: ShardId) -> Option<Arc<Shard>> {
        self.shards.read().iter().find(|s| s.id == id).cloned()
    }

    /// Creates a shard owning `slot_ranges` (empty for a scale-out target).
    pub fn create_shard(&self, slot_ranges: Vec<(u16, u16)>, replicas: usize) -> Arc<Shard> {
        let id = self.next_shard_id.fetch_add(1, Ordering::Relaxed);
        let shard = Shard::bootstrap(
            id,
            self.cfg.clone(),
            Arc::clone(&self.store),
            Arc::clone(&self.bus),
            Arc::clone(&self.ids),
            slot_ranges,
            replicas,
        );
        self.shards.write().push(Arc::clone(&shard));
        shard
    }

    /// Which shard owns `slot` right now (asks the shards' primaries).
    pub fn shard_for_slot(&self, slot: u16) -> Option<Arc<Shard>> {
        for shard in self.shards.read().iter() {
            // Any live node's view works; prefer the primary's.
            let node = shard
                .primary()
                .or_else(|| shard.nodes().into_iter().next())?;
            if node.owns_slot(slot) {
                return Some(Arc::clone(shard));
            }
        }
        None
    }

    /// The full slot map as `(start, end, shard id)` ranges.
    pub fn slot_map(&self) -> Vec<(u16, u16, ShardId)> {
        let mut out = Vec::new();
        for shard in self.shards.read().iter() {
            if let Some(node) = shard.primary().or_else(|| shard.nodes().into_iter().next()) {
                for (lo, hi) in node.owned_ranges() {
                    out.push((lo, hi, shard.id));
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Scale out (§5.2): adds a new shard and migrates an even share of
    /// slots to it, one slot at a time. Returns the new shard.
    pub fn scale_out(&self, replicas: usize) -> Result<Arc<Shard>, MigrationError> {
        let new_shard = self.create_shard(Vec::new(), replicas);
        let shards = self.shards();
        let total_donors = shards.len() - 1;
        // Even target share.
        let target_share = NUM_SLOTS as usize / shards.len();
        let mut moved = 0usize;
        'outer: for donor in shards.iter().filter(|s| s.id != new_shard.id) {
            let Some(primary) = donor.wait_for_primary(Duration::from_secs(5)) else {
                continue;
            };
            let give = primary
                .owned_ranges()
                .iter()
                .flat_map(|(lo, hi)| *lo..=*hi)
                .take(target_share / total_donors.max(1))
                .collect::<Vec<u16>>();
            for slot in give {
                migrate_slot(donor, &new_shard, slot)?;
                moved += 1;
                if moved >= target_share {
                    break 'outer;
                }
            }
        }
        Ok(new_shard)
    }

    /// Scale in (§5.2): migrates all slots off `shard_id`, then destroys the
    /// shard.
    pub fn scale_in(&self, shard_id: ShardId) -> Result<(), MigrationError> {
        let victim = self
            .shard(shard_id)
            .ok_or_else(|| MigrationError::Precondition(format!("no shard {shard_id}")))?;
        let survivors: Vec<Arc<Shard>> = self
            .shards()
            .into_iter()
            .filter(|s| s.id != shard_id)
            .collect();
        if survivors.is_empty() {
            return Err(MigrationError::Precondition(
                "cannot scale in the last shard".into(),
            ));
        }
        let primary = victim
            .wait_for_primary(Duration::from_secs(5))
            .ok_or_else(|| MigrationError::Precondition("victim shard has no primary".into()))?;
        let slots: Vec<u16> = primary
            .owned_ranges()
            .iter()
            .flat_map(|(lo, hi)| *lo..=*hi)
            .collect();
        for (i, slot) in slots.iter().enumerate() {
            let dest = &survivors[i % survivors.len()];
            migrate_slot(&victim, dest, *slot)?;
        }
        // Destroy: terminate nodes, drop the shard (its log dies with it).
        for node in victim.nodes() {
            node.crash();
        }
        self.shards.write().retain(|s| s.id != shard_id);
        Ok(())
    }

    /// Instance-type scaling as an N+1 rolling update (§5.2): adds a fresh
    /// node, waits for it to catch up, then decommissions an old one
    /// (replicas first, primary last — with collaborative leadership
    /// transfer for the primary).
    pub fn replace_all_nodes(&self, shard_id: ShardId) -> Result<(), String> {
        let shard = self
            .shard(shard_id)
            .ok_or_else(|| format!("no shard {shard_id}"))?;
        let old_nodes = shard.nodes();
        for old in old_nodes {
            // N+1: bring the replacement up and let it catch up first.
            let _fresh = shard.add_node();
            if !shard.wait_replicas_caught_up(Duration::from_secs(10)) {
                return Err("replacement replica failed to catch up".into());
            }
            if old.is_active_primary() {
                // Collaborative transfer minimizes downtime.
                old.release_leadership();
                if shard.wait_for_primary(Duration::from_secs(10)).is_none() {
                    return Err("no primary emerged after leadership transfer".into());
                }
            }
            old.crash();
            shard.reap_dead();
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_ranges_cover_everything_disjointly() {
        for n in [1usize, 2, 3, 5, 16] {
            let ranges = even_slot_ranges(n);
            assert_eq!(ranges.len(), n);
            let mut covered = 0usize;
            let mut prev_end: Option<u16> = None;
            for (lo, hi) in &ranges {
                assert!(lo <= hi);
                if let Some(p) = prev_end {
                    assert_eq!(*lo, p + 1);
                }
                covered += (*hi - *lo + 1) as usize;
                prev_end = Some(*hi);
            }
            assert_eq!(covered, 16384);
            assert_eq!(ranges.last().unwrap().1, 16383);
        }
    }
}
