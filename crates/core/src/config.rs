//! Shard and cluster configuration.

use memorydb_txlog::LogConfig;
use std::time::Duration;

/// Tunables of one MemoryDB shard.
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Leadership lease duration (paper §4.1.3). A primary that cannot
    /// renew self-demotes at lease end.
    pub lease: Duration,
    /// How long before lease end a primary renews (renew interval =
    /// `lease - renew_margin`... in practice we renew every `lease / 3`).
    pub renew_interval: Duration,
    /// How long a replica refrains from campaigning after observing a
    /// renewal. MUST be strictly greater than `lease` so leases stay
    /// disjoint (paper: "backoff is ensured to be strictly greater than the
    /// lease duration").
    pub backoff: Duration,
    /// Background tick granularity for lease/election timers.
    pub tick: Duration,
    /// How long a client write waits for durability before the node treats
    /// the commit as failed.
    pub commit_timeout: Duration,
    /// Inject a checksum probe every this many Effects records (§7.2.1).
    pub checksum_probe_every: u64,
    /// Commit-pipeline backpressure: max staged-but-unresolved log entries
    /// in flight before new batches block at submission.
    pub commit_window_entries: usize,
    /// Commit-pipeline backpressure: max staged-but-unresolved payload
    /// bytes in flight before new batches block at submission.
    pub commit_window_bytes: usize,
    /// Adaptive group commit: when the commit queue is empty at submission
    /// time, the submitting connection appends its own batch inline (no
    /// committer wakeup, no flush-token bounce). Under load the flush
    /// window widens up to `commit_window_*` exactly as before. The
    /// idle/busy decision reads the in-flight ticket count, never a
    /// wall-clock sleep.
    pub flush_idle_fastpath: bool,
    /// Transaction-log service configuration for this shard.
    pub log: LogConfig,
    /// Snapshot scheduling: take a new snapshot once the un-snapshotted log
    /// suffix exceeds `max(snapshot_min_bytes, dataset * snapshot_ratio)`
    /// (§4.2.3).
    pub snapshot_min_bytes: usize,
    /// See `snapshot_min_bytes`.
    pub snapshot_ratio: f64,
    /// Number of slot-range engine stripes. The 16384 hash slots are split
    /// into this many contiguous ranges, each guarded by its own mutex, so
    /// batches touching different stripes execute concurrently. `1` restores
    /// the single-lock engine.
    pub engine_stripes: usize,
    /// Worker threads for restore: parallel snapshot-chunk fetch/decode and
    /// partitioned log replay (§4.2.1). `0` = auto (one per available
    /// core), `1` = fully sequential.
    pub restore_workers: usize,
    /// How many slot-range chunks a full snapshot is split into (and the
    /// upper bound on a delta's dirty ranges after coalescing). More chunks
    /// = more restore parallelism, more objects per snapshot.
    pub snapshot_chunks: usize,
    /// Max deltas stacked on one full snapshot before the off-box
    /// snapshotter forces a fresh full (bounds restore chain length and the
    /// blast radius of a lost delta).
    pub snapshot_max_chain: u32,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            lease: Duration::from_millis(600),
            renew_interval: Duration::from_millis(200),
            backoff: Duration::from_millis(900),
            tick: Duration::from_millis(25),
            commit_timeout: Duration::from_secs(5),
            checksum_probe_every: 64,
            commit_window_entries: 1024,
            commit_window_bytes: 4 << 20,
            flush_idle_fastpath: true,
            log: LogConfig::instant(),
            snapshot_min_bytes: 64 * 1024,
            snapshot_ratio: 0.25,
            engine_stripes: 16,
            restore_workers: 0,
            snapshot_chunks: 16,
            snapshot_max_chain: 4,
        }
    }
}

impl ShardConfig {
    /// Fast timings for tests: short lease/backoff so failovers complete in
    /// tens of milliseconds.
    pub fn fast() -> ShardConfig {
        ShardConfig {
            lease: Duration::from_millis(150),
            renew_interval: Duration::from_millis(50),
            backoff: Duration::from_millis(225),
            tick: Duration::from_millis(10),
            commit_timeout: Duration::from_secs(2),
            ..ShardConfig::default()
        }
    }

    /// Validates the invariants the election safety argument needs.
    pub fn validate(&self) -> Result<(), String> {
        if self.backoff <= self.lease {
            return Err(format!(
                "backoff ({:?}) must be strictly greater than lease ({:?})",
                self.backoff, self.lease
            ));
        }
        if self.renew_interval >= self.lease {
            return Err(format!(
                "renew interval ({:?}) must be below the lease ({:?})",
                self.renew_interval, self.lease
            ));
        }
        if self.snapshot_ratio <= 0.0 {
            return Err("snapshot_ratio must be positive".into());
        }
        if self.commit_window_entries == 0 || self.commit_window_bytes == 0 {
            return Err("commit window must allow at least one entry/byte".into());
        }
        if self.log.quorum_pipeline_depth == 0 {
            return Err("quorum_pipeline_depth must allow at least one in-flight batch".into());
        }
        if self.engine_stripes == 0 || self.engine_stripes > memorydb_engine::NUM_SLOTS as usize {
            return Err(format!(
                "engine_stripes ({}) must be in 1..={}",
                self.engine_stripes,
                memorydb_engine::NUM_SLOTS
            ));
        }
        if self.snapshot_chunks == 0 || self.snapshot_chunks > 1024 {
            return Err(format!(
                "snapshot_chunks ({}) must be in 1..=1024",
                self.snapshot_chunks
            ));
        }
        if self.snapshot_max_chain > 64 {
            return Err(format!(
                "snapshot_max_chain ({}) must be at most 64",
                self.snapshot_max_chain
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        ShardConfig::default().validate().unwrap();
        ShardConfig::fast().validate().unwrap();
    }

    #[test]
    fn backoff_must_exceed_lease() {
        let cfg = ShardConfig {
            backoff: Duration::from_millis(100),
            lease: Duration::from_millis(100),
            ..ShardConfig::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn commit_window_must_be_nonzero() {
        let cfg = ShardConfig {
            commit_window_entries: 0,
            ..ShardConfig::default()
        };
        assert!(cfg.validate().is_err());
        let cfg = ShardConfig {
            commit_window_bytes: 0,
            ..ShardConfig::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn engine_stripes_must_be_nonzero() {
        let cfg = ShardConfig {
            engine_stripes: 0,
            ..ShardConfig::default()
        };
        assert!(cfg.validate().is_err());
        let cfg = ShardConfig {
            engine_stripes: 1 << 20,
            ..ShardConfig::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn quorum_pipeline_depth_must_be_nonzero() {
        let mut cfg = ShardConfig::default();
        cfg.log.quorum_pipeline_depth = 0;
        assert!(cfg.validate().is_err());
        cfg.log.quorum_pipeline_depth = 1;
        cfg.validate().unwrap();
    }

    #[test]
    fn snapshot_chunks_and_chain_are_bounded() {
        let cfg = ShardConfig {
            snapshot_chunks: 0,
            ..ShardConfig::default()
        };
        assert!(cfg.validate().is_err());
        let cfg = ShardConfig {
            snapshot_chunks: 4096,
            ..ShardConfig::default()
        };
        assert!(cfg.validate().is_err());
        let cfg = ShardConfig {
            snapshot_max_chain: 65,
            ..ShardConfig::default()
        };
        assert!(cfg.validate().is_err());
        let cfg = ShardConfig {
            snapshot_max_chain: 0, // every snapshot full — valid
            ..ShardConfig::default()
        };
        cfg.validate().unwrap();
    }

    #[test]
    fn renew_interval_below_lease() {
        let cfg = ShardConfig {
            renew_interval: Duration::from_secs(10),
            ..ShardConfig::default()
        };
        assert!(cfg.validate().is_err());
    }
}
