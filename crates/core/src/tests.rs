//! Core integration tests: durability, elections, failover consistency,
//! snapshots, recovery — the paper's §3–§4 behaviours exercised end to end
//! on the threaded runtime.

use crate::bus::ClusterBus;
use crate::config::ShardConfig;
use crate::offbox::OffboxSnapshotter;
use crate::shard::{NodeIdGen, Shard};
use bytes::Bytes;
use memorydb_engine::exec::Role;
use memorydb_engine::{cmd, Frame, SessionState};
use memorydb_objectstore::ObjectStore;
use std::sync::Arc;
use std::time::Duration;

const T: Duration = Duration::from_secs(5);

fn new_shard(replicas: usize) -> Arc<Shard> {
    Shard::bootstrap(
        0,
        ShardConfig::fast(),
        Arc::new(ObjectStore::new()),
        Arc::new(ClusterBus::new()),
        Arc::new(NodeIdGen::new()),
        vec![(0, 16383)],
        replicas,
    )
}

fn bulk(s: &str) -> Frame {
    Frame::Bulk(Bytes::copy_from_slice(s.as_bytes()))
}

/// Waits until a node OTHER than `old_id` is the active primary. The old
/// primary may keep serving until its lease runs out (leases are disjoint,
/// so this never overlaps the successor's reign).
fn wait_for_new_primary(shard: &Shard, old_id: u64) -> Arc<crate::node::Node> {
    let deadline = std::time::Instant::now() + T;
    loop {
        if let Some(p) = shard.primary() {
            if p.id != old_id {
                return p;
            }
        }
        assert!(
            std::time::Instant::now() < deadline,
            "no new primary emerged within {T:?}"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn shard_elects_a_primary_and_serves() {
    let shard = new_shard(1);
    let primary = shard.wait_for_primary(T).expect("a primary must emerge");
    let mut session = SessionState::new();
    assert_eq!(
        primary.handle(&mut session, &cmd(["SET", "k", "v"])),
        Frame::ok()
    );
    assert_eq!(primary.handle(&mut session, &cmd(["GET", "k"])), bulk("v"));
    assert_eq!(primary.role(), Role::Primary);
}

#[test]
fn exactly_one_primary_at_bootstrap() {
    let shard = new_shard(2);
    shard.wait_for_primary(T).expect("primary");
    std::thread::sleep(Duration::from_millis(100));
    let primaries = shard
        .nodes()
        .iter()
        .filter(|n| n.role() == Role::Primary)
        .count();
    assert_eq!(primaries, 1, "leader singularity violated");
}

#[test]
fn replicas_converge_and_serve_reads() {
    let shard = new_shard(2);
    let primary = shard.wait_for_primary(T).unwrap();
    let mut session = SessionState::new();
    for i in 0..50 {
        let r = primary.handle(
            &mut session,
            &cmd(["SET", &format!("k{i}"), &i.to_string()]),
        );
        assert_eq!(r, Frame::ok());
    }
    assert!(shard.wait_replicas_caught_up(T));
    for replica in shard.replicas() {
        let mut s = SessionState::new();
        assert_eq!(replica.handle(&mut s, &cmd(["GET", "k42"])), bulk("42"));
        assert_eq!(replica.handle(&mut s, &cmd(["DBSIZE"])), Frame::Integer(50));
    }
}

#[test]
fn writes_to_replicas_are_redirected() {
    let shard = new_shard(1);
    shard.wait_for_primary(T).unwrap();
    let replica = shard.replicas().into_iter().next().unwrap();
    let mut s = SessionState::new();
    match replica.handle(&mut s, &cmd(["SET", "k", "v"])) {
        Frame::Error(msg) => assert!(msg.starts_with("MOVED"), "got {msg}"),
        other => panic!("expected MOVED, got {other:?}"),
    }
}

/// Panic-freedom regression (analyzer invariant 1): a pipeline containing
/// an empty (zero-argument) command — which a client can produce with a
/// bare `*0\r\n` array — must yield an error frame in its slot and leave
/// the rest of the batch untouched.
#[test]
fn empty_command_in_batch_is_an_error_not_a_panic() {
    let shard = new_shard(1);
    let primary = shard.wait_for_primary(T).expect("primary");
    let mut session = SessionState::new();
    let batch = vec![
        cmd(["SET", "k", "v"]),
        Vec::new(), // zero-argument command
        cmd(["GET", "k"]),
    ];
    let replies = primary.handle_batch(&mut session, &batch);
    assert_eq!(replies.len(), 3);
    assert_eq!(replies[0], Frame::ok());
    assert!(
        matches!(&replies[1], Frame::Error(_)),
        "empty command must error, got {:?}",
        replies[1]
    );
    assert_eq!(replies[2], bulk("v"));

    // The single-command path degrades the same way.
    assert!(matches!(primary.handle(&mut session, &[]), Frame::Error(_)));
}

#[test]
fn acknowledged_writes_survive_failover() {
    // The paper's core durability claim (§2.2 vs §3/4): nothing acknowledged
    // is ever lost across a primary crash + election.
    let shard = new_shard(2);
    let primary = shard.wait_for_primary(T).unwrap();
    let mut session = SessionState::new();
    let mut acked = Vec::new();
    for i in 0..100 {
        let key = format!("k{i}");
        if primary.handle(&mut session, &cmd(["SET", &key, "v"])) == Frame::ok() {
            acked.push(key);
        }
    }
    let old_id = primary.id;
    primary.crash();
    let new_primary = shard.wait_for_primary(T).expect("failover must complete");
    assert_ne!(new_primary.id, old_id);
    let mut s = SessionState::new();
    for key in &acked {
        assert_eq!(
            new_primary.handle(&mut s, &cmd(["GET", key.as_str()])),
            bulk("v"),
            "acknowledged write to {key} lost across failover"
        );
    }
}

#[test]
fn partitioned_primary_self_demotes_and_new_leader_emerges() {
    // Split-brain scenario (§4.1.3): the old primary is partitioned from
    // the log; it must stop serving at lease end while a replica takes
    // over. Leases stay disjoint, so at no instant do two primaries serve.
    let shard = new_shard(2);
    let primary = shard.wait_for_primary(T).unwrap();
    let mut session = SessionState::new();
    assert_eq!(
        primary.handle(&mut session, &cmd(["SET", "stable", "1"])),
        Frame::ok()
    );

    shard.ctx().log.set_client_partitioned(primary.id, true);
    // A write now fails (cannot commit) and must NOT be acknowledged.
    let r = primary.handle(&mut session, &cmd(["SET", "lost", "x"]));
    assert!(r.is_error(), "unacknowledged write must error, got {r:?}");

    let new_primary = wait_for_new_primary(&shard, primary.id);
    // The failed write is not visible on the new leader.
    let mut s = SessionState::new();
    assert_eq!(
        new_primary.handle(&mut s, &cmd(["GET", "lost"])),
        Frame::Null
    );
    assert_eq!(
        new_primary.handle(&mut s, &cmd(["GET", "stable"])),
        bulk("1")
    );

    // The old primary demoted and, once healed, rejoins as replica; its
    // stale claim to leadership is fenced by the conditional append.
    shard.ctx().log.set_client_partitioned(primary.id, false);
    let deadline = std::time::Instant::now() + T;
    while primary.role() != Role::Replica && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(primary.role(), Role::Replica);
}

#[test]
fn unacknowledged_write_not_visible_after_demotion() {
    // §3.2: if a commit fails the change must not become visible. The
    // demoted primary rebuilds from the log, discarding the uncommitted
    // mutation.
    let shard = new_shard(1);
    let primary = shard.wait_for_primary(T).unwrap();
    let mut session = SessionState::new();
    assert_eq!(
        primary.handle(&mut session, &cmd(["SET", "a", "committed"])),
        Frame::ok()
    );
    shard.ctx().log.set_client_partitioned(primary.id, true);
    let r = primary.handle(&mut session, &cmd(["SET", "a", "uncommitted"]));
    assert!(r.is_error());
    shard.ctx().log.set_client_partitioned(primary.id, false);
    // Wait for the rebuild to finish.
    let deadline = std::time::Instant::now() + T;
    loop {
        let mut s = SessionState::new();
        let reply = primary.handle(&mut s, &cmd(["GET", "a"]));
        if reply == bulk("committed") {
            break; // stale value discarded, committed value restored
        }
        assert!(
            std::time::Instant::now() < deadline,
            "demoted primary still serves uncommitted data: {reply:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn reads_of_unpersisted_keys_are_delayed_not_stale() {
    // §3.2 hazard tracking: with a slow log, a read of a freshly written
    // key must wait for the commit; it never returns the pre-write value.
    let cfg = ShardConfig {
        log: memorydb_txlog::LogConfig {
            latency: memorydb_txlog::CommitLatency {
                base: Duration::from_millis(20),
                jitter: Duration::ZERO,
            },
            ..memorydb_txlog::LogConfig::default()
        },
        ..ShardConfig::fast()
    };
    let shard = Shard::bootstrap(
        0,
        cfg,
        Arc::new(ObjectStore::new()),
        Arc::new(ClusterBus::new()),
        Arc::new(NodeIdGen::new()),
        vec![(0, 16383)],
        0,
    );
    let primary = shard.wait_for_primary(T).unwrap();
    let p2 = Arc::clone(&primary);
    let writer = std::thread::spawn(move || {
        let mut s = SessionState::new();
        let t0 = std::time::Instant::now();
        let r = p2.handle(&mut s, &cmd(["SET", "k", "new"]));
        (r, t0.elapsed())
    });
    // Give the writer a head start so its mutation is staged.
    std::thread::sleep(Duration::from_millis(5));
    let mut s = SessionState::new();
    let t0 = std::time::Instant::now();
    let read = primary.handle(&mut s, &cmd(["GET", "k"]));
    let read_latency = t0.elapsed();
    let (write_reply, write_latency) = writer.join().unwrap();
    assert_eq!(write_reply, Frame::ok());
    assert!(
        write_latency >= Duration::from_millis(15),
        "write must wait for the multi-AZ commit"
    );
    // The read observed the new value and was delayed by the hazard.
    assert_eq!(read, bulk("new"));
    assert!(
        read_latency >= Duration::from_millis(5),
        "hazardous read returned before the write committed ({read_latency:?})"
    );
    // An unrelated key reads instantly even while writes are in flight.
    let p3 = Arc::clone(&primary);
    let writer2 = std::thread::spawn(move || {
        let mut s = SessionState::new();
        p3.handle(&mut s, &cmd(["SET", "other", "v"]))
    });
    std::thread::sleep(Duration::from_millis(5));
    let t0 = std::time::Instant::now();
    let _ = primary.handle(&mut s, &cmd(["GET", "unrelated"]));
    assert!(t0.elapsed() < Duration::from_millis(15));
    writer2.join().unwrap();
}

#[test]
fn new_replica_restores_from_snapshot_and_log() {
    let shard = new_shard(0);
    let primary = shard.wait_for_primary(T).unwrap();
    let mut session = SessionState::new();
    for i in 0..40 {
        primary.handle(
            &mut session,
            &cmd(["SET", &format!("k{i}"), &i.to_string()]),
        );
    }
    // Take an off-box snapshot covering part of the history, then write more.
    let offbox = OffboxSnapshotter::new(
        Arc::clone(shard.ctx()),
        memorydb_engine::EngineVersion::CURRENT,
        9_999,
    );
    let (key, covered) = offbox.create_snapshot(true).expect("off-box snapshot");
    assert!(shard.ctx().store.get(&key).is_ok());
    assert!(covered.0 > 0);
    for i in 40..60 {
        primary.handle(
            &mut session,
            &cmd(["SET", &format!("k{i}"), &i.to_string()]),
        );
    }
    // A new replica restores: snapshot + log suffix (which was trimmed up
    // to the snapshot, so replay alone cannot be enough).
    let replica = shard.add_node();
    assert!(shard.wait_replicas_caught_up(T));
    let mut s = SessionState::new();
    assert_eq!(replica.handle(&mut s, &cmd(["GET", "k10"])), bulk("10"));
    assert_eq!(replica.handle(&mut s, &cmd(["GET", "k55"])), bulk("55"));
    assert_eq!(replica.handle(&mut s, &cmd(["DBSIZE"])), Frame::Integer(60));
}

#[test]
fn offbox_snapshot_verification_rejects_corruption() {
    let shard = new_shard(0);
    let primary = shard.wait_for_primary(T).unwrap();
    let mut session = SessionState::new();
    for i in 0..20 {
        primary.handle(&mut session, &cmd(["SET", &format!("k{i}"), "v"]));
    }
    let offbox = OffboxSnapshotter::new(
        Arc::clone(shard.ctx()),
        memorydb_engine::EngineVersion::CURRENT,
        9_999,
    );
    let (key, _) = offbox.create_snapshot(false).unwrap();
    // Corrupt the stored manifest; a fetch (as any restoring replica would
    // do) must fail integrity, not silently load garbage.
    assert!(shard.ctx().store.corrupt_for_test(&key));
    let err = crate::manifest::fetch_latest_image(&shard.ctx().store, &shard.ctx().name, 1);
    assert!(err.is_err(), "corrupted snapshot must not verify");
}

#[test]
fn collaborative_leadership_transfer() {
    let shard = new_shard(1);
    let old = shard.wait_for_primary(T).unwrap();
    let mut session = SessionState::new();
    assert_eq!(
        old.handle(&mut session, &cmd(["SET", "k", "v"])),
        Frame::ok()
    );
    assert!(shard.wait_replicas_caught_up(T));
    let t0 = std::time::Instant::now();
    assert!(old.release_leadership());
    let new = wait_for_new_primary(&shard, old.id);
    // The release lets the replica skip the backoff, so this is much
    // faster than a crash failover.
    assert!(t0.elapsed() < ShardConfig::fast().backoff * 3);
    let mut s = SessionState::new();
    assert_eq!(new.handle(&mut s, &cmd(["GET", "k"])), bulk("v"));
}

#[test]
fn wait_reports_replica_count() {
    let shard = new_shard(2);
    let primary = shard.wait_for_primary(T).unwrap();
    std::thread::sleep(Duration::from_millis(80)); // let heartbeats land
    let mut s = SessionState::new();
    match primary.handle(&mut s, &cmd(["WAIT", "0", "0"])) {
        Frame::Integer(n) => assert_eq!(n, 2),
        other => panic!("expected integer, got {other:?}"),
    }
}

#[test]
fn wait_malformed_arguments_are_errors() {
    let shard = new_shard(0);
    let primary = shard.wait_for_primary(T).unwrap();
    let mut s = SessionState::new();
    let err = |reply: Frame| match reply {
        Frame::Error(msg) => msg,
        other => panic!("expected error, got {other:?}"),
    };
    // Arity: WAIT takes exactly numreplicas + timeout.
    for bad in [
        cmd(["WAIT"]),
        cmd(["WAIT", "0"]),
        cmd(["WAIT", "0", "0", "0"]),
    ] {
        let msg = err(primary.handle(&mut s, &bad));
        assert!(
            msg.contains("wrong number of arguments"),
            "arity error expected, got: {msg}"
        );
    }
    // Non-integer operands.
    for bad in [cmd(["WAIT", "abc", "0"]), cmd(["WAIT", "0", "soon"])] {
        let msg = err(primary.handle(&mut s, &bad));
        assert!(
            msg.contains("not an integer"),
            "integer parse error expected, got: {msg}"
        );
    }
    // Negative timeout.
    let msg = err(primary.handle(&mut s, &cmd(["WAIT", "0", "-5"])));
    assert!(msg.contains("timeout is negative"), "{msg}");
    // A well-formed WAIT still works on the same session afterwards.
    assert!(matches!(
        primary.handle(&mut s, &cmd(["WAIT", "0", "100"])),
        Frame::Integer(_)
    ));
}

#[test]
fn cross_slot_commands_rejected() {
    let shard = new_shard(0);
    let primary = shard.wait_for_primary(T).unwrap();
    let mut s = SessionState::new();
    // `foo` and `bar` hash to different slots.
    match primary.handle(&mut s, &cmd(["MSET", "foo", "1", "bar", "2"])) {
        Frame::Error(msg) => assert!(msg.starts_with("CROSSSLOT"), "{msg}"),
        other => panic!("expected CROSSSLOT, got {other:?}"),
    }
    // Hash tags keep multi-key commands on one slot.
    assert_eq!(
        primary.handle(&mut s, &cmd(["MSET", "{t}foo", "1", "{t}bar", "2"])),
        Frame::ok()
    );
}

#[test]
fn checksum_probes_validate_on_replicas() {
    let cfg = ShardConfig {
        checksum_probe_every: 5,
        ..ShardConfig::fast()
    };
    let shard = Shard::bootstrap(
        0,
        cfg,
        Arc::new(ObjectStore::new()),
        Arc::new(ClusterBus::new()),
        Arc::new(NodeIdGen::new()),
        vec![(0, 16383)],
        1,
    );
    let primary = shard.wait_for_primary(T).unwrap();
    let mut session = SessionState::new();
    for i in 0..25 {
        primary.handle(&mut session, &cmd(["SET", &format!("k{i}"), "v"]));
    }
    assert!(shard.wait_replicas_caught_up(T));
    // Replicas verified at least one probe (they halt on mismatch).
    for r in shard.replicas() {
        assert!(r.halted().is_none());
        assert_eq!(r.applied(), shard.ctx().log.committed_tail());
    }
}

#[test]
fn monitoring_replaces_dead_replicas() {
    let shard = new_shard(2);
    shard.wait_for_primary(T).unwrap();
    let monitor = crate::monitor::MonitoringService::new(vec![Arc::clone(&shard)], 2);
    let victim = shard.replicas().into_iter().next().unwrap();
    victim.crash();
    let report = monitor.tick_shard(&shard);
    assert_eq!(report.dead_nodes_replaced, 1);
    assert_eq!(shard.nodes().len(), 3);
    assert!(shard.wait_replicas_caught_up(T));
}

// ---------------------------------------------------------------------------
// Cluster, migration, and scaling (§5.2)
// ---------------------------------------------------------------------------

mod cluster_tests {
    use super::*;
    use crate::client::ClusterClient;
    use crate::cluster::Cluster;
    use crate::migration::{migrate_slot, resume_migration};
    use memorydb_engine::key_hash_slot;

    #[test]
    fn cluster_routes_by_slot() {
        let cluster = Cluster::launch(ShardConfig::fast(), 2, 0);
        for shard in cluster.shards() {
            shard.wait_for_primary(T).unwrap();
        }
        let mut client = ClusterClient::new(Arc::clone(&cluster));
        // Keys spread across both shards.
        for i in 0..30 {
            let key = format!("key:{i}");
            assert_eq!(client.command(["SET", key.as_str(), "v"]), Frame::ok());
        }
        for i in 0..30 {
            let key = format!("key:{i}");
            assert_eq!(client.command(["GET", key.as_str()]), bulk("v"));
        }
        // Both shards actually hold data.
        let counts: Vec<usize> = cluster
            .shards()
            .iter()
            .map(|s| s.wait_for_primary(T).unwrap().key_count())
            .collect();
        assert!(counts.iter().all(|c| *c > 0), "distribution {counts:?}");
        assert_eq!(counts.iter().sum::<usize>(), 30);
    }

    #[test]
    fn slot_map_covers_all_slots() {
        let cluster = Cluster::launch(ShardConfig::fast(), 3, 0);
        for shard in cluster.shards() {
            shard.wait_for_primary(T).unwrap();
        }
        let map = cluster.slot_map();
        let covered: usize = map.iter().map(|(lo, hi, _)| (hi - lo + 1) as usize).sum();
        assert_eq!(covered, 16384);
    }

    #[test]
    fn migrate_slot_moves_data_and_ownership() {
        let cluster = Cluster::launch(ShardConfig::fast(), 1, 0);
        let source = cluster.shards()[0].clone();
        source.wait_for_primary(T).unwrap();
        let target = cluster.create_shard(Vec::new(), 0);
        target.wait_for_primary(T).unwrap();

        let mut client = ClusterClient::new(Arc::clone(&cluster));
        let slot = key_hash_slot(b"{tag}");
        for i in 0..20 {
            let key = format!("{{tag}}k{i}");
            assert_eq!(
                client.command(["SET", key.as_str(), &i.to_string()]),
                Frame::ok()
            );
        }
        migrate_slot(&source, &target, slot).expect("migration");

        // Ownership moved, data moved, source deleted its copy.
        let sp = source.wait_for_primary(T).unwrap();
        let tp = target.wait_for_primary(T).unwrap();
        assert!(!sp.owns_slot(slot));
        assert!(tp.owns_slot(slot));
        assert_eq!(sp.slot_keys(slot).len(), 0);
        assert_eq!(tp.slot_keys(slot).len(), 20);

        // The client follows the MOVED redirect transparently.
        assert_eq!(client.command(["GET", "{tag}k7"]), bulk("7"));
        assert_eq!(client.command(["SET", "{tag}new", "x"]), Frame::ok());
        assert_eq!(tp.slot_keys(slot).len(), 21);
    }

    #[test]
    fn migration_under_concurrent_writes_loses_nothing() {
        let cluster = Cluster::launch(ShardConfig::fast(), 1, 0);
        let source = cluster.shards()[0].clone();
        source.wait_for_primary(T).unwrap();
        let target = cluster.create_shard(Vec::new(), 0);
        target.wait_for_primary(T).unwrap();
        let slot = key_hash_slot(b"{mig}");

        // Writer hammers the slot while the migration runs.
        let cluster2 = Arc::clone(&cluster);
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let writer = std::thread::spawn(move || {
            let mut client = ClusterClient::new(cluster2);
            let mut acked = Vec::new();
            let mut i = 0;
            while !stop2.load(std::sync::atomic::Ordering::Relaxed) {
                let key = format!("{{mig}}k{i}");
                if client.command(["SET", key.as_str(), "v"]) == Frame::ok() {
                    acked.push(key);
                }
                i += 1;
            }
            acked
        });
        std::thread::sleep(Duration::from_millis(30));
        migrate_slot(&source, &target, slot).expect("migration under load");
        std::thread::sleep(Duration::from_millis(30));
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        let acked = writer.join().unwrap();
        assert!(!acked.is_empty());

        // Every acknowledged write is present on the new owner.
        let mut client = ClusterClient::new(Arc::clone(&cluster));
        for key in &acked {
            assert_eq!(
                client.command(["GET", key.as_str()]),
                bulk("v"),
                "acknowledged write {key} lost in migration"
            );
        }
    }

    #[test]
    fn resume_migration_completes_or_aborts() {
        let cluster = Cluster::launch(ShardConfig::fast(), 1, 0);
        let source = cluster.shards()[0].clone();
        let sp = source.wait_for_primary(T).unwrap();
        let target = cluster.create_shard(Vec::new(), 0);
        let tp = target.wait_for_primary(T).unwrap();
        let slot = key_hash_slot(b"{r}");

        // Simulate a crash after Prepare but before Commit.
        sp.commit_record(&crate::record::Record::MigrationPrepare {
            slot,
            target: target.id,
        })
        .unwrap();
        resume_migration(&source, &target, slot).unwrap();
        assert!(sp.owns_slot(slot), "abort path keeps source ownership");
        assert!(sp.ctx().log.committed_tail().0.checked_sub(1).is_some());

        // Simulate a crash after Commit but before Done.
        sp.commit_record(&crate::record::Record::MigrationPrepare {
            slot,
            target: target.id,
        })
        .unwrap();
        tp.commit_record(&crate::record::Record::MigrationCommit {
            slot,
            source: source.id,
        })
        .unwrap();
        resume_migration(&source, &target, slot).unwrap();
        assert!(!sp.owns_slot(slot), "completion path releases source");
        assert!(tp.owns_slot(slot));
    }

    #[test]
    fn scale_out_rebalances() {
        let cluster = Cluster::launch(ShardConfig::fast(), 1, 0);
        cluster.shards()[0].wait_for_primary(T).unwrap();
        let mut client = ClusterClient::new(Arc::clone(&cluster));
        for i in 0..40 {
            assert_eq!(client.command(["SET", &format!("k{i}"), "v"]), Frame::ok());
        }
        // Scaling all 8192 slots one by one is slow; move a small share by
        // migrating a handful of slots directly instead, then verify the
        // cluster still serves everything.
        let new_shard = cluster.create_shard(Vec::new(), 0);
        new_shard.wait_for_primary(T).unwrap();
        let donor = cluster.shards()[0].clone();
        let mut moved = 0;
        for slot in 0u16..64 {
            migrate_slot(&donor, &new_shard, slot).unwrap();
            moved += 1;
        }
        assert_eq!(moved, 64);
        for i in 0..40 {
            assert_eq!(client.command(["GET", &format!("k{i}")]), bulk("v"));
        }
        let np = new_shard.wait_for_primary(T).unwrap();
        assert_eq!(np.owned_ranges(), vec![(0, 63)]);
    }

    #[test]
    fn replica_scaling_up_and_down() {
        let shard = new_shard(0);
        let primary = shard.wait_for_primary(T).unwrap();
        let mut session = SessionState::new();
        for i in 0..10 {
            primary.handle(&mut session, &cmd(["SET", &format!("k{i}"), "v"]));
        }
        // Scale up: new replica restores and serves.
        let r1 = shard.add_node();
        let _r2 = shard.add_node();
        assert!(shard.wait_replicas_caught_up(T));
        assert_eq!(shard.replicas().len(), 2);
        let mut s = SessionState::new();
        assert_eq!(r1.handle(&mut s, &cmd(["GET", "k3"])), bulk("v"));
        // Scale down.
        shard.remove_replica().unwrap();
        assert_eq!(shard.replicas().len(), 1);
    }

    #[test]
    fn n_plus_one_node_replacement() {
        let cluster = Cluster::launch(ShardConfig::fast(), 1, 1);
        let shard = cluster.shards()[0].clone();
        let old_primary = shard.wait_for_primary(T).unwrap();
        let mut client = ClusterClient::new(Arc::clone(&cluster));
        for i in 0..10 {
            assert_eq!(client.command(["SET", &format!("k{i}"), "v"]), Frame::ok());
        }
        let old_ids: Vec<u64> = shard.nodes().iter().map(|n| n.id).collect();
        cluster
            .replace_all_nodes(shard.id)
            .expect("rolling replacement");
        let new_ids: Vec<u64> = shard.nodes().iter().map(|n| n.id).collect();
        assert!(new_ids.iter().all(|id| !old_ids.contains(id)));
        assert!(!old_primary.is_alive());
        // Data survived the full fleet replacement.
        for i in 0..10 {
            assert_eq!(client.command(["GET", &format!("k{i}")]), bulk("v"));
        }
    }
}

// ---------------------------------------------------------------------------
// Availability and expiry under infrastructure faults
// ---------------------------------------------------------------------------

#[test]
fn active_expiry_propagates_to_replicas_without_access() {
    // A key with a TTL disappears on primary AND replicas without anyone
    // touching it: the primary's background cycle logs explicit DELs.
    let shard = new_shard(1);
    let primary = shard.wait_for_primary(T).unwrap();
    let mut session = SessionState::new();
    assert_eq!(
        primary.handle(&mut session, &cmd(["SET", "ephemeral", "v", "PX", "80"])),
        Frame::ok()
    );
    assert_eq!(
        primary.handle(&mut session, &cmd(["SET", "stays", "v"])),
        Frame::ok()
    );
    assert!(shard.wait_replicas_caught_up(T));
    let replica = shard.replicas().into_iter().next().unwrap();
    assert_eq!(replica.key_count(), 2);
    // Wait past the TTL plus a few ticks for the background cycle.
    let deadline = std::time::Instant::now() + T;
    loop {
        if primary.key_count() == 1 && replica.key_count() == 1 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "active expiry did not propagate: primary={} replica={}",
            primary.key_count(),
            replica.key_count()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    let mut s = SessionState::new();
    assert_eq!(replica.handle(&mut s, &cmd(["GET", "stays"])), bulk("v"));
}

#[test]
fn az_outage_stalls_writes_and_recovers() {
    // Bootstrap takes one full backoff (2.5s) before the first campaign.
    // With 2 of 3 AZs down the quorum is unreachable: writes cannot be
    // acknowledged (no availability without durability); reads of clean
    // keys keep working; service resumes when an AZ returns.
    let cfg = ShardConfig {
        // Commit timeout short so the blocked write returns quickly.
        commit_timeout: Duration::from_millis(200),
        // Lease long enough to survive the outage window: renewals also
        // stall, and we don't want a demotion mid-test.
        lease: Duration::from_secs(2),
        renew_interval: Duration::from_millis(100),
        backoff: Duration::from_millis(2_500),
        ..ShardConfig::default()
    };
    let shard = Shard::bootstrap(
        0,
        cfg,
        Arc::new(ObjectStore::new()),
        Arc::new(ClusterBus::new()),
        Arc::new(NodeIdGen::new()),
        vec![(0, 16383)],
        0,
    );
    let primary = shard.wait_for_primary(T).unwrap();
    let mut session = SessionState::new();
    assert_eq!(
        primary.handle(&mut session, &cmd(["SET", "pre", "1"])),
        Frame::ok()
    );

    shard.ctx().log.set_az_up(0, false);
    shard.ctx().log.set_az_up(1, false);
    // Write cannot commit → correctly refused.
    let r = primary.handle(&mut session, &cmd(["SET", "during", "x"]));
    assert!(
        r.is_error(),
        "write must not be acknowledged during quorum loss"
    );
    // Clean reads still work (the lease is still valid).
    let mut s = SessionState::new();
    assert_eq!(primary.handle(&mut s, &cmd(["GET", "pre"])), bulk("1"));

    // AZ recovers → quorum restored → writes flow again. The node may have
    // requested demotion after the failed commit; wait for a serving
    // primary and write through it.
    shard.ctx().log.set_az_up(0, true);
    let deadline = std::time::Instant::now() + T;
    loop {
        if let Some(p) = shard.primary() {
            let mut s = SessionState::new();
            if p.handle(&mut s, &cmd(["SET", "post", "2"])) == Frame::ok() {
                assert_eq!(p.handle(&mut s, &cmd(["GET", "post"])), bulk("2"));
                break;
            }
        }
        assert!(
            std::time::Instant::now() < deadline,
            "service did not recover after the AZ returned"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn replica_behind_a_trim_rebuilds_from_snapshot() {
    // A replica partitioned long enough for the log to be trimmed past its
    // position must fall back to a full restore (§4.2.1) and still converge.
    let shard = new_shard(1);
    let primary = shard.wait_for_primary(T).unwrap();
    let replica = shard.replicas().into_iter().next().unwrap();
    let mut session = SessionState::new();
    for i in 0..20 {
        primary.handle(&mut session, &cmd(["SET", &format!("a{i}"), "1"]));
    }
    assert!(shard.wait_replicas_caught_up(T));

    // Freeze the replica, write more, snapshot + trim past its position.
    shard.ctx().log.set_client_partitioned(replica.id, true);
    for i in 0..30 {
        primary.handle(&mut session, &cmd(["SET", &format!("b{i}"), "2"]));
    }
    let offbox = OffboxSnapshotter::new(
        Arc::clone(shard.ctx()),
        memorydb_engine::EngineVersion::CURRENT,
        9_998,
    );
    offbox.create_snapshot(true).unwrap();
    assert!(shard.ctx().log.first_available() > replica.applied());

    // Heal: the replica hits Trimmed, rebuilds, and catches up.
    shard.ctx().log.set_client_partitioned(replica.id, false);
    assert!(
        shard.wait_replicas_caught_up(T),
        "rebuild after trim failed"
    );
    let mut s = SessionState::new();
    assert_eq!(replica.handle(&mut s, &cmd(["GET", "a5"])), bulk("1"));
    assert_eq!(replica.handle(&mut s, &cmd(["GET", "b29"])), bulk("2"));
    assert_eq!(replica.handle(&mut s, &cmd(["DBSIZE"])), Frame::Integer(50));
}

#[test]
fn monitor_schedules_snapshots_when_freshness_decays() {
    // §4.2.3 end to end: heavy writes push the log suffix past the
    // threshold; the monitoring pass creates (and trims behind) a snapshot.
    let shard = new_shard(0);
    let primary = shard.wait_for_primary(T).unwrap();
    let mut session = SessionState::new();
    for i in 0..1500 {
        primary.handle(&mut session, &cmd(["SET", &format!("k{i}"), "v"]));
    }
    let monitor = crate::monitor::MonitoringService::new(vec![Arc::clone(&shard)], 0)
        .with_scheduler(crate::scheduler::SnapshotScheduler {
            min_suffix_bytes: 16 * 1024,
            suffix_to_dataset_ratio: 0.05,
        });
    let report = monitor.tick_shard(&shard);
    assert!(
        report.snapshot_created,
        "freshness decay must trigger a snapshot"
    );
    assert!(
        crate::manifest::newest_restorable_covered(&shard.ctx().store, &shard.ctx().name).is_some()
    );
    // The suffix is now bounded: an immediate second tick does nothing.
    let report2 = monitor.tick_shard(&shard);
    assert!(
        !report2.snapshot_created,
        "fresh snapshot must not be redone"
    );
}

#[test]
fn info_reports_replication_state() {
    let shard = new_shard(1);
    let primary = shard.wait_for_primary(T).unwrap();
    std::thread::sleep(Duration::from_millis(60)); // heartbeats
    let mut s = SessionState::new();
    primary.handle(&mut s, &cmd(["SET", "k", "v"]));
    let info = primary.handle(&mut s, &cmd(["INFO"]));
    let Frame::Bulk(b) = info else {
        panic!("expected bulk INFO")
    };
    let text = String::from_utf8_lossy(&b).to_string();
    assert!(text.contains("role:master"), "{text}");
    assert!(text.contains("leader_epoch:"), "{text}");
    assert!(text.contains("owned_slots:16384"), "{text}");
    assert!(text.contains("connected_replicas:1"), "{text}");
    assert!(text.contains("halted:no"), "{text}");
    let replica = shard.replicas().into_iter().next().unwrap();
    let info = replica.handle(&mut s, &cmd(["INFO"]));
    let Frame::Bulk(b) = info else {
        panic!("expected bulk INFO")
    };
    let text = String::from_utf8_lossy(&b).to_string();
    assert!(text.contains("role:slave"), "{text}");
    assert!(text.contains("lease_remaining_ms:-1"), "{text}");
}

#[test]
fn scale_in_drains_and_destroys_a_shard() {
    use crate::client::ClusterClient;
    use crate::cluster::Cluster;
    // Shard 0 owns everything; shard 1 owns a small band we then drain.
    let cluster = Cluster::launch(ShardConfig::fast(), 1, 0);
    let donor = cluster.shards()[0].clone();
    donor.wait_for_primary(T).unwrap();
    let small = cluster.create_shard(Vec::new(), 0);
    small.wait_for_primary(T).unwrap();
    for slot in 0u16..12 {
        crate::migration::migrate_slot(&donor, &small, slot).unwrap();
    }
    let mut client = ClusterClient::new(Arc::clone(&cluster));
    // Data lands on both shards.
    let mut keys = Vec::new();
    let mut i = 0u64;
    while keys.len() < 40 {
        let key = format!("k{i}");
        i += 1;
        assert_eq!(client.command(["SET", key.as_str(), "v"]), Frame::ok());
        keys.push(key);
    }
    assert!(
        small.wait_for_primary(T).unwrap().key_count() > 0 || {
            // Ensure at least one key hashed into the small band; force one.
            let forced = (0..)
                .map(|j| format!("f{j}"))
                .find(|k| memorydb_engine::key_hash_slot(k.as_bytes()) < 12)
                .unwrap();
            client.command(["SET", forced.as_str(), "v"]);
            keys.push(forced);
            true
        }
    );

    cluster.scale_in(small.id).expect("scale in");
    assert_eq!(cluster.shards().len(), 1);
    // All data reachable on the surviving shard.
    for key in &keys {
        assert_eq!(client.command(["GET", key.as_str()]), bulk("v"), "{key}");
    }
    let map = cluster.slot_map();
    assert_eq!(map, vec![(0, 16383, donor.id)]);
}

// ---------------------------------------------------------------------------
// Pipelined batch execution (Enhanced-IO): Node::handle_batch
// ---------------------------------------------------------------------------

/// A shard whose lease machinery stays quiet for a while after election
/// (renewals only every 600ms), so the txlog append-call counter mostly
/// isolates the batch under test. The backoff still has to exceed the lease
/// (config invariant), so the first election lands after ~2.25s.
fn quiet_shard(replicas: usize) -> Arc<Shard> {
    Shard::bootstrap(
        0,
        ShardConfig {
            lease: Duration::from_secs(2),
            renew_interval: Duration::from_millis(600),
            backoff: Duration::from_millis(2250),
            ..ShardConfig::fast()
        },
        Arc::new(ObjectStore::new()),
        Arc::new(ClusterBus::new()),
        Arc::new(NodeIdGen::new()),
        vec![(0, 16383)],
        replicas,
    )
}

#[test]
fn batch_replies_in_submission_order_and_one_append_call() {
    let shard = quiet_shard(0);
    let primary = shard.wait_for_primary(T).unwrap();
    let mut s = SessionState::new();

    let mut batch: Vec<Vec<Bytes>> = Vec::new();
    for i in 0..16 {
        batch.push(cmd(["SET", &format!("k{i}"), &format!("v{i}")]));
    }
    batch.push(cmd(["GET", "k7"]));
    batch.push(cmd(["DBSIZE"]));

    let calls_before = shard.ctx().log.append_calls();
    let replies = primary.handle_batch(&mut s, &batch);
    let calls_after = shard.ctx().log.append_calls();

    assert_eq!(replies.len(), 18);
    for r in &replies[..16] {
        assert_eq!(*r, Frame::ok());
    }
    assert_eq!(replies[16], bulk("v7"));
    assert_eq!(replies[17], Frame::Integer(16));
    // Group commit: 16 mutations, ONE conditional append (one quorum ack).
    assert_eq!(calls_after - calls_before, 1, "batch must group-commit");
}

/// Cross-connection group commit (the commit pipeline's tentpole claim):
/// M concurrent sessions each submitting pipelined write batches against
/// ONE node must need strictly fewer conditional appends than batches —
/// the committer coalesces staged runs from different connections — while
/// every session still sees its own replies in exact submission order.
#[test]
fn concurrent_batches_coalesce_appends_and_preserve_per_session_order() {
    const THREADS: usize = 8;
    const BATCHES: usize = 25;
    const DEPTH: usize = 4;

    let shard = quiet_shard(0);
    let primary = shard.wait_for_primary(T).unwrap();
    let barrier = Arc::new(std::sync::Barrier::new(THREADS));
    let calls_before = shard.ctx().log.append_calls();

    let mut workers = Vec::new();
    for t in 0..THREADS {
        let primary = Arc::clone(&primary);
        let barrier = Arc::clone(&barrier);
        workers.push(std::thread::spawn(move || {
            let mut s = SessionState::new();
            let key = format!("coal-ctr-{t}");
            let mut seen = 0i64;
            barrier.wait();
            for _ in 0..BATCHES {
                let batch: Vec<Vec<Bytes>> = (0..DEPTH).map(|_| cmd(["INCR", &key])).collect();
                let replies = primary.handle_batch(&mut s, &batch);
                assert_eq!(replies.len(), DEPTH);
                // INCR on a session-private key: replies in submission
                // order are exactly the next DEPTH counter values.
                for r in replies {
                    seen += 1;
                    assert_eq!(
                        r,
                        Frame::Integer(seen),
                        "session {t} replies out of submission order"
                    );
                }
            }
        }));
    }
    for w in workers {
        w.join().expect("coalescing worker panicked");
    }

    let appends = shard.ctx().log.append_calls() - calls_before;
    let total_batches = (THREADS * BATCHES) as u64;
    assert!(appends > 0, "writes must reach the log");
    assert!(
        appends < total_batches,
        "committer must coalesce staged batches across connections: \
         {appends} appends for {total_batches} batches"
    );
    // Nothing lost to coalescing: every INCR landed exactly once.
    let mut s = SessionState::new();
    for t in 0..THREADS {
        assert_eq!(
            primary.handle(&mut s, &cmd(["GET", &format!("coal-ctr-{t}")])),
            bulk(&format!("{}", BATCHES * DEPTH))
        );
    }
}

#[test]
fn batch_read_your_writes_within_batch() {
    let shard = new_shard(0);
    let primary = shard.wait_for_primary(T).unwrap();
    let mut s = SessionState::new();
    let replies = primary.handle_batch(
        &mut s,
        &[
            cmd(["SET", "k", "a"]),
            cmd(["APPEND", "k", "b"]),
            cmd(["GET", "k"]),
        ],
    );
    assert_eq!(replies, vec![Frame::ok(), Frame::Integer(2), bulk("ab")]);
}

#[test]
fn batch_multi_exec_spanning_batch_boundaries() {
    let shard = new_shard(0);
    let primary = shard.wait_for_primary(T).unwrap();
    let mut s = SessionState::new();

    // MULTI and half the queue arrive in one batch...
    let first = primary.handle_batch(
        &mut s,
        &[cmd(["MULTI"]), cmd(["SET", "t", "1"]), cmd(["INCR", "t"])],
    );
    assert_eq!(first[0], Frame::ok());
    assert_eq!(first[1], Frame::Simple("QUEUED".into()));
    assert_eq!(first[2], Frame::Simple("QUEUED".into()));

    // ...EXEC arrives in the next batch; the transaction is one atomic
    // record and its replies match one-at-a-time execution.
    let second = primary.handle_batch(&mut s, &[cmd(["EXEC"]), cmd(["GET", "t"])]);
    assert_eq!(
        second[0],
        Frame::Array(vec![Frame::ok(), Frame::Integer(2)])
    );
    assert_eq!(second[1], bulk("2"));
}

#[test]
fn batch_watch_conflict_spanning_batches_aborts_exec() {
    let shard = new_shard(0);
    let primary = shard.wait_for_primary(T).unwrap();
    let mut watcher = SessionState::new();
    let mut writer = SessionState::new();

    let r = primary.handle_batch(&mut watcher, &[cmd(["WATCH", "w"]), cmd(["MULTI"])]);
    assert_eq!(r, vec![Frame::ok(), Frame::ok()]);
    // A different session clobbers the watched key between the batches.
    assert_eq!(
        primary.handle(&mut writer, &cmd(["SET", "w", "clobber"])),
        Frame::ok()
    );
    let r = primary.handle_batch(&mut watcher, &[cmd(["SET", "w", "mine"]), cmd(["EXEC"])]);
    assert_eq!(r[0], Frame::Simple("QUEUED".into()));
    assert_eq!(r[1], Frame::Null, "EXEC must abort on watch conflict");
    // The aborted transaction wrote nothing.
    assert_eq!(
        primary.handle(&mut writer, &cmd(["GET", "w"])),
        bulk("clobber")
    );
}

#[test]
fn batch_error_mid_batch_still_executes_rest() {
    let shard = new_shard(0);
    let primary = shard.wait_for_primary(T).unwrap();
    let mut s = SessionState::new();
    let replies = primary.handle_batch(
        &mut s,
        &[
            cmd(["SET", "a", "1"]),
            cmd(["MGET", "a", "b"]), // cross-slot: a and b hash differently
            cmd(["INCR", "a"]),
        ],
    );
    assert_eq!(replies.len(), 3);
    assert_eq!(replies[0], Frame::ok());
    match &replies[1] {
        Frame::Error(m) => assert!(m.starts_with("CROSSSLOT"), "{m}"),
        other => panic!("expected CROSSSLOT, got {other:?}"),
    }
    assert_eq!(replies[2], Frame::Integer(2));
}

#[test]
fn batch_matches_one_at_a_time_semantics() {
    let program: Vec<Vec<Bytes>> = vec![
        cmd(["SET", "x", "10"]),
        cmd(["INCRBY", "x", "5"]),
        cmd(["GET", "x"]),
        cmd(["DEL", "x"]),
        cmd(["GET", "x"]),
        cmd(["RPUSH", "l", "a", "b"]),
        cmd(["LRANGE", "l", "0", "-1"]),
    ];

    let shard_a = new_shard(0);
    let pa = shard_a.wait_for_primary(T).unwrap();
    let mut sa = SessionState::new();
    let batched = pa.handle_batch(&mut sa, &program);

    let shard_b = new_shard(0);
    let pb = shard_b.wait_for_primary(T).unwrap();
    let mut sb = SessionState::new();
    let sequential: Vec<Frame> = program.iter().map(|c| pb.handle(&mut sb, c)).collect();

    assert_eq!(batched, sequential);
}

// ---------------------------------------------------------------------------
// Failover & crash-recovery regressions (found/pinned by the chaos harness)
// ---------------------------------------------------------------------------

#[test]
fn fenced_stale_primary_must_not_ack_in_flight_writes() {
    // A primary whose conditional append loses to a competing log writer is
    // fenced (§4.1): the write it was servicing must come back as an error,
    // never +OK, and the value must not exist anywhere afterwards.
    let shard = quiet_shard(1);
    let primary = shard.wait_for_primary(T).unwrap();
    let mut session = SessionState::new();
    assert_eq!(
        primary.handle(&mut session, &cmd(["SET", "stable", "1"])),
        Frame::ok()
    );

    // Fence the primary out-of-band: a benign Effects record appended by a
    // foreign writer moves the log tail past the primary's applied position,
    // so its next conditional append must conflict.
    let fence = crate::record::Record::Effects {
        version: memorydb_engine::EngineVersion::CURRENT,
        effects: vec![cmd(["SET", "sneak", "1"])],
    };
    shard
        .ctx()
        .log
        .append(999, fence.encode())
        .expect("foreign append");

    // quiet_shard renews only every 600ms, so this handle call reaches the
    // append path well before the renewal loop notices the fence.
    let r = primary.handle(&mut session, &cmd(["SET", "lost", "x"]));
    match r {
        Frame::Error(m) => assert!(
            m.starts_with("CLUSTERDOWN cannot commit to transaction log"),
            "fenced write must fail the commit path, got: {m}"
        ),
        other => panic!("fenced in-flight write was acknowledged: {other:?}"),
    }

    // Until the rebuild discards the poisoned state, the fenced node must
    // refuse even reads — serving them would expose the uncommitted `lost`
    // value, which then vanishes (a read-then-unread anomaly).
    match primary.handle(&mut session, &cmd(["GET", "lost"])) {
        Frame::Error(m) => assert!(m.starts_with("CLUSTERDOWN"), "{m}"),
        other => panic!("fenced primary served a read: {other:?}"),
    }

    // After the dust settles some primary serves again; the fenced write is
    // nowhere, while both the pre-fence write and the fencing record are.
    let p = shard
        .wait_for_primary(Duration::from_secs(10))
        .expect("recovery");
    let mut s = SessionState::new();
    assert_eq!(p.handle(&mut s, &cmd(["GET", "lost"])), Frame::Null);
    assert_eq!(p.handle(&mut s, &cmd(["GET", "stable"])), bulk("1"));
    assert_eq!(p.handle(&mut s, &cmd(["GET", "sneak"])), bulk("1"));
}

#[test]
fn lease_expiry_mid_batch_rejects_with_clusterdown() {
    // §4.1.3: a primary that cannot renew must stop serving at lease end.
    // The tick here is far larger than the lease, so the node sits in the
    // expired-but-not-yet-demoted window for seconds — exactly the state a
    // client batch can race into — and every command in the batch must be
    // rejected through the CLUSTERDOWN lease path, reads included.
    let cfg = ShardConfig {
        lease: Duration::from_millis(300),
        renew_interval: Duration::from_millis(100),
        backoff: Duration::from_millis(400),
        tick: Duration::from_secs(3),
        ..ShardConfig::fast()
    };
    let shard = Shard::bootstrap(
        0,
        cfg,
        Arc::new(ObjectStore::new()),
        Arc::new(ClusterBus::new()),
        Arc::new(NodeIdGen::new()),
        vec![(0, 16383)],
        1,
    );
    let primary = shard.wait_for_primary(Duration::from_secs(10)).unwrap();
    let mut session = SessionState::new();
    assert_eq!(
        primary.handle(&mut session, &cmd(["SET", "k", "v"])),
        Frame::ok()
    );

    // The 3s tick means no renewal lands before the 300ms lease runs out;
    // 600ms later the lease is expired but the run loop hasn't demoted yet.
    std::thread::sleep(Duration::from_millis(600));
    let replies = primary.handle_batch(
        &mut session,
        &[
            cmd(["SET", "lost", "x"]),
            cmd(["GET", "k"]),
            cmd(["DEL", "k"]),
        ],
    );
    assert_eq!(replies.len(), 3);
    for r in &replies {
        match r {
            Frame::Error(m) => assert_eq!(
                m, "CLUSTERDOWN leadership lease expired; demoting",
                "expired-lease batch must fail via the lease path"
            ),
            other => panic!("expired-lease primary served a command: {other:?}"),
        }
    }

    // The rejected mutations never happened: a successor still has k and no
    // trace of the poisoned batch.
    let successor = wait_for_new_primary(&shard, primary.id);
    let mut s = SessionState::new();
    assert_eq!(successor.handle(&mut s, &cmd(["GET", "k"])), bulk("v"));
    assert_eq!(successor.handle(&mut s, &cmd(["GET", "lost"])), Frame::Null);
}

#[test]
fn restore_racing_snapshot_trim_retries_from_fresh_snapshot() {
    // §4.2.1 vs §4.2.3: a replica restore that loses its log suffix to a
    // concurrent off-box snapshot + trim must restart from the (necessarily
    // fresher) snapshot and complete — not error out, and never mismatch a
    // checksum. The restoring client is slowed so the snapshot+trim cycle
    // deterministically lands inside its replay window.
    let shard = new_shard(0);
    let primary = shard.wait_for_primary(T).unwrap();
    let mut session = SessionState::new();
    for chunk in 0..7 {
        let batch: Vec<Vec<Bytes>> = (0..100)
            .map(|i| cmd(["SET", &format!("k{}", chunk * 100 + i), "v"]))
            .collect();
        for r in primary.handle_batch(&mut session, &batch) {
            assert_eq!(r, Frame::ok());
        }
    }

    // >700 log entries now; a restore reads them in 512-entry batches, so a
    // delayed reader needs several round trips.
    let restorer_client = 7_777;
    shard
        .ctx()
        .log
        .set_read_delay(restorer_client, Some(Duration::from_millis(80)));
    let ctx = Arc::clone(shard.ctx());
    let restorer = std::thread::spawn(move || {
        crate::restore::restore_replica(
            &ctx.store,
            &ctx.log,
            restorer_client,
            &ctx.name,
            memorydb_engine::EngineVersion::CURRENT,
            crate::restore::ReplayTarget::Tail,
        )
    });

    // While the restorer is mid-replay, publish a covering snapshot and trim
    // the whole prefix it was reading.
    std::thread::sleep(Duration::from_millis(120));
    let offbox = OffboxSnapshotter::new(
        Arc::clone(shard.ctx()),
        memorydb_engine::EngineVersion::CURRENT,
        9_998,
    );
    let (_, covered) = offbox.create_snapshot(true).expect("off-box snapshot");
    assert!(shard.ctx().log.first_available() > memorydb_txlog::EntryId::ZERO.next());

    let rp = restorer
        .join()
        .unwrap()
        .expect("restore racing a trim must retry from the fresh snapshot");
    shard.ctx().log.set_read_delay(restorer_client, None);

    assert!(
        rp.rs.applied >= covered,
        "retried restore must land at or past the trimming snapshot"
    );
    for i in 0..700 {
        assert!(
            rp.engine.db.lookup(format!("k{i}").as_bytes(), 0).is_some(),
            "k{i} missing after trim-raced restore"
        );
    }
}

// ---------------------------------------------------------------------------
// Observability: SLOWLOG / LATENCY / INFO sections at the node level, and
// the EXPIRE overflow fixes replayed through real replication (DESIGN §10).
// ---------------------------------------------------------------------------

/// Map-frame lookup by bulk key (LATENCY HISTOGRAM replies).
fn map_get<'a>(frame: &'a Frame, key: &str) -> Option<&'a Frame> {
    let Frame::Map(pairs) = frame else {
        return None;
    };
    pairs.iter().find_map(|(k, v)| match k {
        Frame::Bulk(b) if b.as_ref() == key.as_bytes() => Some(v),
        _ => None,
    })
}

#[test]
fn expire_overflow_is_rejected_and_delete_on_negative_replicates() {
    let shard = new_shard(1);
    let primary = shard.wait_for_primary(T).unwrap();
    let mut session = SessionState::new();
    assert_eq!(
        primary.handle(&mut session, &cmd(["SET", "k", "v"])),
        Frame::ok()
    );

    // Overflowing seconds->ms conversion is an error, not a wrapped TTL.
    let huge = (i64::MAX / 1000 + 1).to_string();
    let reply = primary.handle(&mut session, &cmd(["EXPIRE", "k", &huge]));
    let Frame::Error(msg) = &reply else {
        panic!("EXPIRE overflow must error, got {reply:?}");
    };
    assert!(msg.contains("invalid expire time"), "got: {msg}");
    assert_eq!(
        primary.handle(&mut session, &cmd(["TTL", "k"])),
        Frame::Integer(-1)
    );

    // PEXPIREAT at i64::MAX is representable: accepted, key survives.
    assert_eq!(
        primary.handle(
            &mut session,
            &cmd(["PEXPIREAT", "k", &i64::MAX.to_string()])
        ),
        Frame::Integer(1)
    );

    // EXPIRE with a negative TTL deletes — and the DEL effect must reach
    // the replica through the log, not via replica-local clock math.
    assert_eq!(
        primary.handle(&mut session, &cmd(["EXPIRE", "k", "-5"])),
        Frame::Integer(1)
    );
    assert_eq!(
        primary.handle(&mut session, &cmd(["GET", "k"])),
        Frame::Null
    );
    assert!(shard.wait_replicas_caught_up(T));
    let replica = shard.replicas().into_iter().next().unwrap();
    let mut s = SessionState::new();
    assert_eq!(replica.handle(&mut s, &cmd(["GET", "k"])), Frame::Null);
    let (p_pos, p_crc) = primary.position();
    let (r_pos, r_crc) = replica.position();
    assert_eq!(
        (p_pos, p_crc),
        (r_pos, r_crc),
        "divergent after EXPIRE fixes"
    );
}

#[test]
fn slowlog_records_commands_and_serves_get_reset_len() {
    let shard = new_shard(0);
    let primary = shard.wait_for_primary(T).unwrap();
    let mut session = SessionState::new();

    // Threshold 0 records everything; the setting is engine config and is
    // mirrored into the registry at the next batch.
    assert_eq!(
        primary.handle(
            &mut session,
            &cmd(["CONFIG", "SET", "slowlog-log-slower-than", "0"])
        ),
        Frame::ok()
    );
    assert_eq!(
        primary.handle(&mut session, &cmd(["SET", "slow", "cmd"])),
        Frame::ok()
    );

    let len = primary.handle(&mut session, &cmd(["SLOWLOG", "LEN"]));
    let Frame::Integer(n) = len else {
        panic!("SLOWLOG LEN must be an integer, got {len:?}");
    };
    assert!(n >= 1, "threshold 0 must record the SET, got {n}");

    let got = primary.handle(&mut session, &cmd(["SLOWLOG", "GET"]));
    let Frame::Array(entries) = &got else {
        panic!("SLOWLOG GET must be an array, got {got:?}");
    };
    let Some(Frame::Array(fields)) = entries.first() else {
        panic!("expected at least one slowlog entry");
    };
    assert_eq!(fields.len(), 4, "entry = [id, ts, dur_us, args]");
    assert!(matches!(fields.first(), Some(Frame::Integer(_))));
    let Some(Frame::Array(args)) = fields.get(3) else {
        panic!("4th field must be the argv array");
    };
    assert!(!args.is_empty());

    // GET with an explicit count limits; negative count means everything.
    let one = primary.handle(&mut session, &cmd(["SLOWLOG", "GET", "1"]));
    let Frame::Array(one) = one else { panic!() };
    assert_eq!(one.len(), 1);
    let all = primary.handle(&mut session, &cmd(["SLOWLOG", "GET", "-1"]));
    let Frame::Array(all) = all else { panic!() };
    assert!(all.len() as i64 >= n);

    // Disabled threshold records nothing. The CONFIG SET batch itself still
    // runs under the old threshold (the mirror happens at batch start), so
    // reset AFTER disabling.
    assert_eq!(
        primary.handle(
            &mut session,
            &cmd(["CONFIG", "SET", "slowlog-log-slower-than", "-1"])
        ),
        Frame::ok()
    );
    assert_eq!(
        primary.handle(&mut session, &cmd(["SLOWLOG", "RESET"])),
        Frame::ok()
    );
    assert_eq!(
        primary.handle(&mut session, &cmd(["SLOWLOG", "LEN"])),
        Frame::Integer(0)
    );
    assert_eq!(
        primary.handle(&mut session, &cmd(["SET", "quiet", "1"])),
        Frame::ok()
    );
    assert_eq!(
        primary.handle(&mut session, &cmd(["SLOWLOG", "LEN"])),
        Frame::Integer(0)
    );

    let bad = primary.handle(&mut session, &cmd(["SLOWLOG", "NOPE"]));
    assert!(matches!(bad, Frame::Error(_)));
}

#[test]
fn info_sections_and_latency_histogram_reflect_stage_metrics() {
    let shard = new_shard(0);
    let primary = shard.wait_for_primary(T).unwrap();
    let mut session = SessionState::new();
    assert_eq!(
        primary.handle(&mut session, &cmd(["SET", "k", "v"])),
        Frame::ok()
    );
    assert_eq!(primary.handle(&mut session, &cmd(["GET", "k"])), bulk("v"));

    let text = |f: &Frame| -> String {
        let Frame::Bulk(b) = f else {
            panic!("INFO must be bulk, got {f:?}")
        };
        String::from_utf8_lossy(b).into_owned()
    };

    // Bare INFO keeps its historic default sections, without stats.
    let full = text(&primary.handle(&mut session, &cmd(["INFO"])));
    for section in [
        "# Server",
        "# Replication",
        "# Cluster",
        "# Keyspace",
        "# Memory",
    ] {
        assert!(full.contains(section), "bare INFO missing {section}");
    }
    assert!(!full.contains("# Stats"));
    assert!(
        full.contains("engine_stripes:16"),
        "INFO # Server must report the stripe count: {full}"
    );

    // Section filtering.
    let repl = text(&primary.handle(&mut session, &cmd(["INFO", "replication"])));
    assert!(repl.contains("role:master"));
    assert!(!repl.contains("# Server"));

    // stats: dispatch counters from the node registry plus txlog-prefixed
    // counters and gauges from the log's registry.
    let stats = text(&primary.handle(&mut session, &cmd(["INFO", "stats"])));
    assert!(stats.contains("commands_dispatched:"), "{stats}");
    assert!(stats.contains("batches_dispatched:"), "{stats}");
    assert!(stats.contains("txlog_log_committed_tail:"), "{stats}");

    // latencystats: per-stage percentiles; apply/e2e ran, log_append too
    // (the SET committed through the log).
    let lat = text(&primary.handle(&mut session, &cmd(["INFO", "latencystats"])));
    for stage in [
        "apply",
        "e2e",
        "engine_lock_hold",
        "stripe_lock_hold",
        "durability",
        "log_append",
        "quorum_ack",
    ] {
        assert!(
            lat.contains(&format!("latency_percentiles_usec_{stage}:")),
            "latencystats missing {stage}: {lat}"
        );
    }

    // `everything` includes both the default and the stats sections.
    let every = text(&primary.handle(&mut session, &cmd(["INFO", "everything"])));
    assert!(every.contains("# Server") && every.contains("# Stats"));

    // Unknown section: empty bulk, like Redis.
    let unknown = primary.handle(&mut session, &cmd(["INFO", "bogus"]));
    assert_eq!(unknown, Frame::Bulk(Bytes::new()));

    // LATENCY HISTOGRAM: map keyed by stage, node + txlog registries merged.
    let hist = primary.handle(&mut session, &cmd(["LATENCY", "HISTOGRAM"]));
    for stage in ["apply", "e2e", "log_append"] {
        let entry = map_get(&hist, stage)
            .unwrap_or_else(|| panic!("LATENCY HISTOGRAM missing stage {stage}"));
        let calls = map_get(entry, "calls").expect("calls field");
        assert!(
            matches!(calls, Frame::Integer(n) if *n > 0),
            "{stage}: {calls:?}"
        );
        for field in ["p50_us", "p99_us", "p999_us", "max_us", "sum_us"] {
            assert!(map_get(entry, field).is_some(), "{stage} missing {field}");
        }
    }
    assert!(
        map_get(&hist, "io_read").is_none(),
        "no IO recorded in-process"
    );

    assert_eq!(
        primary.handle(&mut session, &cmd(["LATENCY", "RESET"])),
        Frame::Integer(0)
    );
    let bad = primary.handle(&mut session, &cmd(["LATENCY", "NOPE"]));
    assert!(matches!(bad, Frame::Error(_)));
}

// ---------------------------------------------------------------------------
// Stripe routing (DESIGN.md §12)
// ---------------------------------------------------------------------------

fn striped_shard(stripes: usize, replicas: usize) -> Arc<Shard> {
    let cfg = ShardConfig {
        engine_stripes: stripes,
        ..ShardConfig::fast()
    };
    Shard::bootstrap(
        0,
        cfg,
        Arc::new(ObjectStore::new()),
        Arc::new(ClusterBus::new()),
        Arc::new(NodeIdGen::new()),
        vec![(0, 16383)],
        replicas,
    )
}

/// Tiny deterministic RNG (xorshift64*): the command stream below must be a
/// pure function of the seed so two shards replay the same program.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Builds a deterministic batch stream that hops across stripes: point
/// commands on three disjoint key namespaces (no cross-type collisions, so
/// every reply is deterministic), a FLUSHDB fanning out to all stripes at
/// the midpoint, and periodic MULTI/EXEC transactions whose keys (`foo`
/// slot 12182, `bar` slot 5061, `n0`) land on different stripes at 16.
fn random_cross_stripe_program(seed: u64, len: usize) -> Vec<Vec<Vec<Bytes>>> {
    let mut rng = XorShift(seed | 1);
    let mut program = Vec::new();
    for step in 0..len {
        if step == len / 2 {
            program.push(vec![cmd(["FLUSHDB"])]);
            continue;
        }
        let mut batch = Vec::new();
        for _ in 0..=rng.below(2) {
            let k = format!("k{}", rng.below(48));
            batch.push(match rng.below(7) {
                0 | 1 => cmd(["SET", &k, &format!("v{step}")]),
                2 => cmd(["APPEND", &k, "x"]),
                3 => cmd(["INCR", &format!("n{}", rng.below(8))]),
                4 => cmd(["RPUSH", &format!("l{}", rng.below(8)), &k]),
                5 => cmd(["DEL", &k]),
                _ => cmd(["GET", &k]),
            });
        }
        if rng.below(6) == 0 {
            batch.push(cmd(["MULTI"]));
            batch.push(cmd(["SET", "foo", &format!("f{step}")]));
            batch.push(cmd(["SET", "bar", &format!("b{step}")]));
            batch.push(cmd(["INCR", "n0"]));
            batch.push(cmd(["EXEC"]));
        }
        program.push(batch);
    }
    program
}

/// The tentpole invariant: per-stripe execution order equals fold order, so
/// a 16-stripe shard and a 1-stripe shard fold the same command stream to
/// byte-identical datasets, and a replica replaying the striped primary's
/// log converges to its exact (covered, crc, dump) triple.
#[test]
fn striped_fold_matches_unstriped_and_replica_replay() {
    let program = random_cross_stripe_program(0xC0FFEE, 60);

    let striped = striped_shard(16, 1);
    let unstriped = striped_shard(1, 0);
    let ps = striped.wait_for_primary(T).unwrap();
    let pu = unstriped.wait_for_primary(T).unwrap();
    let mut ss = SessionState::new();
    let mut su = SessionState::new();
    for (i, batch) in program.iter().enumerate() {
        let rs = ps.handle_batch(&mut ss, batch);
        let ru = pu.handle_batch(&mut su, batch);
        assert_eq!(rs, ru, "replies diverged at batch {i}: {batch:?}");
    }

    // Identical datasets regardless of stripe count: the snapshot dump
    // concatenates stripes in slot order, so it is byte-comparable.
    assert_eq!(
        ps.capture_snapshot().rdb,
        pu.capture_snapshot().rdb,
        "stripe partitioning changed the folded dataset"
    );

    // The replica replays the same log stripe-by-stripe and must land on
    // the primary's exact snapshot. Lease-renewal control records keep
    // advancing the primary's applied index, so capture both sides until
    // they line up on the same covered id.
    assert!(striped.wait_replicas_caught_up(T));
    let replica = striped.replicas().into_iter().next().unwrap();
    let deadline = std::time::Instant::now() + T;
    loop {
        let p = ps.capture_snapshot();
        let r = replica.capture_snapshot();
        if p.covered == r.covered {
            assert_eq!(p.running_crc, r.running_crc, "replica fold crc diverged");
            assert_eq!(p.rdb, r.rdb, "replica dataset diverged");
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "primary and replica never aligned on a covered entry"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// MULTI/EXEC spanning stripes commits atomically under all-stripe
/// acquisition, and a WATCH on one stripe still aborts a transaction whose
/// queued write targets a different stripe.
#[test]
fn exec_across_stripes_is_atomic_and_watch_aborts_cross_stripe() {
    let shard = striped_shard(16, 0);
    let primary = shard.wait_for_primary(T).unwrap();
    let mut session = SessionState::new();
    let queued = Frame::Simple("QUEUED".into());

    // foo (slot 12182) and bar (slot 5061) live on different stripes at 16.
    let replies = primary.handle_batch(
        &mut session,
        &[
            cmd(["MULTI"]),
            cmd(["SET", "foo", "F"]),
            cmd(["SET", "bar", "B"]),
            cmd(["EXEC"]),
        ],
    );
    assert_eq!(
        replies,
        vec![
            Frame::ok(),
            queued.clone(),
            queued.clone(),
            Frame::Array(vec![Frame::ok(), Frame::ok()]),
        ]
    );
    assert_eq!(
        primary.handle(&mut session, &cmd(["GET", "foo"])),
        bulk("F")
    );
    assert_eq!(
        primary.handle(&mut session, &cmd(["GET", "bar"])),
        bulk("B")
    );

    // WATCH a key on one stripe, queue a write to another stripe, then let
    // a second session clobber the watched key: EXEC must abort (null
    // reply) and the queued cross-stripe write must not land.
    assert_eq!(
        primary.handle(&mut session, &cmd(["WATCH", "foo"])),
        Frame::ok()
    );
    assert_eq!(primary.handle(&mut session, &cmd(["MULTI"])), Frame::ok());
    assert_eq!(
        primary.handle(&mut session, &cmd(["SET", "bar", "stale"])),
        queued
    );
    let mut other = SessionState::new();
    assert_eq!(
        primary.handle(&mut other, &cmd(["SET", "foo", "clobbered"])),
        Frame::ok()
    );
    assert_eq!(primary.handle(&mut session, &cmd(["EXEC"])), Frame::Null);
    assert_eq!(
        primary.handle(&mut session, &cmd(["GET", "bar"])),
        bulk("B")
    );
}

/// SCAN's composite cursor (stripe index in the high bits) walks every
/// stripe to completion and visits each key exactly once per pass.
#[test]
fn scan_iterates_every_stripe() {
    let shard = striped_shard(16, 0);
    let primary = shard.wait_for_primary(T).unwrap();
    let mut session = SessionState::new();
    for i in 0..100 {
        assert_eq!(
            primary.handle(&mut session, &cmd(["SET", &format!("k{i}"), "v"])),
            Frame::ok()
        );
    }

    let mut seen = std::collections::BTreeSet::new();
    let mut cursor = String::from("0");
    for _round in 0..200 {
        let reply = primary.handle(&mut session, &cmd(["SCAN", &cursor, "COUNT", "7"]));
        let Frame::Array(items) = reply else {
            panic!("SCAN must return [cursor, keys]")
        };
        let [cur, keys] = items.as_slice() else {
            panic!("SCAN reply must have two elements, got {items:?}")
        };
        let Frame::Bulk(c) = cur else {
            panic!("SCAN cursor must be bulk, got {cur:?}")
        };
        cursor = String::from_utf8_lossy(c).into_owned();
        let Frame::Array(ks) = keys else {
            panic!("SCAN keys must be an array, got {keys:?}")
        };
        for k in ks {
            let Frame::Bulk(kb) = k else {
                panic!("SCAN key must be bulk, got {k:?}")
            };
            seen.insert(String::from_utf8_lossy(kb).into_owned());
        }
        if cursor == "0" {
            break;
        }
    }
    assert_eq!(cursor, "0", "SCAN never terminated");
    assert_eq!(seen.len(), 100, "SCAN must visit every stripe's keys");
}

/// A composite cursor taken mid-scan stays valid across FLUSHDB: replaying
/// it against the now-empty keyspace fast-forwards through the exhausted
/// stripes and terminates in ONE call instead of handing back a stale
/// non-zero cursor the client would chase forever.
#[test]
fn scan_cursor_from_before_flushdb_terminates_promptly() {
    let shard = striped_shard(16, 0);
    let primary = shard.wait_for_primary(T).unwrap();
    let mut session = SessionState::new();
    for i in 0..100 {
        assert_eq!(
            primary.handle(&mut session, &cmd(["SET", &format!("k{i}"), "v"])),
            Frame::ok()
        );
    }

    // Walk a few rounds so the cursor points mid-keyspace (non-zero).
    let mut cursor = String::from("0");
    for _ in 0..3 {
        let Frame::Array(items) =
            primary.handle(&mut session, &cmd(["SCAN", &cursor, "COUNT", "7"]))
        else {
            panic!("SCAN must return [cursor, keys]")
        };
        let Some(Frame::Bulk(c)) = items.first() else {
            panic!("SCAN cursor must be bulk")
        };
        cursor = String::from_utf8_lossy(c).into_owned();
    }
    assert_ne!(cursor, "0", "need a mid-scan cursor for this test");

    assert_eq!(primary.handle(&mut session, &cmd(["FLUSHDB"])), Frame::ok());

    // The stale cursor must land on "0" with no keys in a single call: the
    // scan loop skips every exhausted empty stripe instead of bouncing the
    // client once per stripe (or worse, echoing a cursor that never ends).
    let reply = primary.handle(&mut session, &cmd(["SCAN", &cursor, "COUNT", "7"]));
    assert_eq!(
        reply,
        Frame::Array(vec![bulk("0"), Frame::Array(Vec::new())]),
        "stale cursor after FLUSHDB must terminate immediately"
    );
}

// ---------------------------------------------------------------------------
// Durability-boundary regressions (adaptive group commit, DESIGN.md §13)
// ---------------------------------------------------------------------------

/// WAIT whose batch ticket times out while parked reports the replica count
/// actually achieved (Redis semantics) — not the blanket ambiguous-commit
/// error the staged mutations inherit.
#[test]
fn wait_timeout_reports_achieved_count_not_error() {
    let shard = Shard::bootstrap(
        0,
        ShardConfig {
            commit_timeout: Duration::from_millis(150),
            ..ShardConfig::fast()
        },
        Arc::new(ObjectStore::new()),
        Arc::new(ClusterBus::new()),
        Arc::new(NodeIdGen::new()),
        vec![(0, 16383)],
        0,
    );
    let primary = shard.wait_for_primary(T).unwrap();
    // Freeze the commit watermark: appends land but never reach quorum, so
    // the batch ticket must run into its 150ms deadline.
    shard.ctx().log.set_commits_suspended(true);

    let mut s = SessionState::new();
    let replies = primary.handle_batch(&mut s, &[cmd(["SET", "k", "v"]), cmd(["WAIT", "0", "50"])]);
    shard.ctx().log.set_commits_suspended(false);

    assert_eq!(replies.len(), 2);
    assert!(
        matches!(&replies[0], Frame::Error(e) if e.contains("CLUSTERDOWN")),
        "timed-out mutation must error, got {:?}",
        replies[0]
    );
    match &replies[1] {
        Frame::Integer(n) => assert!(*n >= 0, "achieved count cannot be negative"),
        other => panic!("WAIT on a timed-out ticket must report the achieved replica count as an integer, got {other:?}"),
    }
}

/// Racing resolutions of one ticket (flush leader inline vs completer vs
/// idle-promote) must release its in-flight window claim exactly once: a
/// double release would under-count the window and let backpressure open
/// early. Exercised directly by resolving the same ticket twice while a
/// second batch still holds its claim.
#[test]
fn double_ticket_resolution_releases_window_once() {
    use crate::pipeline::TicketOutcome;

    let shard = quiet_shard(0);
    let primary = shard.wait_for_primary(T).unwrap();
    // Stall the committer so both tickets stay in flight.
    shard.ctx().log.set_commits_suspended(true);

    let mut s1 = SessionState::new();
    let mut s2 = SessionState::new();
    let sb1 = primary.handle_batch_submit(&mut s1, &[cmd(["SET", "a", "1"])]);
    let sb2 = primary.handle_batch_submit(&mut s2, &[cmd(["SET", "b", "2"])]);
    let t1 = Arc::clone(sb1.ticket_ref().expect("write batch must carry a ticket"));
    assert!(sb2.ticket_ref().is_some());

    let (entries_before, bytes_before) = primary.pipeline_inflight();
    assert!(
        entries_before >= 2,
        "both batches must hold window claims, got {entries_before}"
    );

    primary.resolve_ticket(&t1, TicketOutcome::Durable);
    let (entries_one, bytes_one) = primary.pipeline_inflight();
    assert_eq!(
        entries_one,
        entries_before - 1,
        "first resolve releases once"
    );
    assert!(bytes_one < bytes_before);

    // Second resolution of the SAME ticket: outcome dedupe already existed,
    // the regression was the window being returned again.
    primary.resolve_ticket(&t1, TicketOutcome::Durable);
    let (entries_two, bytes_two) = primary.pipeline_inflight();
    assert_eq!(
        (entries_two, bytes_two),
        (entries_one, bytes_one),
        "double resolution must not release the window claim twice"
    );

    // The first batch's replies come back durable; the second drains
    // normally once commits resume.
    let r1 = primary.wait_finish(sb1);
    assert_eq!(r1, vec![Frame::ok()]);
    shard.ctx().log.set_commits_suspended(false);
    let r2 = primary.wait_finish(sb2);
    assert_eq!(r2, vec![Frame::ok()]);
}

// ---- Incremental snapshots + parallel per-slot restore ----

/// Deterministic LCG so the randomized chain test reproduces exactly.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

/// Property (randomized, seeded): restoring full + N deltas yields a Db
/// byte-identical — canonical RDB dump, TTLs included — to folding the
/// entire untrimmed log from scratch at the same covered position. Both the
/// sequential and the parallel restore path must match.
#[test]
fn incremental_chain_restores_byte_identical_to_full_replay() {
    use crate::restore::{restore_replica_opts, ReplayTarget, RestoreOptions};
    let shard = new_shard(0);
    let primary = shard.wait_for_primary(T).unwrap();
    let mut session = SessionState::new();
    let offbox = OffboxSnapshotter::new(
        Arc::clone(shard.ctx()),
        memorydb_engine::EngineVersion::CURRENT,
        9_999,
    );
    let mut rng = Lcg(0x1234_5678);
    // Phases of randomized SET/DEL/EXPIRE; a snapshot after each phase
    // grows the chain (full, then deltas). No trimming, so the whole log
    // stays replayable for the ground-truth comparison.
    for _phase in 0..4 {
        for _ in 0..60 {
            let k = format!("k{}", rng.next() % 120);
            match rng.next() % 4 {
                0 => {
                    primary.handle(&mut session, &cmd(["DEL", &k]));
                }
                1 => {
                    let v = format!("v{}", rng.next());
                    primary.handle(&mut session, &cmd(["SET", &k, &v]));
                    // Far-future TTL: must survive the chain byte-for-byte.
                    primary.handle(&mut session, &cmd(["EXPIRE", &k, "100000"]));
                }
                _ => {
                    let v = format!("v{}", rng.next());
                    primary.handle(&mut session, &cmd(["SET", &k, &v]));
                }
            }
        }
        offbox.create_snapshot(false).expect("snapshot");
    }
    // The newest candidate must actually be a delta (the chain grew).
    let head = crate::manifest::list_candidates(&shard.ctx().store, &shard.ctx().name)
        .into_iter()
        .next()
        .unwrap();
    let crate::manifest::SnapshotCandidate::Manifest(head_covered) = head else {
        panic!("newest candidate must be a manifest");
    };
    let head = crate::manifest::SnapshotManifest::fetch_at(
        &shard.ctx().store,
        &shard.ctx().name,
        head_covered,
    )
    .unwrap();
    assert!(head.chain_len >= 1, "expected a delta chain, got a full");

    // Ground truth: fold the whole untrimmed log from scratch.
    let tail = shard.ctx().log.committed_tail();
    let mut engine = memorydb_engine::Engine::with_version(
        Role::Replica,
        memorydb_engine::EngineVersion::CURRENT,
    );
    let mut rs = crate::apply::ReplicaState::new();
    // Fold exactly up to `tail`: the primary keeps committing lease
    // renewals in the background, so the log may grow past it.
    'fold: loop {
        let batch = shard
            .ctx()
            .log
            .read_committed_from(77_001, rs.applied, 512)
            .unwrap();
        if batch.is_empty() {
            break;
        }
        for entry in &batch {
            if entry.id > tail {
                break 'fold;
            }
            crate::apply::apply_entry(
                &mut engine,
                &mut rs,
                entry,
                memorydb_engine::EngineVersion::CURRENT,
            )
            .unwrap();
        }
    }
    assert_eq!(rs.applied, tail);
    assert!(!engine.db.is_empty(), "ground truth must hold data");
    let want = memorydb_engine::rdb::dump(&engine.db);

    // Chain restore, sequential and parallel: byte-identical to the truth.
    for workers in [1usize, 4] {
        let rp = restore_replica_opts(
            &shard.ctx().store,
            &shard.ctx().log,
            88_000 + workers as u64,
            &shard.ctx().name,
            memorydb_engine::EngineVersion::CURRENT,
            ReplayTarget::Exactly(tail),
            RestoreOptions { workers },
        )
        .expect("chain restore");
        let seed = rp.seeded_from.expect("must seed from the chain");
        assert!(seed.from_manifest && seed.newest, "seed: {seed:?}");
        assert!(seed.chain_len >= 1);
        assert_eq!(rp.rs.applied, tail);
        assert_eq!(rp.rs.running_crc, rs.running_crc, "workers={workers}");
        assert_eq!(
            memorydb_engine::rdb::dump(&rp.engine.db),
            want,
            "workers={workers}: chain restore diverged from full replay"
        );
    }
}

/// Regression: a slot blocked mid-migration must survive a crash-restore
/// through the snapshot+trim cycle — the manifest carries `blocked_slots`,
/// and the cold restore re-seeds them even though the `MigrationPrepare`
/// record itself was trimmed away.
#[test]
fn blocked_slots_survive_snapshot_trim_and_cold_restore() {
    use crate::restore::{restore_replica, ReplayTarget};
    let shard = new_shard(0);
    let primary = shard.wait_for_primary(T).unwrap();
    let mut session = SessionState::new();
    for i in 0..30 {
        primary.handle(&mut session, &cmd(["SET", &format!("k{i}"), "v"]));
    }
    let slot = memorydb_engine::key_hash_slot(b"k0");
    primary
        .commit_record(&crate::record::Record::MigrationPrepare { slot, target: 1 })
        .unwrap();
    let offbox = OffboxSnapshotter::new(
        Arc::clone(shard.ctx()),
        memorydb_engine::EngineVersion::CURRENT,
        9_999,
    );
    let (_, covered) = offbox.create_snapshot(true).unwrap();
    // The prepare record is inside the trimmed prefix: only the snapshot
    // can preserve the block now.
    assert!(shard.ctx().log.first_available() > memorydb_txlog::EntryId::ZERO.next());
    let image = crate::manifest::fetch_latest_image(&shard.ctx().store, &shard.ctx().name, 1)
        .unwrap()
        .expect("snapshot image");
    assert!(
        image.blocked_slots.contains(&slot),
        "manifest dropped the blocked slot"
    );
    let rp = restore_replica(
        &shard.ctx().store,
        &shard.ctx().log,
        90_001,
        &shard.ctx().name,
        memorydb_engine::EngineVersion::CURRENT,
        ReplayTarget::Tail,
    )
    .unwrap();
    assert!(rp.rs.applied >= covered);
    assert!(
        rp.rs.blocked_slots.contains(&slot),
        "blocked_slots dropped across crash-restore mid-migration"
    );
}

/// A corrupted delta manifest must not strand restore: the log is only ever
/// trimmed to the newest FULL snapshot, so restore falls back to that full
/// and replays the (still available) suffix to the tail.
#[test]
fn broken_delta_chain_falls_back_to_newest_full_plus_suffix() {
    use crate::restore::{restore_replica, ReplayTarget};
    let shard = new_shard(0);
    let primary = shard.wait_for_primary(T).unwrap();
    let mut session = SessionState::new();
    let offbox = OffboxSnapshotter::new(
        Arc::clone(shard.ctx()),
        memorydb_engine::EngineVersion::CURRENT,
        9_999,
    );
    for i in 0..30 {
        primary.handle(&mut session, &cmd(["SET", &format!("a{i}"), "1"]));
    }
    let (_, full_covered) = offbox.create_snapshot(true).unwrap();
    for i in 0..30 {
        primary.handle(&mut session, &cmd(["SET", &format!("b{i}"), "2"]));
    }
    let (delta_key, delta_covered) = offbox.create_snapshot(true).unwrap();
    assert!(delta_covered > full_covered);
    // Trim stayed at the full snapshot; the delta's prefix is replayable.
    assert!(shard.ctx().log.first_available() <= full_covered.next());
    for i in 0..10 {
        primary.handle(&mut session, &cmd(["SET", &format!("c{i}"), "3"]));
    }
    assert!(shard.ctx().store.corrupt_for_test(&delta_key));
    let rp = restore_replica(
        &shard.ctx().store,
        &shard.ctx().log,
        90_002,
        &shard.ctx().name,
        memorydb_engine::EngineVersion::CURRENT,
        ReplayTarget::Tail,
    )
    .expect("restore must fall back past the broken chain");
    let seed = rp.seeded_from.expect("must seed from the full snapshot");
    assert_eq!(seed.covered, full_covered);
    assert!(!seed.newest, "fallback seed must not count as newest");
    assert_eq!(rp.rs.applied, shard.ctx().log.committed_tail());
    assert_eq!(rp.engine.db.len(), 70);
}

/// Pre-manifest monolithic snapshot blobs must still seed a restore
/// (mixed-version fleets during the rollout of incremental snapshots).
#[test]
fn legacy_monolithic_snapshot_still_seeds_restore() {
    use crate::restore::{restore_replica, ReplayTarget};
    let shard = new_shard(0);
    let primary = shard.wait_for_primary(T).unwrap();
    let mut session = SessionState::new();
    for i in 0..25 {
        primary.handle(&mut session, &cmd(["SET", &format!("k{i}"), "v"]));
    }
    let snap = primary.capture_snapshot();
    snap.upload(&shard.ctx().store, &shard.ctx().name);
    let rp = restore_replica(
        &shard.ctx().store,
        &shard.ctx().log,
        91_000,
        &shard.ctx().name,
        memorydb_engine::EngineVersion::CURRENT,
        ReplayTarget::Tail,
    )
    .unwrap();
    let seed = rp.seeded_from.expect("must seed from the legacy blob");
    assert!(!seed.from_manifest);
    assert_eq!(seed.chain_len, 0);
    assert_eq!(rp.engine.db.len(), 25);
    assert_eq!(rp.rs.applied, shard.ctx().log.committed_tail());
}

/// Satellite: DBSIZE and RANDOMKEY are no longer all-stripe commands. On a
/// 16-stripe shard DBSIZE answers from one stripe's live count plus the
/// per-stripe key counters (refreshed on every guard release, so
/// sequential reads are exact), and RANDOMKEY locks one weighted-random
/// stripe. Both must agree with a 1-stripe shard folding the same stream.
#[test]
fn dbsize_and_randomkey_striped_match_unstriped() {
    let striped = striped_shard(16, 0);
    let unstriped = striped_shard(1, 0);
    let ps = striped.wait_for_primary(T).unwrap();
    let pu = unstriped.wait_for_primary(T).unwrap();
    let mut ss = SessionState::new();
    let mut su = SessionState::new();

    for i in 0..64i64 {
        let k = format!("k{i}");
        assert_eq!(ps.handle(&mut ss, &cmd(["SET", &k, "v"])), Frame::ok());
        assert_eq!(pu.handle(&mut su, &cmd(["SET", &k, "v"])), Frame::ok());
        // Exact at every step, not only at the end.
        assert_eq!(ps.handle(&mut ss, &cmd(["DBSIZE"])), Frame::Integer(i + 1));
        assert_eq!(pu.handle(&mut su, &cmd(["DBSIZE"])), Frame::Integer(i + 1));
    }

    // RANDOMKEY returns only live keys, and the weighted stripe pick must
    // reach a broad spread of them — a stuck stripe selector would
    // concentrate on one stripe's handful of keys.
    let mut seen = std::collections::HashSet::new();
    for _ in 0..512 {
        match ps.handle(&mut ss, &cmd(["RANDOMKEY"])) {
            Frame::Bulk(k) => {
                let k = String::from_utf8(k.to_vec()).unwrap();
                assert!(k.starts_with('k'), "RANDOMKEY invented key {k}");
                seen.insert(k);
            }
            other => panic!("RANDOMKEY on a non-empty db returned {other:?}"),
        }
    }
    assert!(
        seen.len() > 16,
        "RANDOMKEY visited only {} distinct keys in 512 draws",
        seen.len()
    );

    // Deletions keep the counters exact too.
    for i in 0..32 {
        let k = format!("k{i}");
        assert_eq!(ps.handle(&mut ss, &cmd(["DEL", &k])), Frame::Integer(1));
        assert_eq!(pu.handle(&mut su, &cmd(["DEL", &k])), Frame::Integer(1));
    }
    assert_eq!(ps.handle(&mut ss, &cmd(["DBSIZE"])), Frame::Integer(32));
    assert_eq!(pu.handle(&mut su, &cmd(["DBSIZE"])), Frame::Integer(32));

    // Empty database: DBSIZE 0 and RANDOMKEY Null on both.
    assert_eq!(ps.handle(&mut ss, &cmd(["FLUSHALL"])), Frame::ok());
    assert_eq!(ps.handle(&mut ss, &cmd(["DBSIZE"])), Frame::Integer(0));
    assert_eq!(ps.handle(&mut ss, &cmd(["RANDOMKEY"])), Frame::Null);
}
