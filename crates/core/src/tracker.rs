//! The client-blocking tracker (paper §3.2).
//!
//! After a mutation executes on the primary, its reply is withheld until the
//! transaction log acknowledges persistence; meanwhile the engine workloop
//! stays free to process other operations. Non-mutating operations execute
//! immediately but must consult this tracker: if any key in the response was
//! modified by a not-yet-persisted operation, the response is delayed until
//! that write commits. Hazards are detected at the key level.
//!
//! In this reproduction each client is a thread, so "withholding a reply"
//! is the client thread blocking on the returned [`Hazard`]; the tracker's
//! job is the bookkeeping: which log position each dirty key is waiting on.

use bytes::Bytes;
use memorydb_engine::DirtySet;
use memorydb_txlog::EntryId;
use std::collections::HashMap;

/// What a read must wait for before its reply may be released.
pub type Hazard = Option<EntryId>;

/// Per-shard tracker of unpersisted writes.
#[derive(Debug, Default)]
pub struct Tracker {
    /// Highest pending (unacked) log entry per dirty key.
    key_watermark: HashMap<Bytes, EntryId>,
    /// Watermark covering every key (set by FLUSHALL-class commands).
    global_watermark: EntryId,
    /// Everything at or below this has committed.
    committed: EntryId,
}

impl Tracker {
    /// Fresh tracker with nothing pending.
    pub fn new() -> Tracker {
        Tracker::default()
    }

    /// Registers a mutation staged at `entry` dirtying `dirty`.
    pub fn stage(&mut self, entry: EntryId, dirty: &DirtySet) {
        match dirty {
            DirtySet::None => {}
            DirtySet::Keys(keys) => {
                for k in keys {
                    let w = self.key_watermark.entry(k.clone()).or_insert(EntryId::ZERO);
                    if entry > *w {
                        *w = entry;
                    }
                }
            }
            DirtySet::All => {
                if entry > self.global_watermark {
                    self.global_watermark = entry;
                }
            }
        }
    }

    /// Records that the log has committed everything up to `upto`.
    pub fn advance_committed(&mut self, upto: EntryId) {
        if upto > self.committed {
            self.committed = upto;
            // GC: drop watermarks that are now satisfied.
            self.key_watermark.retain(|_, w| *w > upto);
            if self.global_watermark <= upto {
                self.global_watermark = EntryId::ZERO;
            }
        }
    }

    /// The hazard for a response touching `keys`: the log position the
    /// caller must wait on, or `None` when everything relevant is already
    /// persisted.
    pub fn hazard_for<'a>(&self, keys: impl IntoIterator<Item = &'a Bytes>) -> Hazard {
        let mut hazard = self.global_watermark;
        for k in keys {
            if let Some(w) = self.key_watermark.get(k) {
                if *w > hazard {
                    hazard = *w;
                }
            }
        }
        if hazard > self.committed {
            Some(hazard)
        } else {
            None
        }
    }

    /// Highest staged-but-uncommitted entry, if any (used when draining a
    /// shard, e.g. before slot ownership transfer).
    pub fn max_pending(&self) -> Hazard {
        let mut max = self.global_watermark;
        for w in self.key_watermark.values() {
            if *w > max {
                max = *w;
            }
        }
        if max > self.committed {
            Some(max)
        } else {
            None
        }
    }

    /// Number of keys with unpersisted writes (diagnostics).
    pub fn pending_keys(&self) -> usize {
        self.key_watermark.len()
    }

    /// Drops all pending state (demotion path: the node re-syncs from the
    /// log, so stale watermarks are meaningless).
    pub fn reset(&mut self) {
        self.key_watermark.clear();
        self.global_watermark = EntryId::ZERO;
        self.committed = EntryId::ZERO;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    fn keys(v: &[&str]) -> DirtySet {
        DirtySet::Keys(v.iter().map(|s| b(s)).collect())
    }

    #[test]
    fn no_hazard_when_nothing_pending() {
        let t = Tracker::new();
        assert_eq!(t.hazard_for([&b("k")]), None);
        assert_eq!(t.max_pending(), None);
    }

    #[test]
    fn read_of_dirty_key_is_hazardous() {
        let mut t = Tracker::new();
        t.stage(EntryId(5), &keys(&["a"]));
        assert_eq!(t.hazard_for([&b("a")]), Some(EntryId(5)));
        // Unrelated keys read freely (paper: hazards are key-level).
        assert_eq!(t.hazard_for([&b("b")]), None);
    }

    #[test]
    fn hazard_is_max_over_touched_keys() {
        let mut t = Tracker::new();
        t.stage(EntryId(3), &keys(&["a"]));
        t.stage(EntryId(7), &keys(&["b"]));
        assert_eq!(t.hazard_for([&b("a"), &b("b")]), Some(EntryId(7)));
    }

    #[test]
    fn commit_clears_hazards_in_order() {
        let mut t = Tracker::new();
        t.stage(EntryId(3), &keys(&["a"]));
        t.stage(EntryId(7), &keys(&["a"])); // newer write to same key
        assert_eq!(t.hazard_for([&b("a")]), Some(EntryId(7)));
        t.advance_committed(EntryId(3));
        // Still waiting on the newer write.
        assert_eq!(t.hazard_for([&b("a")]), Some(EntryId(7)));
        t.advance_committed(EntryId(7));
        assert_eq!(t.hazard_for([&b("a")]), None);
        assert_eq!(t.pending_keys(), 0);
    }

    #[test]
    fn global_watermark_covers_all_keys() {
        let mut t = Tracker::new();
        t.stage(EntryId(9), &DirtySet::All);
        assert_eq!(t.hazard_for([&b("anything")]), Some(EntryId(9)));
        assert_eq!(t.hazard_for(std::iter::empty::<&Bytes>()), Some(EntryId(9)));
        t.advance_committed(EntryId(9));
        assert_eq!(t.hazard_for([&b("anything")]), None);
    }

    #[test]
    fn advance_is_monotone() {
        let mut t = Tracker::new();
        t.stage(EntryId(5), &keys(&["a"]));
        t.advance_committed(EntryId(5));
        t.advance_committed(EntryId(2)); // stale ack, ignored
        assert_eq!(t.hazard_for([&b("a")]), None);
    }

    #[test]
    fn max_pending_and_reset() {
        let mut t = Tracker::new();
        t.stage(EntryId(4), &keys(&["a"]));
        t.stage(EntryId(6), &keys(&["b"]));
        assert_eq!(t.max_pending(), Some(EntryId(6)));
        t.reset();
        assert_eq!(t.max_pending(), None);
        assert_eq!(t.hazard_for([&b("a")]), None);
    }

    #[test]
    fn commits_already_satisfied_are_not_hazards() {
        let mut t = Tracker::new();
        t.advance_committed(EntryId(10));
        t.stage(EntryId(8), &keys(&["a"])); // staged below committed (replay)
        assert_eq!(t.hazard_for([&b("a")]), None);
    }
}
