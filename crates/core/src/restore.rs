//! Data restoration (paper §4.2.1).
//!
//! Restoring is local to the restoring replica: fetch the latest verified
//! snapshot from the object store, then replay the transaction log suffix —
//! never talking to healthy peers, so any number of replicas can restore in
//! parallel without a centralized bottleneck.

use crate::apply::{apply_entry, HaltReason, ReplicaState};
use crate::slotset::SlotSet;
use crate::snapshot::ShardSnapshot;
use memorydb_engine::exec::Role;
use memorydb_engine::{Engine, EngineVersion};
use memorydb_objectstore::ObjectStore;
use memorydb_txlog::{ClientId, EntryId, LogService, ReadError};
use std::time::Instant;

/// A fully restored replica image: engine + log-derived state, positioned
/// at `rs.applied`.
pub struct RestorePoint {
    /// The restored execution engine (in replica role).
    pub engine: Engine,
    /// Log-derived state at the restore position.
    pub rs: ReplicaState,
}

/// Errors during restoration.
#[derive(Debug)]
pub enum RestoreError {
    /// The snapshot blob failed integrity or structural checks.
    Snapshot(crate::snapshot::SnapshotError),
    /// The log suffix needed is unavailable (trimmed without a covering
    /// snapshot, or the client is partitioned).
    Log(ReadError),
    /// Replay halted (checksum mismatch / upgrade stall / broken effect).
    Halted(HaltReason),
}

impl std::fmt::Display for RestoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RestoreError::Snapshot(e) => write!(f, "restore failed on snapshot: {e}"),
            RestoreError::Log(e) => write!(f, "restore failed on log: {e}"),
            RestoreError::Halted(e) => write!(f, "restore halted: {e}"),
        }
    }
}

impl std::error::Error for RestoreError {}

/// How far to replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayTarget {
    /// Replay to whatever the committed tail is when replay catches up.
    Tail,
    /// Replay up to exactly this entry and stop — the off-box snapshotter's
    /// static data view (§4.2.2).
    Exactly(EntryId),
}

/// Restores a replica image for `shard_name` from the object store plus the
/// transaction log.
///
/// With `ReplayTarget::Tail` the returned state is caught up to the
/// committed tail at return time; the caller's replication loop continues
/// from there.
///
/// **Trim races.** An off-box snapshotter may publish a snapshot and trim
/// the log prefix *between* our snapshot fetch and a replay read, making the
/// suffix we were replaying unavailable mid-restore. The snapshotter's
/// ordering contract (put-before-trim, see [`crate::offbox`]) guarantees a
/// `Trimmed` error implies a newer snapshot covering at least the trim point
/// is already in the store — so the correct response is to start over from
/// that fresher snapshot, not to fail. Retries are bounded: each one
/// requires a whole snapshot+trim cycle to land inside our replay window, so
/// repeated losses indicate a trimming policy violation and surface as the
/// final `Trimmed` error rather than looping forever.
pub fn restore_replica(
    store: &ObjectStore,
    log: &LogService,
    client: ClientId,
    shard_name: &str,
    my_version: EngineVersion,
    target: ReplayTarget,
) -> Result<RestorePoint, RestoreError> {
    const MAX_TRIM_RETRIES: usize = 5;
    let mut attempt = 0;
    loop {
        match restore_replica_once(store, log, client, shard_name, my_version, target) {
            Err(RestoreError::Log(ReadError::Trimmed { .. })) if attempt < MAX_TRIM_RETRIES => {
                attempt += 1;
            }
            other => return other,
        }
    }
}

fn restore_replica_once(
    store: &ObjectStore,
    log: &LogService,
    client: ClientId,
    shard_name: &str,
    my_version: EngineVersion,
    target: ReplayTarget,
) -> Result<RestorePoint, RestoreError> {
    let mut engine = Engine::with_version(Role::Replica, my_version);
    let mut rs = ReplicaState::new();

    // Step 1: newest snapshot, if any (§4.2.1 "loads a recent point-in-time
    // snapshot").
    if let Some(snap) =
        ShardSnapshot::fetch_latest(store, shard_name).map_err(RestoreError::Snapshot)?
    {
        let db = snap.load_db().map_err(RestoreError::Snapshot)?;
        engine.db = db;
        rs.applied = snap.covered;
        rs.running_crc = snap.running_crc;
        rs.epoch = snap.epoch;
        rs.owned_slots = SlotSet::from_ranges(&snap.slot_ranges);
        rs.blocked_slots = snap.blocked_slots.iter().copied().collect();
    }

    // Step 2: replay the log suffix ("replays subsequent transactions").
    'replay: loop {
        let upper = match target {
            ReplayTarget::Tail => None,
            ReplayTarget::Exactly(id) => Some(id),
        };
        if let Some(limit) = upper {
            if rs.applied >= limit {
                break;
            }
        }
        let batch = log
            .read_committed_from(client, rs.applied, 512)
            .map_err(RestoreError::Log)?;
        if batch.is_empty() {
            match target {
                ReplayTarget::Tail => break,
                ReplayTarget::Exactly(limit) => {
                    // The target entry must commit eventually; wait for it.
                    let more = log
                        .wait_for_entries(
                            client,
                            rs.applied,
                            512,
                            std::time::Duration::from_millis(100),
                        )
                        .map_err(RestoreError::Log)?;
                    if more.is_empty() && rs.applied < limit {
                        continue;
                    }
                    if !apply_batch(&mut engine, &mut rs, &more, my_version, Some(limit))? {
                        break 'replay;
                    }
                    continue;
                }
            }
        }
        if !apply_batch(&mut engine, &mut rs, &batch, my_version, upper)? {
            break 'replay;
        }
    }
    // Restoration is replay of already-persisted data: nothing it "applied"
    // is a fresh leadership signal, so reset the election timer reference.
    rs.last_leadership_signal = Instant::now();
    Ok(RestorePoint { engine, rs })
}

/// Applies a batch. Returns `Ok(false)` when replay must stop because the
/// consumer upgrade-stalled (§7.1) — the node still boots, parked at its
/// last safely-applied position with `rs.halted` set. Corruption-class
/// halts remain hard errors.
fn apply_batch(
    engine: &mut Engine,
    rs: &mut ReplicaState,
    batch: &[memorydb_txlog::LogEntry],
    my_version: EngineVersion,
    upper: Option<EntryId>,
) -> Result<bool, RestoreError> {
    for entry in batch {
        if let Some(limit) = upper {
            if entry.id > limit {
                return Ok(true);
            }
        }
        match apply_entry(engine, rs, entry, my_version) {
            Ok(()) => {}
            Err(halt @ HaltReason::StalledUpgrade(_)) => {
                rs.halted = Some(halt);
                return Ok(false);
            }
            Err(halt) => return Err(RestoreError::Halted(halt)),
        }
    }
    Ok(true)
}
