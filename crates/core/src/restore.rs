//! Data restoration (paper §4.2.1).
//!
//! Restoring is local to the restoring replica: fetch the latest verified
//! snapshot image from the object store (a legacy single-blob snapshot or a
//! chunked incremental chain, see [`crate::manifest`]), then replay the
//! transaction log suffix — never talking to healthy peers, so any number
//! of replicas can restore in parallel without a centralized bottleneck.
//!
//! With [`RestoreOptions::workers`] > 1, restoration itself parallelizes:
//! chunk blobs are fetched/decoded on a worker pool, the seeded engine is
//! split into per-slot-range partitions, and log replay folds control state
//! sequentially while fanning the data work out per stripe — each stripe's
//! queue preserves log order, which is exactly the fold-order invariant the
//! striped serving path pins (see [`crate::stripes`]).

use crate::apply::{
    effect_slot, fold_entry_deferred, is_broadcast_effect, DeferredWork, HaltReason, ReplicaState,
};
use crate::manifest;
use crate::slotset::SlotSet;
use crate::stripes::stripe_of;
use memorydb_engine::exec::Role;
use memorydb_engine::{EffectCmd, Engine, EngineVersion};
use memorydb_objectstore::ObjectStore;
use memorydb_txlog::{ClientId, EntryId, LogService, ReadError};
use std::time::Instant;

/// Knobs for a restore run.
#[derive(Debug, Clone, Copy)]
pub struct RestoreOptions {
    /// Worker threads for chunk fetch/decode and partitioned replay.
    /// `0` = auto (one per available core), `1` = fully sequential.
    pub workers: usize,
}

impl Default for RestoreOptions {
    fn default() -> Self {
        RestoreOptions { workers: 1 }
    }
}

impl RestoreOptions {
    fn resolved_workers(&self) -> usize {
        match self.workers {
            0 => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            n => n,
        }
    }
}

/// Where the restored image was seeded from (None = empty store, replay
/// from the log head). The off-box snapshotter uses this to decide whether
/// an incremental snapshot may extend the chain it restored from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedInfo {
    /// Last log entry the seed image covered.
    pub covered: EntryId,
    /// Deltas above the full base (0 = full image).
    pub chain_len: u32,
    /// Covered position of the anchoring full snapshot.
    pub full_covered: EntryId,
    /// Whether the seed came from a chunked manifest chain (vs. a legacy
    /// single-blob snapshot).
    pub from_manifest: bool,
    /// Whether the seed was the newest candidate in the store. False when
    /// restore fell back past a broken/corrupt newer candidate — extending
    /// such a seed with a delta would fork the chain, so the snapshotter
    /// forces a full snapshot instead.
    pub newest: bool,
}

/// A fully restored replica image: engine + log-derived state, positioned
/// at `rs.applied`.
pub struct RestorePoint {
    /// The restored execution engine (in replica role).
    pub engine: Engine,
    /// Log-derived state at the restore position.
    pub rs: ReplicaState,
    /// Provenance of the snapshot seed, if any.
    pub seeded_from: Option<SeedInfo>,
}

/// Errors during restoration.
#[derive(Debug)]
pub enum RestoreError {
    /// The snapshot blob failed integrity or structural checks.
    Snapshot(crate::snapshot::SnapshotError),
    /// The log suffix needed is unavailable (trimmed without a covering
    /// snapshot, or the client is partitioned).
    Log(ReadError),
    /// Replay halted (checksum mismatch / upgrade stall / broken effect).
    Halted(HaltReason),
}

impl std::fmt::Display for RestoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RestoreError::Snapshot(e) => write!(f, "restore failed on snapshot: {e}"),
            RestoreError::Log(e) => write!(f, "restore failed on log: {e}"),
            RestoreError::Halted(e) => write!(f, "restore halted: {e}"),
        }
    }
}

impl std::error::Error for RestoreError {}

/// How far to replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayTarget {
    /// Replay to whatever the committed tail is when replay catches up.
    Tail,
    /// Replay up to exactly this entry and stop — the off-box snapshotter's
    /// static data view (§4.2.2).
    Exactly(EntryId),
}

/// Restores a replica image for `shard_name` from the object store plus the
/// transaction log, fully sequentially. See [`restore_replica_opts`].
pub fn restore_replica(
    store: &ObjectStore,
    log: &LogService,
    client: ClientId,
    shard_name: &str,
    my_version: EngineVersion,
    target: ReplayTarget,
) -> Result<RestorePoint, RestoreError> {
    restore_replica_opts(
        store,
        log,
        client,
        shard_name,
        my_version,
        target,
        RestoreOptions::default(),
    )
}

/// Restores a replica image for `shard_name` from the object store plus the
/// transaction log.
///
/// With `ReplayTarget::Tail` the returned state is caught up to the
/// committed tail at return time; the caller's replication loop continues
/// from there.
///
/// **Trim races.** An off-box snapshotter may publish a snapshot and trim
/// the log prefix *between* our snapshot fetch and a replay read, making the
/// suffix we were replaying unavailable mid-restore. The snapshotter's
/// ordering contract (put-before-trim, see [`crate::offbox`]) guarantees a
/// `Trimmed` error implies a newer snapshot covering at least the trim point
/// is already in the store — so the correct response is to start over from
/// that fresher snapshot, not to fail. The same bound covers a *broken
/// incremental chain*: the log is only ever trimmed to the newest **full**
/// snapshot's covered position, so when a delta manifest's chain no longer
/// resolves, the candidate walk in [`crate::manifest::fetch_latest_image`]
/// falls back to that full snapshot and the (untrimmed) suffix above it.
/// Retries are bounded: each one requires a whole snapshot+trim cycle to
/// land inside our replay window, so repeated losses indicate a trimming
/// policy violation and surface as the final `Trimmed` error rather than
/// looping forever.
#[allow(clippy::too_many_arguments)]
pub fn restore_replica_opts(
    store: &ObjectStore,
    log: &LogService,
    client: ClientId,
    shard_name: &str,
    my_version: EngineVersion,
    target: ReplayTarget,
    opts: RestoreOptions,
) -> Result<RestorePoint, RestoreError> {
    const MAX_TRIM_RETRIES: usize = 5;
    let workers = opts.resolved_workers();
    let mut attempt = 0;
    loop {
        match restore_replica_once(store, log, client, shard_name, my_version, target, workers) {
            Err(RestoreError::Log(ReadError::Trimmed { .. })) if attempt < MAX_TRIM_RETRIES => {
                attempt += 1;
            }
            other => return other,
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn restore_replica_once(
    store: &ObjectStore,
    log: &LogService,
    client: ClientId,
    shard_name: &str,
    my_version: EngineVersion,
    target: ReplayTarget,
    workers: usize,
) -> Result<RestorePoint, RestoreError> {
    let mut engine = Engine::with_version(Role::Replica, my_version);
    let mut rs = ReplicaState::new();
    let mut seeded_from = None;

    // Step 1: newest restorable snapshot image, if any (§4.2.1 "loads a
    // recent point-in-time snapshot"). Handles both legacy single-blob
    // snapshots and chunked incremental chains; a corrupt newest candidate
    // degrades to the next older restorable one.
    if let Some(image) =
        manifest::fetch_latest_image(store, shard_name, workers).map_err(RestoreError::Snapshot)?
    {
        seeded_from = Some(SeedInfo {
            covered: image.covered,
            chain_len: image.chain_len,
            full_covered: image.full_covered,
            from_manifest: image.from_manifest,
            newest: image.newest,
        });
        engine.db = image.db;
        rs.applied = image.covered;
        rs.running_crc = image.running_crc;
        rs.epoch = image.epoch;
        rs.owned_slots = SlotSet::from_ranges(&image.slot_ranges);
        rs.blocked_slots = image.blocked_slots.iter().copied().collect();
    }

    // Step 2: replay the log suffix ("replays subsequent transactions").
    // With workers > 1 the engine is split into per-slot-range partitions;
    // each batch folds control state sequentially and drains the deferred
    // data work per partition concurrently.
    let k = workers.max(1);
    let mut parts = if k > 1 {
        engine.split_striped(k, |slot| stripe_of(slot, k))
    } else {
        vec![engine]
    };
    'replay: loop {
        let upper = match target {
            ReplayTarget::Tail => None,
            ReplayTarget::Exactly(id) => Some(id),
        };
        if let Some(limit) = upper {
            if rs.applied >= limit {
                break;
            }
        }
        let batch = log
            .read_committed_from(client, rs.applied, 512)
            .map_err(RestoreError::Log)?;
        if batch.is_empty() {
            match target {
                ReplayTarget::Tail => break,
                ReplayTarget::Exactly(limit) => {
                    // The target entry must commit eventually; wait for it.
                    let more = log
                        .wait_for_entries(
                            client,
                            rs.applied,
                            512,
                            std::time::Duration::from_millis(100),
                        )
                        .map_err(RestoreError::Log)?;
                    if more.is_empty() && rs.applied < limit {
                        continue;
                    }
                    if !apply_batch_partitioned(
                        &mut parts,
                        &mut rs,
                        &more,
                        my_version,
                        Some(limit),
                    )? {
                        break 'replay;
                    }
                    continue;
                }
            }
        }
        if !apply_batch_partitioned(&mut parts, &mut rs, &batch, my_version, upper)? {
            break 'replay;
        }
    }
    // Restoration is replay of already-persisted data: nothing it "applied"
    // is a fresh leadership signal, so reset the election timer reference.
    rs.last_leadership_signal = Instant::now();

    // Merge the partitions back into one engine: the slot partitioning is
    // disjoint, so absorbing moves each key exactly once.
    let mut parts_it = parts.into_iter();
    let Some(mut engine) = parts_it.next() else {
        return Err(RestoreError::Halted(HaltReason::EffectFailed(
            "restore produced no engine partitions".into(),
        )));
    };
    for p in parts_it {
        engine.db.absorb(p.db);
    }
    Ok(RestorePoint {
        engine,
        rs,
        seeded_from,
    })
}

/// One unit of deferred per-partition work, in log order within its queue.
enum StripeTask {
    Effect(EffectCmd),
    DeleteSlot(u16),
}

/// Applies a batch against the partitioned engines. Control state folds
/// sequentially (checksums, probes, leadership, ownership must see exact
/// log order); the data work each entry defers is queued per partition and
/// drained concurrently afterwards — per-partition queue order equals log
/// order, so the fold-order invariant holds within every partition.
///
/// Returns `Ok(false)` when replay must stop because the consumer
/// upgrade-stalled (§7.1) — the node still boots, parked at its last
/// safely-applied position with `rs.halted` set; work deferred by entries
/// before the stall is still drained. Corruption-class halts remain hard
/// errors and discard the whole restore attempt.
fn apply_batch_partitioned(
    parts: &mut [Engine],
    rs: &mut ReplicaState,
    batch: &[memorydb_txlog::LogEntry],
    my_version: EngineVersion,
    upper: Option<EntryId>,
) -> Result<bool, RestoreError> {
    let k = parts.len();
    let mut queues: Vec<Vec<StripeTask>> = (0..k).map(|_| Vec::new()).collect();
    let mut keep_going = true;
    let mut hard_halt = None;
    for entry in batch {
        if let Some(limit) = upper {
            if entry.id > limit {
                break;
            }
        }
        match fold_entry_deferred(rs, entry, my_version) {
            Ok(DeferredWork::None) => {}
            Ok(DeferredWork::Effects(effects)) => {
                for eff in effects {
                    enqueue_effect(&mut queues, eff);
                }
            }
            Ok(DeferredWork::DeleteSlot(slot)) => {
                if let Some(q) = queues.get_mut(stripe_of(slot, k)) {
                    q.push(StripeTask::DeleteSlot(slot));
                }
            }
            // `fold_entry_deferred` has already recorded the halt in
            // `rs.halted` and left `rs.applied` before the offending entry.
            Err(HaltReason::StalledUpgrade(_)) => {
                keep_going = false;
                break;
            }
            Err(halt) => {
                hard_halt = Some(halt);
                break;
            }
        }
    }
    // Entries folded before any stop are applied: drain their queued work.
    drain_queues(parts, queues).map_err(RestoreError::Halted)?;
    if let Some(halt) = hard_halt {
        return Err(RestoreError::Halted(halt));
    }
    Ok(keep_going)
}

/// Routes one effect to its partition queue, mirroring the routing of
/// `apply_effect_striped`: keyed effects go to the partition owning the
/// key's slot, broadcast effects (FLUSHALL and kin) to every partition,
/// other keyless effects to the first.
fn enqueue_effect(queues: &mut [Vec<StripeTask>], eff: EffectCmd) {
    let k = queues.len();
    if let Some(slot) = effect_slot(&eff) {
        if let Some(q) = queues.get_mut(stripe_of(slot, k)) {
            q.push(StripeTask::Effect(eff));
        }
    } else if is_broadcast_effect(&eff) {
        for q in queues.iter_mut() {
            q.push(StripeTask::Effect(eff.clone()));
        }
    } else if let Some(q) = queues.first_mut() {
        q.push(StripeTask::Effect(eff));
    }
}

/// Drains every partition's queue; one worker thread per non-empty queue
/// when there is more than one partition, inline otherwise.
fn drain_queues(parts: &mut [Engine], queues: Vec<Vec<StripeTask>>) -> Result<(), HaltReason> {
    if parts.len() <= 1 {
        for (part, queue) in parts.iter_mut().zip(queues) {
            run_queue(part, queue).map_err(HaltReason::EffectFailed)?;
        }
        return Ok(());
    }
    let results: Vec<Result<(), String>> = std::thread::scope(|s| {
        let handles: Vec<_> = parts
            .iter_mut()
            .zip(queues)
            .map(|(part, queue)| s.spawn(move || run_queue(part, queue)))
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|_| Err("restore worker panicked".into()))
            })
            .collect()
    });
    for r in results {
        r.map_err(HaltReason::EffectFailed)?;
    }
    Ok(())
}

fn run_queue(part: &mut Engine, queue: Vec<StripeTask>) -> Result<(), String> {
    for task in queue {
        match task {
            StripeTask::Effect(eff) => part.apply_effect(&eff)?,
            StripeTask::DeleteSlot(slot) => {
                part.db.delete_slot(slot);
            }
        }
    }
    Ok(())
}
