//! Shared log-application logic: how a consumer (replica, restoring node,
//! off-box snapshotter) folds transaction-log records into its state.
// Serving/apply path: panic-freedom is an enforced invariant (DESIGN.md §9;
// `cargo run -p memorydb-analysis`). Keep clippy aligned with the analyzer.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

use crate::record::{NodeId, Record};
use crate::slotset::SlotSet;
use bytes::Bytes;
use memorydb_engine::rdb::Crc64;
use memorydb_engine::{key_hash_slot, keys_for, DirtySet, EffectCmd, Engine, EngineVersion};
use memorydb_txlog::{EntryId, LogEntry};
use std::collections::HashSet;
use std::time::Instant;

/// Chains the running checksum over one more record payload (§7.2.1).
pub fn chain_crc(prev: u64, payload: &[u8]) -> u64 {
    let mut c = Crc64::new();
    c.update(&prev.to_le_bytes());
    c.update(payload);
    c.digest()
}

/// Why a consumer stopped applying the log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HaltReason {
    /// The stream was produced by a newer engine than this consumer runs
    /// (upgrade protection, §7.1). Carries the producer's version.
    StalledUpgrade(EngineVersion),
    /// A checksum probe did not match the locally recomputed running
    /// checksum — the log prefix and local state have diverged.
    ChecksumMismatch {
        /// Value carried in the probe.
        expected: u64,
        /// Value recomputed locally.
        actual: u64,
    },
    /// An effect failed to apply (deterministic replay broke).
    EffectFailed(String),
}

impl std::fmt::Display for HaltReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HaltReason::StalledUpgrade(v) => {
                write!(
                    f,
                    "stream produced by newer engine {v}; consumption stopped"
                )
            }
            HaltReason::ChecksumMismatch { expected, actual } => {
                write!(
                    f,
                    "running checksum mismatch: log says {expected:#x}, local {actual:#x}"
                )
            }
            HaltReason::EffectFailed(e) => write!(f, "effect application failed: {e}"),
        }
    }
}

/// The log-derived state every consumer tracks alongside its engine.
#[derive(Debug, Clone)]
pub struct ReplicaState {
    /// Last log entry applied (or, on a primary, appended).
    pub applied: EntryId,
    /// Running checksum through `applied`.
    pub running_crc: u64,
    /// Current leadership epoch.
    pub epoch: u64,
    /// Current leader, as learned from the log.
    pub leader: Option<NodeId>,
    /// Slots this shard owns.
    pub owned_slots: SlotSet,
    /// Slots whose writes are blocked mid-ownership-transfer (§5.2).
    pub blocked_slots: HashSet<u16>,
    /// Lease duration the current leader operates under.
    pub observed_lease_ms: u64,
    /// Local time the last leadership signal (claim/renewal) was applied —
    /// the replica's backoff timer is measured from here (§4.1.3).
    pub last_leadership_signal: Instant,
    /// The current leader voluntarily released its lease (collaborative
    /// transfer, §5.2); observers may campaign without waiting out backoff.
    pub release_observed: bool,
    /// Set when the consumer must stop applying (upgrade/corruption).
    pub halted: Option<HaltReason>,
    /// Slots whose data changed since this state was last seeded from a
    /// snapshot (or since boot, when no snapshot was loaded). Maintained at
    /// fold time on primaries and at apply time on consumers; a restore that
    /// replays the log suffix on top of a snapshot therefore ends with
    /// exactly the slots dirtied *since that snapshot* — the delta the
    /// incremental off-box snapshotter captures (DESIGN.md §14).
    pub dirty_slots: SlotSet,
}

impl ReplicaState {
    /// Fresh state at the beginning of the log.
    pub fn new() -> ReplicaState {
        ReplicaState {
            applied: EntryId::ZERO,
            running_crc: 0,
            epoch: 0,
            leader: None,
            owned_slots: SlotSet::empty(),
            blocked_slots: HashSet::new(),
            observed_lease_ms: 0,
            last_leadership_signal: Instant::now(),
            release_observed: false,
            halted: None,
            dirty_slots: SlotSet::empty(),
        }
    }

    /// Folds an executed command's dirty-key set into the dirty-slot bitmap
    /// (primaries call this next to [`fold_appended_payload`]; consumers get
    /// the equivalent marking inside [`apply_entry_striped`]).
    pub fn mark_dirty(&mut self, dirty: &DirtySet) {
        match dirty {
            DirtySet::None => {}
            DirtySet::All => self.dirty_slots = SlotSet::full(),
            DirtySet::Keys(keys) => {
                for key in keys {
                    self.dirty_slots.insert(key_hash_slot(key));
                }
            }
        }
    }
}

impl Default for ReplicaState {
    fn default() -> Self {
        Self::new()
    }
}

/// Applies one committed log entry to `(engine, rs)` — the unstriped form,
/// equivalent to [`apply_entry_striped`] with a single stripe.
pub fn apply_entry(
    engine: &mut Engine,
    rs: &mut ReplicaState,
    entry: &LogEntry,
    my_version: EngineVersion,
) -> Result<(), HaltReason> {
    apply_entry_striped(&mut [engine], |_| 0, rs, entry, my_version)
}

/// The slot an effect touches, for routing and dirty-slot tracking: keyed
/// effects touch the slot of their first key (all of an effect's keys share
/// a slot — the primary enforced CROSSSLOT before logging, and effect
/// rewrites preserve the keys of the command they replace); keyless effects
/// touch no single slot.
pub(crate) fn effect_slot(eff: &EffectCmd) -> Option<u16> {
    keys_for(eff)
        .and_then(|keys| keys.into_iter().next())
        .map(|key| key_hash_slot(&key))
}

/// Whether a keyless effect applies to *every* stripe (`FLUSHALL`/`FLUSHDB`).
/// Any other keyless effect goes to stripe 0, matching the single-engine
/// behavior exactly when `n == 1`. Shared by the immediate striped apply and
/// the parallel-restore task router so both agree on broadcast semantics.
pub(crate) fn is_broadcast_effect(eff: &EffectCmd) -> bool {
    let name = eff
        .first()
        .map(|b| String::from_utf8_lossy(b).to_ascii_uppercase())
        .unwrap_or_default();
    name == "FLUSHALL" || name == "FLUSHDB"
}

/// Routes one effect to its owning stripe engine. Keyed effects go to the
/// stripe of their slot (see [`effect_slot`]); broadcast effects apply to
/// every stripe; remaining keyless effects go to stripe 0.
fn apply_effect_striped(
    engines: &mut [&mut Engine],
    stripe_of: &impl Fn(u16) -> usize,
    eff: &EffectCmd,
) -> Result<(), String> {
    if let Some(slot) = effect_slot(eff) {
        let idx = stripe_of(slot);
        return match engines.get_mut(idx) {
            Some(e) => e.apply_effect(eff),
            None => Err(format!("stripe index {idx} out of range")),
        };
    }
    if is_broadcast_effect(eff) {
        for e in engines.iter_mut() {
            e.apply_effect(eff)?;
        }
        return Ok(());
    }
    match engines.first_mut() {
        Some(e) => e.apply_effect(eff),
        None => Err("no stripe engines".into()),
    }
}

/// Data-changing work an entry defers to its owning stripe(s) after the
/// control fold. Produced by [`fold_entry_deferred`]; the immediate path
/// ([`apply_entry_striped`]) executes it on the spot, the parallel restore
/// queues it per stripe and drains the queues concurrently — per-stripe
/// queue order equals log order, the invariant striped replay pins.
pub(crate) enum DeferredWork {
    /// Nothing to run on an engine (pure control record).
    None,
    /// Version-checked effects, in log order.
    Effects(Vec<EffectCmd>),
    /// `MigrationDone`: the owning stripe deletes the slot's data (§5.2).
    DeleteSlot(u16),
}

/// Folds one committed entry's *control* state into `rs` — decode, upgrade
/// gate, leadership/epoch, checksum chain + probe verification, slot
/// ownership, dirty-slot tracking — and returns the data-changing work to
/// run against the engines. The single source of truth for log application:
/// both the immediate striped apply and the parallel restore build on it.
///
/// On `Err` the halt is recorded in `rs.halted` and `rs.applied` does not
/// advance. On `Ok` the checksum and position have already advanced; a
/// caller whose engine-side application then fails must either roll those
/// two fields back (the immediate path does) or discard the whole state
/// (restore does).
pub(crate) fn fold_entry_deferred(
    rs: &mut ReplicaState,
    entry: &LogEntry,
    my_version: EngineVersion,
) -> Result<DeferredWork, HaltReason> {
    debug_assert_eq!(entry.id, rs.applied.next(), "entries must apply in order");
    // Both record formats coexist in one log (restore compatibility): v2
    // length-prefixed frames with a per-record CRC, and the legacy tag
    // encoding from before the frame format. The frame check pins
    // corruption to the exact record — a CRC mismatch halts with the typed
    // frame error naming this entry, instead of a generic decode failure.
    let record = match Record::decode_any(&entry.payload) {
        Ok(record) => record,
        Err(e) => {
            let halt = HaltReason::EffectFailed(format!("record at {}: {e}", entry.id));
            rs.halted = Some(halt.clone());
            return Err(halt);
        }
    };
    let mut work = DeferredWork::None;
    match record {
        Record::Effects { version, effects } => {
            // Upgrade protection (§7.1): an older engine must not interpret
            // a stream produced by a newer one.
            if !my_version.can_consume_stream_from(version) {
                let halt = HaltReason::StalledUpgrade(version);
                rs.halted = Some(halt.clone());
                return Err(halt);
            }
            for eff in &effects {
                // Dirty-slot tracking: a keyed effect dirties its slot; a
                // keyless one (FLUSHALL and kin) can touch anything.
                match effect_slot(eff) {
                    Some(slot) => rs.dirty_slots.insert(slot),
                    None => rs.dirty_slots = SlotSet::full(),
                }
            }
            work = DeferredWork::Effects(effects);
        }
        Record::LeaderClaim {
            node,
            epoch,
            lease_ms,
        } => {
            rs.epoch = epoch;
            rs.leader = Some(node);
            rs.observed_lease_ms = lease_ms;
            rs.last_leadership_signal = Instant::now();
            rs.release_observed = false;
        }
        Record::LeaseRenewal {
            node,
            epoch,
            lease_ms,
        } => {
            rs.epoch = epoch.max(rs.epoch);
            rs.leader = Some(node);
            rs.observed_lease_ms = lease_ms;
            rs.last_leadership_signal = Instant::now();
            rs.release_observed = false;
        }
        Record::LeaseRelease { node, .. } => {
            if rs.leader == Some(node) {
                rs.release_observed = true;
            }
        }
        Record::ChecksumProbe { crc } => {
            // Verify, do NOT fold the probe into the checksum.
            if crc != rs.running_crc {
                let halt = HaltReason::ChecksumMismatch {
                    expected: crc,
                    actual: rs.running_crc,
                };
                rs.halted = Some(halt.clone());
                return Err(halt);
            }
            rs.applied = entry.id;
            return Ok(DeferredWork::None);
        }
        Record::MigrationPrepare { slot, .. } => {
            rs.blocked_slots.insert(slot);
        }
        Record::MigrationCommit { slot, .. } => {
            rs.owned_slots.insert(slot);
        }
        Record::MigrationDone { slot } => {
            rs.blocked_slots.remove(&slot);
            rs.owned_slots.remove(slot);
            // Deleting the transferred data (§5.2) is a data change: the
            // slot is dirty relative to any earlier snapshot.
            rs.dirty_slots.insert(slot);
            work = DeferredWork::DeleteSlot(slot);
        }
        Record::MigrationAbort { slot } => {
            rs.blocked_slots.remove(&slot);
        }
        Record::SlotOwnership { ranges } => {
            rs.owned_slots = SlotSet::from_ranges(&ranges);
        }
    }
    rs.running_crc = chain_crc(rs.running_crc, &entry.payload);
    rs.applied = entry.id;
    Ok(work)
}

/// Applies one committed log entry to a striped engine set and `rs`.
///
/// `engines` is every stripe in ascending order (a consumer holding
/// `EngineStripes::lock_all` passes its guards); `stripe_of` is the same
/// slot→stripe map the primary routed with, so replica replay lands every
/// effect on the stripe whose fold order the log position encodes.
///
/// Returns `Err` with the halt reason when consumption must stop; in that
/// case `rs.applied` does NOT advance past the offending entry and
/// `rs.halted` is set.
pub fn apply_entry_striped(
    engines: &mut [&mut Engine],
    stripe_of: impl Fn(u16) -> usize,
    rs: &mut ReplicaState,
    entry: &LogEntry,
    my_version: EngineVersion,
) -> Result<(), HaltReason> {
    let (prev_applied, prev_crc) = (rs.applied, rs.running_crc);
    match fold_entry_deferred(rs, entry, my_version)? {
        DeferredWork::None => {}
        DeferredWork::Effects(effects) => {
            for eff in &effects {
                if let Err(e) = apply_effect_striped(engines, &stripe_of, eff) {
                    // A halted entry is not applied: undo the position/
                    // checksum advance the fold made (dirty-slot marks may
                    // stay — over-approximation is safe).
                    rs.applied = prev_applied;
                    rs.running_crc = prev_crc;
                    let halt = HaltReason::EffectFailed(e);
                    rs.halted = Some(halt.clone());
                    return Err(halt);
                }
            }
        }
        DeferredWork::DeleteSlot(slot) => {
            // Only the stripe owning the slot holds any of its data.
            if let Some(e) = engines.get_mut(stripe_of(slot)) {
                e.db.delete_slot(slot);
            }
        }
    }
    Ok(())
}

/// Convenience used by primaries when *appending*: fold a payload into a
/// running checksum exactly as consumers will (probes excluded).
pub fn fold_appended_payload(rs: &mut ReplicaState, id: EntryId, payload: &Bytes, is_probe: bool) {
    if !is_probe {
        rs.running_crc = chain_crc(rs.running_crc, payload);
    }
    rs.applied = id;
}

#[cfg(test)]
mod tests {
    use super::*;
    use memorydb_engine::cmd;
    use memorydb_engine::exec::{Role, SessionState};

    fn entry(id: u64, rec: &Record) -> LogEntry {
        LogEntry {
            id: EntryId(id),
            payload: rec.encode(),
            chain_checksum: 0,
        }
    }

    #[test]
    fn effects_apply_and_advance() {
        let mut engine = Engine::new(Role::Replica);
        let mut rs = ReplicaState::new();
        let rec = Record::Effects {
            version: EngineVersion::CURRENT,
            effects: vec![cmd(["SET", "k", "v"])],
        };
        apply_entry(
            &mut engine,
            &mut rs,
            &entry(1, &rec),
            EngineVersion::CURRENT,
        )
        .unwrap();
        assert_eq!(rs.applied, EntryId(1));
        assert!(rs.running_crc != 0);
        let mut s = SessionState::new();
        assert_eq!(
            engine.execute(&mut s, &cmd(["GET", "k"])).reply,
            memorydb_engine::Frame::Bulk(Bytes::from_static(b"v"))
        );
    }

    #[test]
    fn newer_stream_halts_old_engine() {
        let mut engine = Engine::new(Role::Replica);
        let mut rs = ReplicaState::new();
        let rec = Record::Effects {
            version: EngineVersion::new(8, 0, 0),
            effects: vec![cmd(["SET", "k", "v"])],
        };
        let err = apply_entry(
            &mut engine,
            &mut rs,
            &entry(1, &rec),
            EngineVersion::CURRENT,
        )
        .unwrap_err();
        assert_eq!(err, HaltReason::StalledUpgrade(EngineVersion::new(8, 0, 0)));
        assert_eq!(rs.applied, EntryId::ZERO); // did not advance
        assert!(rs.halted.is_some());
        // A NEWER engine consumes an older stream fine.
        let mut rs2 = ReplicaState::new();
        apply_entry(
            &mut engine,
            &mut rs2,
            &entry(1, &rec),
            EngineVersion::new(8, 1, 0),
        )
        .unwrap();
    }

    #[test]
    fn checksum_probe_verifies() {
        let mut engine = Engine::new(Role::Replica);
        let mut rs = ReplicaState::new();
        let eff = Record::Effects {
            version: EngineVersion::CURRENT,
            effects: vec![cmd(["SET", "a", "1"])],
        };
        apply_entry(
            &mut engine,
            &mut rs,
            &entry(1, &eff),
            EngineVersion::CURRENT,
        )
        .unwrap();
        let good = Record::ChecksumProbe {
            crc: rs.running_crc,
        };
        apply_entry(
            &mut engine,
            &mut rs,
            &entry(2, &good),
            EngineVersion::CURRENT,
        )
        .unwrap();
        assert_eq!(rs.applied, EntryId(2));
        // A wrong probe halts consumption.
        let bad = Record::ChecksumProbe {
            crc: rs.running_crc ^ 1,
        };
        let err = apply_entry(
            &mut engine,
            &mut rs,
            &entry(3, &bad),
            EngineVersion::CURRENT,
        )
        .unwrap_err();
        assert!(matches!(err, HaltReason::ChecksumMismatch { .. }));
        assert_eq!(rs.applied, EntryId(2));
    }

    #[test]
    fn leadership_records_update_state() {
        let mut engine = Engine::new(Role::Replica);
        let mut rs = ReplicaState::new();
        let claim = Record::LeaderClaim {
            node: 7,
            epoch: 3,
            lease_ms: 500,
        };
        apply_entry(
            &mut engine,
            &mut rs,
            &entry(1, &claim),
            EngineVersion::CURRENT,
        )
        .unwrap();
        assert_eq!(rs.leader, Some(7));
        assert_eq!(rs.epoch, 3);
        assert_eq!(rs.observed_lease_ms, 500);
        let release = Record::LeaseRelease { node: 7, epoch: 3 };
        apply_entry(
            &mut engine,
            &mut rs,
            &entry(2, &release),
            EngineVersion::CURRENT,
        )
        .unwrap();
        assert!(rs.release_observed);
        // A renewal clears the release flag.
        let renew = Record::LeaseRenewal {
            node: 7,
            epoch: 3,
            lease_ms: 500,
        };
        apply_entry(
            &mut engine,
            &mut rs,
            &entry(3, &renew),
            EngineVersion::CURRENT,
        )
        .unwrap();
        assert!(!rs.release_observed);
    }

    #[test]
    fn migration_records_update_slots_and_delete_data() {
        let mut engine = Engine::new(Role::Replica);
        let mut rs = ReplicaState::new();
        let own = Record::SlotOwnership {
            ranges: vec![(0, 16383)],
        };
        apply_entry(
            &mut engine,
            &mut rs,
            &entry(1, &own),
            EngineVersion::CURRENT,
        )
        .unwrap();
        assert_eq!(rs.owned_slots.len(), 16384);

        // Put a key into some slot, then migrate that slot away.
        engine.apply_effect(&cmd(["SET", "foo", "v"])).unwrap();
        let slot = memorydb_engine::key_hash_slot(b"foo");
        let prep = Record::MigrationPrepare { slot, target: 9 };
        apply_entry(
            &mut engine,
            &mut rs,
            &entry(2, &prep),
            EngineVersion::CURRENT,
        )
        .unwrap();
        assert!(rs.blocked_slots.contains(&slot));
        let done = Record::MigrationDone { slot };
        apply_entry(
            &mut engine,
            &mut rs,
            &entry(3, &done),
            EngineVersion::CURRENT,
        )
        .unwrap();
        assert!(!rs.owned_slots.contains(slot));
        assert!(!rs.blocked_slots.contains(&slot));
        assert_eq!(engine.db.len(), 0, "transferred data deleted");

        // Receiving side.
        let commit = Record::MigrationCommit { slot, source: 1 };
        apply_entry(
            &mut engine,
            &mut rs,
            &entry(4, &commit),
            EngineVersion::CURRENT,
        )
        .unwrap();
        assert!(rs.owned_slots.contains(slot));

        // Abort path unblocks without disowning.
        let prep2 = Record::MigrationPrepare { slot, target: 9 };
        apply_entry(
            &mut engine,
            &mut rs,
            &entry(5, &prep2),
            EngineVersion::CURRENT,
        )
        .unwrap();
        let abort = Record::MigrationAbort { slot };
        apply_entry(
            &mut engine,
            &mut rs,
            &entry(6, &abort),
            EngineVersion::CURRENT,
        )
        .unwrap();
        assert!(rs.owned_slots.contains(slot));
        assert!(!rs.blocked_slots.contains(&slot));
    }

    #[test]
    fn primary_fold_matches_consumer_chain() {
        // The checksum a primary computes while appending must equal what a
        // consumer recomputes while applying.
        let mut engine = Engine::new(Role::Replica);
        let mut consumer = ReplicaState::new();
        let mut producer = ReplicaState::new();
        let recs = [
            Record::Effects {
                version: EngineVersion::CURRENT,
                effects: vec![cmd(["SET", "a", "1"])],
            },
            Record::LeaseRenewal {
                node: 1,
                epoch: 1,
                lease_ms: 100,
            },
            Record::Effects {
                version: EngineVersion::CURRENT,
                effects: vec![cmd(["DEL", "a"])],
            },
        ];
        for (i, rec) in recs.iter().enumerate() {
            let payload = rec.encode();
            fold_appended_payload(&mut producer, EntryId(i as u64 + 1), &payload, false);
            apply_entry(
                &mut engine,
                &mut consumer,
                &entry(i as u64 + 1, rec),
                EngineVersion::CURRENT,
            )
            .unwrap();
        }
        assert_eq!(producer.running_crc, consumer.running_crc);
        assert_eq!(producer.applied, consumer.applied);
    }

    /// Striped replay: keyed effects land on the owning stripe, keyless
    /// flushes broadcast, and the running checksum is identical to the
    /// unstriped fold (the checksum chains over payloads, not stripes).
    #[test]
    fn striped_apply_routes_effects_and_broadcasts_flush() {
        let route = |slot: u16| crate::stripes::stripe_of(slot, 4);
        let mut engines: Vec<Engine> = (0..4).map(|_| Engine::new(Role::Replica)).collect();
        let mut single = Engine::new(Role::Replica);
        let mut rs = ReplicaState::new();
        let mut rs_single = ReplicaState::new();
        let recs = [
            Record::Effects {
                version: EngineVersion::CURRENT,
                effects: vec![cmd(["SET", "foo", "1"])],
            },
            Record::Effects {
                version: EngineVersion::CURRENT,
                effects: vec![cmd(["SET", "bar", "2"])],
            },
        ];
        for (i, rec) in recs.iter().enumerate() {
            let mut refs: Vec<&mut Engine> = engines.iter_mut().collect();
            apply_entry_striped(
                &mut refs,
                route,
                &mut rs,
                &entry(i as u64 + 1, rec),
                EngineVersion::CURRENT,
            )
            .unwrap();
            apply_entry(
                &mut single,
                &mut rs_single,
                &entry(i as u64 + 1, rec),
                EngineVersion::CURRENT,
            )
            .unwrap();
        }
        assert_eq!(rs.running_crc, rs_single.running_crc);
        let foo_stripe = route(memorydb_engine::key_hash_slot(b"foo"));
        let bar_stripe = route(memorydb_engine::key_hash_slot(b"bar"));
        assert_ne!(foo_stripe, bar_stripe, "test keys must span stripes");
        assert_eq!(engines[foo_stripe].db.len(), 1);
        assert_eq!(engines[bar_stripe].db.len(), 1);
        let total: usize = engines.iter().map(|e| e.db.len()).sum();
        assert_eq!(total, 2, "each key lives on exactly one stripe");

        // FLUSHALL is keyless: it must clear every stripe.
        let flush = Record::Effects {
            version: EngineVersion::CURRENT,
            effects: vec![cmd(["FLUSHALL"])],
        };
        let mut refs: Vec<&mut Engine> = engines.iter_mut().collect();
        apply_entry_striped(
            &mut refs,
            route,
            &mut rs,
            &entry(3, &flush),
            EngineVersion::CURRENT,
        )
        .unwrap();
        assert!(engines.iter().all(|e| e.db.is_empty()));
    }

    /// MigrationDone on a striped consumer deletes slot data from the
    /// owning stripe only.
    #[test]
    fn striped_migration_done_deletes_from_owning_stripe() {
        let route = |slot: u16| crate::stripes::stripe_of(slot, 4);
        let mut engines: Vec<Engine> = (0..4).map(|_| Engine::new(Role::Replica)).collect();
        let mut rs = ReplicaState::new();
        let set = Record::Effects {
            version: EngineVersion::CURRENT,
            effects: vec![cmd(["SET", "foo", "v"])],
        };
        let mut refs: Vec<&mut Engine> = engines.iter_mut().collect();
        apply_entry_striped(
            &mut refs,
            route,
            &mut rs,
            &entry(1, &set),
            EngineVersion::CURRENT,
        )
        .unwrap();
        let slot = memorydb_engine::key_hash_slot(b"foo");
        let done = Record::MigrationDone { slot };
        let mut refs: Vec<&mut Engine> = engines.iter_mut().collect();
        apply_entry_striped(
            &mut refs,
            route,
            &mut rs,
            &entry(2, &done),
            EngineVersion::CURRENT,
        )
        .unwrap();
        let total: usize = engines.iter().map(|e| e.db.len()).sum();
        assert_eq!(total, 0, "migrated slot data deleted from its stripe");
    }

    /// Mixed-format replay (restore compatibility): a log whose prefix was
    /// written in the legacy tag encoding and whose suffix uses v2 frames
    /// must apply seamlessly, and the producer-side fold (which chains over
    /// the raw payload bytes, framed or not) must still match the consumer.
    #[test]
    fn mixed_legacy_and_framed_entries_apply_with_matching_checksums() {
        let mut engine = Engine::new(Role::Replica);
        let mut consumer = ReplicaState::new();
        let mut producer = ReplicaState::new();
        let recs = [
            Record::Effects {
                version: EngineVersion::CURRENT,
                effects: vec![cmd(["SET", "old", "1"])],
            },
            Record::LeaseRenewal {
                node: 1,
                epoch: 1,
                lease_ms: 100,
            },
            Record::Effects {
                version: EngineVersion::CURRENT,
                effects: vec![cmd(["SET", "new", "2"])],
            },
        ];
        for (i, rec) in recs.iter().enumerate() {
            // Legacy encoding for the prefix, framed for the suffix.
            let payload = if i < 1 {
                rec.encode()
            } else {
                rec.encode_framed()
            };
            fold_appended_payload(&mut producer, EntryId(i as u64 + 1), &payload, false);
            let e = LogEntry {
                id: EntryId(i as u64 + 1),
                payload,
                chain_checksum: 0,
            };
            apply_entry(&mut engine, &mut consumer, &e, EngineVersion::CURRENT).unwrap();
        }
        assert_eq!(producer.running_crc, consumer.running_crc);
        assert_eq!(consumer.applied, EntryId(3));
        let mut s = SessionState::new();
        assert_eq!(
            engine.execute(&mut s, &cmd(["GET", "new"])).reply,
            memorydb_engine::Frame::Bulk(Bytes::from_static(b"2"))
        );
    }

    /// A corrupted v2 frame (flipped body byte) halts with the typed CRC
    /// error naming the exact entry — not a generic decode failure.
    #[test]
    fn corrupted_frame_halts_with_crc_error_at_entry() {
        let mut engine = Engine::new(Role::Replica);
        let mut rs = ReplicaState::new();
        let mut raw = Record::Effects {
            version: EngineVersion::CURRENT,
            effects: vec![cmd(["SET", "k", "v"])],
        }
        .encode_framed()
        .to_vec();
        let last = raw.len() - 1;
        raw[last] ^= 0xFF;
        let bad = LogEntry {
            id: EntryId(1),
            payload: Bytes::from(raw),
            chain_checksum: 0,
        };
        let err = apply_entry(&mut engine, &mut rs, &bad, EngineVersion::CURRENT).unwrap_err();
        let HaltReason::EffectFailed(msg) = err else {
            panic!("expected EffectFailed, got {err:?}");
        };
        assert!(msg.contains("record at #1"), "names the entry: {msg}");
        assert!(msg.contains("crc mismatch"), "typed CRC error: {msg}");
        assert_eq!(rs.applied, EntryId::ZERO);
    }

    /// Panic-freedom regression (analyzer invariant 1): malformed or
    /// truncated log payloads — exactly what a corrupted or adversarial log
    /// stream would feed a replica — must halt consumption with a typed
    /// error, never panic the apply path.
    #[test]
    fn garbage_log_payloads_halt_without_panicking() {
        let payloads: [&[u8]; 5] = [
            b"",                       // empty
            b"\xff\xff\xff\xff",       // no known record tag
            b"\x00",                   // truncated header
            b"{\"not\":\"a record\"}", // wrong encoding entirely
            &[0u8; 64],                // zero padding
        ];
        for (i, raw) in payloads.iter().enumerate() {
            let mut engine = Engine::new(Role::Replica);
            let mut rs = ReplicaState::new();
            let bad = LogEntry {
                id: EntryId(1),
                payload: Bytes::copy_from_slice(raw),
                chain_checksum: 0,
            };
            let err = apply_entry(&mut engine, &mut rs, &bad, EngineVersion::CURRENT);
            assert!(
                matches!(err, Err(HaltReason::EffectFailed(_))),
                "payload #{i} must halt with a typed error, got {err:?}"
            );
            assert_eq!(rs.applied, EntryId::ZERO, "payload #{i} must not advance");
            assert!(rs.halted.is_some(), "payload #{i} must mark the halt");
        }
    }
}
