//! Atomic slot migration (resharding) between shards (paper §5.2).
//!
//! The transfer has two phases:
//!
//! 1. **Data movement** — conceptually a Redis replica sync limited to one
//!    slot: the source serializes every key in the slot (sent as `RESTORE`
//!    effects the target commits to its own transaction log, so the
//!    target's replicas converge too) while concurrent mutations of the
//!    slot are mirrored to the target in execution order.
//! 2. **Slot ownership transfer** — the source blocks new writes to the
//!    slot, drains in-flight writes to both logs, performs a data-integrity
//!    handshake, and then runs a 2-phase commit of durably committed
//!    messages (`MigrationPrepare` in the source log, `MigrationCommit` in
//!    the target log, `MigrationDone` in the source log). Ownership changes
//!    are therefore recoverable from the logs after any crash; cluster-bus
//!    propagation of the new routing is advisory only.
//!
//! Any failure before the prepare point simply abandons the transfer: the
//! source resumes writes and the target deletes the transferred data.

use crate::node::Node;
use crate::record::Record;
use crate::shard::Shard;
use bytes::Bytes;
use memorydb_engine::EffectCmd;
use std::sync::Arc;
use std::time::Duration;

/// Errors from a slot migration.
#[derive(Debug)]
pub enum MigrationError {
    /// Preconditions failed (no primary, wrong ownership...).
    Precondition(String),
    /// The data-movement or control-record path failed.
    Transfer(String),
    /// The integrity handshake failed even after repair.
    IntegrityMismatch {
        /// (key count, digest) on the source.
        source: (usize, u64),
        /// (key count, digest) on the target.
        target: (usize, u64),
    },
}

impl std::fmt::Display for MigrationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MigrationError::Precondition(e) => write!(f, "migration precondition failed: {e}"),
            MigrationError::Transfer(e) => write!(f, "migration transfer failed: {e}"),
            MigrationError::IntegrityMismatch { source, target } => write!(
                f,
                "integrity handshake failed: source {source:?} vs target {target:?}"
            ),
        }
    }
}

impl std::error::Error for MigrationError {}

/// Builds the `RESTORE` effect moving one serialized entry.
fn restore_effect(key: &Bytes, blob: &[u8]) -> EffectCmd {
    vec![
        Bytes::from_static(b"RESTORE"),
        key.clone(),
        Bytes::from_static(b"0"),
        Bytes::copy_from_slice(blob),
        Bytes::from_static(b"REPLACE"),
    ]
}

/// Ships the full current content of `slot` from `source` to `target`
/// (idempotent: `RESTORE ... REPLACE`), deleting target-side keys the
/// source no longer has. Returns how many keys were shipped.
fn ship_slot(source: &Arc<Node>, target: &Arc<Node>, slot: u16) -> Result<usize, MigrationError> {
    let entries = source.serialize_slot(slot);
    let shipped = entries.len();
    for chunk in entries.chunks(64) {
        let effects: Vec<EffectCmd> = chunk
            .iter()
            .map(|(k, blob)| restore_effect(k, blob))
            .collect();
        target
            .ingest_effects(&effects, true)
            .map_err(MigrationError::Transfer)?;
    }
    // Delete extras on the target (keys removed on the source mid-move).
    let source_keys: std::collections::HashSet<Bytes> = source
        .serialize_slot(slot)
        .into_iter()
        .map(|(k, _)| k)
        .collect();
    let target_keys = target.slot_keys(slot);
    let extras: Vec<EffectCmd> = target_keys
        .into_iter()
        .filter(|k| !source_keys.contains(k))
        .map(|k| vec![Bytes::from_static(b"DEL"), k])
        .collect();
    if !extras.is_empty() {
        target
            .ingest_effects(&extras, true)
            .map_err(MigrationError::Transfer)?;
    }
    Ok(shipped)
}

/// Migrates one slot from `source` to `target`. Blocks the slot's writes
/// only for the final handshake + 2PC (a few log round trips).
pub fn migrate_slot(source: &Shard, target: &Shard, slot: u16) -> Result<(), MigrationError> {
    let timeout = Duration::from_secs(10);
    let src = source
        .wait_for_primary(timeout)
        .ok_or_else(|| MigrationError::Precondition("source shard has no primary".into()))?;
    let dst = target
        .wait_for_primary(timeout)
        .ok_or_else(|| MigrationError::Precondition("target shard has no primary".into()))?;
    if !src.owns_slot(slot) {
        return Err(MigrationError::Precondition(format!(
            "source does not own slot {slot}"
        )));
    }
    if dst.owns_slot(slot) {
        return Err(MigrationError::Precondition(format!(
            "target already owns slot {slot}"
        )));
    }

    // ---- Phase 1: data movement with live mirroring -----------------------
    src.set_forward(slot, Some(Arc::clone(&dst)));
    let moved = (|| -> Result<(), MigrationError> {
        ship_slot(&src, &dst, slot)?;

        // ---- Phase 2: ownership transfer ----------------------------------
        // Block new writes and wait for in-progress writes to reach both
        // transaction logs.
        src.block_slot_local(slot, true);
        if let Some(pending) = src.max_pending_write() {
            if !src.ctx().log.wait_durable(pending, timeout) {
                return Err(MigrationError::Transfer(
                    "source writes did not drain".into(),
                ));
            }
        }
        // Final repair pass (covers effects the lenient mirror skipped),
        // then the data-integrity handshake.
        ship_slot(&src, &dst, slot)?;
        let s_digest = src.slot_digest(slot);
        let t_digest = dst.slot_digest(slot);
        if s_digest != t_digest {
            return Err(MigrationError::IntegrityMismatch {
                source: s_digest,
                target: t_digest,
            });
        }

        // 2PC of durably committed messages.
        src.commit_record(&Record::MigrationPrepare {
            slot,
            target: target.id,
        })
        .map_err(MigrationError::Transfer)?;
        dst.commit_record(&Record::MigrationCommit {
            slot,
            source: source.id,
        })
        .map_err(MigrationError::Transfer)?;
        src.commit_record(&Record::MigrationDone { slot })
            .map_err(MigrationError::Transfer)?;
        Ok(())
    })();

    src.set_forward(slot, None);
    match moved {
        Ok(()) => Ok(()),
        Err(e) => {
            // Abandon: resume writes on the source, delete transferred data
            // on the target (§5.2 "easily recovered from by simply
            // abandoning the transfer operation").
            let _ = src.commit_record(&Record::MigrationAbort { slot });
            src.block_slot_local(slot, false);
            let target_keys = dst.slot_keys(slot);
            if !target_keys.is_empty() && !dst.owns_slot(slot) {
                let dels: Vec<EffectCmd> = target_keys
                    .into_iter()
                    .map(|k| vec![Bytes::from_static(b"DEL"), k])
                    .collect();
                let _ = dst.ingest_effects(&dels, true);
            }
            Err(e)
        }
    }
}

/// Crash recovery for an interrupted migration (§5.2: "the progress of the
/// 2PC is recorded in the transaction log; after a primary node failure the
/// ownership transfer protocol can continue").
///
/// Consults both shards' durable state and drives the transfer to a
/// consistent conclusion: if the target durably committed ownership, the
/// source finishes with `MigrationDone`; otherwise the source aborts.
pub fn resume_migration(source: &Shard, target: &Shard, slot: u16) -> Result<(), MigrationError> {
    let timeout = Duration::from_secs(10);
    let src = source
        .wait_for_primary(timeout)
        .ok_or_else(|| MigrationError::Precondition("source shard has no primary".into()))?;
    let dst = target
        .wait_for_primary(timeout)
        .ok_or_else(|| MigrationError::Precondition("target shard has no primary".into()))?;

    let target_owns = dst.owns_slot(slot);
    let source_owns = src.owns_slot(slot);
    match (source_owns, target_owns) {
        (true, true) => {
            // Commit happened; Done did not. Finish the protocol.
            src.commit_record(&Record::MigrationDone { slot })
                .map_err(MigrationError::Transfer)?;
            Ok(())
        }
        (true, false) => {
            // Prepare without Commit: abort and clean the target.
            src.commit_record(&Record::MigrationAbort { slot })
                .map_err(MigrationError::Transfer)?;
            let dels: Vec<EffectCmd> = dst
                .slot_keys(slot)
                .into_iter()
                .map(|k| vec![Bytes::from_static(b"DEL"), k])
                .collect();
            if !dels.is_empty() {
                let _ = dst.ingest_effects(&dels, true);
            }
            Ok(())
        }
        (false, true) => Ok(()), // already complete
        (false, false) => Err(MigrationError::Precondition(format!(
            "slot {slot} owned by neither shard"
        ))),
    }
}
