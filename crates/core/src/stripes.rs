//! Slot-partitioned engine stripes: the striped replacement for the single
//! `Mutex<Engine>` serving lock.
//!
//! The paper's engine is single-threaded (§2); our node wrapped it in one
//! mutex, so multiplexed IO threads that had already parallelized read,
//! parse and reply flush still serialized on execution. This module splits
//! the keyspace into `N` contiguous slot-range stripes (CRC16 slot space,
//! like the cluster keyspace itself, §5.2), each guarded by its own
//! `parking_lot::Mutex<Engine>`:
//!
//! * A batch whose keys all hash into one stripe takes only that stripe's
//!   lock — disjoint-stripe batches execute concurrently.
//! * Cross-stripe work (EXEC spanning stripes, FLUSHALL, SCAN, DBSIZE,
//!   INFO, snapshot cuts, replica apply, rebuild/install) acquires **all**
//!   stripes in canonical ascending order through [`EngineStripes::lock_all`]
//!   — the only sanctioned multi-stripe acquisition path (the analyzer's
//!   stripe-order lint flags any other).
//!
//! Durability ordering is preserved per stripe: the stripe lock is held
//! through execution *and* the fold/stage step under the node state lock,
//! so within each stripe execution order equals fold order equals global
//! log order restricted to that stripe. Lock order is documented in
//! `pipeline.rs`: stripes (ascending) < node `st` < pipeline `q` < `cq`.

use memorydb_engine::exec::Role;
use memorydb_engine::{Db, Engine, EngineVersion, NUM_SLOTS};
use memorydb_metrics::{CounterId, Registry};
use parking_lot::{Mutex, MutexGuard};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Maps a CRC16 slot to its owning stripe: contiguous slot ranges, so a
/// stripe is itself a valid migration/snapshot unit. With `stripes == 1`
/// everything maps to stripe 0 (the unstriped degenerate case).
pub fn stripe_of(slot: u16, stripes: usize) -> usize {
    if stripes <= 1 {
        return 0;
    }
    (slot as usize * stripes) / (NUM_SLOTS as usize)
}

/// Inclusive slot range `[lo, hi]` owned by `stripe` under an `n`-way
/// partitioning — the inverse of [`stripe_of`]. Full-snapshot chunking and
/// the parallel restore partition the slot space with this so chunk
/// boundaries line up with stripe boundaries. Out-of-range `stripe` clamps
/// to the last stripe (total, like the other accessors here).
pub fn slot_range_of(stripe: usize, n: usize) -> (u16, u16) {
    if n <= 1 {
        return (0, NUM_SLOTS - 1);
    }
    let s = stripe.min(n - 1);
    let num = NUM_SLOTS as usize;
    // stripe_of(slot, n) == s  ⇔  ceil(s·num/n) <= slot < ceil((s+1)·num/n)
    let lo = (s * num).div_ceil(n);
    let hi = ((s + 1) * num).div_ceil(n) - 1;
    (lo as u16, (hi.min(num - 1)) as u16)
}

/// The striped engine: stripe 0 plus the remaining stripes. Structurally
/// non-empty (`first` is not behind a `Vec`), so accessors that need *some*
/// engine are total without a panic path.
pub struct EngineStripes {
    first: Mutex<Engine>,
    rest: Vec<Mutex<Engine>>,
    metrics: Arc<Registry>,
    /// Published per-stripe key counts: written (Release) by every guard
    /// drop from the live `db.len()`, read (Acquire) lock-free by `DBSIZE`
    /// and the `RANDOMKEY` stripe pick — neither needs the all-stripe
    /// acquisition any more. Bounded staleness: a stripe's count lags only
    /// while a batch on that stripe is mid-execution.
    counts: Vec<AtomicUsize>,
    /// SplitMix64 state for the count-weighted `RANDOMKEY` stripe pick —
    /// node-local scheduling randomness only, never replicated (the key
    /// choice within the stripe still uses the engine's seeded RNG).
    rand_state: AtomicU64,
}

impl EngineStripes {
    /// Partitions `engine` into `stripes` slot-range stripes (min 1). Each
    /// stripe keeps the role, version, clock, config and script cache.
    pub fn split(engine: Engine, stripes: usize, metrics: Arc<Registry>) -> EngineStripes {
        let n = stripes.max(1);
        if n == 1 {
            let counts = vec![AtomicUsize::new(engine.db.len())];
            return EngineStripes {
                first: Mutex::new(engine),
                rest: Vec::new(),
                metrics,
                counts,
                rand_state: AtomicU64::new(0x243F_6A88_85A3_08D3),
            };
        }
        let mut parts = engine
            .split_striped(n, |slot| stripe_of(slot, n))
            .into_iter();
        // `split_striped` returns exactly `n >= 1` engines; the fallback
        // keeps this constructor total.
        let first = parts.next().unwrap_or_else(|| Engine::new(Role::Replica));
        let mut counts = Vec::with_capacity(n);
        counts.push(AtomicUsize::new(first.db.len()));
        let rest: Vec<Mutex<Engine>> = parts
            .map(|e| {
                counts.push(AtomicUsize::new(e.db.len()));
                Mutex::new(e)
            })
            .collect();
        EngineStripes {
            first: Mutex::new(first),
            rest,
            metrics,
            counts,
            rand_state: AtomicU64::new(0x243F_6A88_85A3_08D3),
        }
    }

    /// Number of stripes (>= 1).
    pub fn count(&self) -> usize {
        1 + self.rest.len()
    }

    /// The stripe owning `slot` under this partitioning.
    pub fn stripe_for_slot(&self, slot: u16) -> usize {
        stripe_of(slot, self.count())
    }

    /// The engine version (identical across stripes by construction).
    pub fn engine_version(&self) -> EngineVersion {
        self.lock_counting(&self.first).version()
    }

    /// Re-partitions a freshly restored engine the same way this instance
    /// is partitioned, without touching the live stripes — the rebuild path
    /// splits outside the locks, then swaps under [`Self::lock_all`] via
    /// [`StripeGuards::install`].
    pub fn partition(&self, engine: Engine) -> Vec<Engine> {
        let n = self.count();
        if n == 1 {
            vec![engine]
        } else {
            engine.split_striped(n, move |slot| stripe_of(slot, n))
        }
    }

    /// One stripe-lock acquisition, counting contention: an opportunistic
    /// `try_lock` miss increments `stripe_conflicts` before blocking.
    fn lock_counting<'a>(&self, m: &'a Mutex<Engine>) -> MutexGuard<'a, Engine> {
        if let Some(g) = m.try_lock() {
            return g;
        }
        self.metrics.incr(CounterId::StripeConflicts);
        m.lock()
    }

    /// Locks a single stripe. An out-of-range index degrades to the safe
    /// superset [`Self::lock_all`] instead of panicking.
    pub fn lock_one(&self, idx: usize) -> StripeGuards<'_> {
        if idx == 0 {
            let all = self.rest.is_empty();
            return StripeGuards {
                first_idx: 0,
                first: self.lock_counting(&self.first),
                rest: Vec::new(),
                n: self.count(),
                all,
                counts: &self.counts,
            };
        }
        match self.rest.get(idx - 1) {
            Some(m) => StripeGuards {
                first_idx: idx,
                first: self.lock_counting(m),
                rest: Vec::new(),
                n: self.count(),
                all: false,
                counts: &self.counts,
            },
            None => self.lock_all(),
        }
    }

    /// Locks every stripe in canonical ascending order — the only sanctioned
    /// multi-stripe acquisition (deadlock freedom: all multi-stripe holders
    /// acquire in the same total order).
    pub fn lock_all(&self) -> StripeGuards<'_> {
        let first = self.lock_counting(&self.first);
        let rest = self.rest.iter().map(|m| self.lock_counting(m)).collect();
        StripeGuards {
            first_idx: 0,
            first,
            rest,
            n: self.count(),
            all: true,
            counts: &self.counts,
        }
    }

    /// Published key count of stripe `idx` (zero for an out-of-range index).
    /// Refreshed by every guard drop; see [`EngineStripes::counts`].
    pub fn key_count(&self, idx: usize) -> usize {
        self.counts
            .get(idx)
            .map_or(0, |c| c.load(Ordering::Acquire))
    }

    /// Sum of the published key counts over every stripe EXCEPT `held` —
    /// the lock-free half of a `DBSIZE` answered from one held stripe.
    pub fn keys_elsewhere(&self, held: usize) -> usize {
        self.counts
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != held)
            .map(|(_, c)| c.load(Ordering::Acquire))
            .sum()
    }

    /// Picks a stripe with probability proportional to its published key
    /// count (so a `RANDOMKEY` routed to that single stripe draws from the
    /// whole keyspace uniformly, matching the unstriped engine). An empty
    /// keyspace picks stripe 0, where the engine answers `Null` itself.
    pub fn weighted_random_stripe(&self) -> usize {
        if self.count() == 1 {
            return 0;
        }
        let per: Vec<usize> = self
            .counts
            .iter()
            .map(|c| c.load(Ordering::Acquire))
            .collect();
        let total: usize = per.iter().sum();
        if total == 0 {
            return 0;
        }
        // SplitMix64 over an atomic counter: cheap, lock-free, and good
        // enough for load-spreading (not replicated, not security-relevant).
        let mut z = self
            .rand_state
            .fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed)
            .wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let mut pick = (z % total as u64) as usize;
        for (i, len) in per.iter().enumerate() {
            if pick < *len {
                return i;
            }
            pick = pick.saturating_sub(*len);
        }
        0
    }
}

/// A set of held stripe locks: either one stripe (`first` only, `first_idx`
/// says which) or all of them (`first` is stripe 0, `rest` are 1..n, in
/// ascending order). Non-empty by construction.
pub struct StripeGuards<'a> {
    first_idx: usize,
    first: MutexGuard<'a, Engine>,
    rest: Vec<MutexGuard<'a, Engine>>,
    n: usize,
    all: bool,
    /// Backing [`EngineStripes::counts`]: the drop impl publishes each held
    /// stripe's final `db.len()` here, so the lock-free readers observe
    /// every batch's net key-count effect as soon as its locks release.
    counts: &'a [AtomicUsize],
}

impl Drop for StripeGuards<'_> {
    fn drop(&mut self) {
        if let Some(c) = self.counts.get(self.first_idx) {
            c.store(self.first.db.len(), Ordering::Release);
        }
        for (off, g) in self.rest.iter().enumerate() {
            if let Some(c) = self.counts.get(self.first_idx + 1 + off) {
                c.store(g.db.len(), Ordering::Release);
            }
        }
    }
}

impl StripeGuards<'_> {
    /// Whether every stripe is held (always true when `n == 1`).
    pub fn is_all(&self) -> bool {
        self.all
    }

    /// Total stripe count of the underlying [`EngineStripes`].
    pub fn stripe_count(&self) -> usize {
        self.n
    }

    /// Index of the (first) held stripe.
    pub fn held_idx(&self) -> usize {
        self.first_idx
    }

    /// Some held engine — for stripe-agnostic work (PING, config reads,
    /// version queries). Total: `first` always exists.
    pub fn any_engine(&mut self) -> &mut Engine {
        &mut self.first
    }

    /// The engine at stripe `idx`. Falls back to the first held stripe if
    /// `idx` is not held — callers route by the same `stripe_of` that
    /// built the guard set, so the fallback is unreachable in practice.
    pub fn engine_at(&mut self, idx: usize) -> &mut Engine {
        if idx == self.first_idx {
            return &mut self.first;
        }
        match idx
            .checked_sub(self.first_idx + 1)
            .and_then(|off| self.rest.get_mut(off))
        {
            Some(g) => g,
            None => &mut self.first,
        }
    }

    /// The engine owning `slot`.
    pub fn engine_for_slot(&mut self, slot: u16) -> &mut Engine {
        let idx = stripe_of(slot, self.n);
        self.engine_at(idx)
    }

    /// Every held engine, ascending stripe order. Boxed: the concrete
    /// iterator captures the outer guard lifetime, which edition-2021
    /// opaque types cannot express.
    pub fn each(&mut self) -> Box<dyn Iterator<Item = &mut Engine> + '_> {
        Box::new(std::iter::once(&mut *self.first).chain(self.rest.iter_mut().map(|g| &mut **g)))
    }

    /// Every held database, ascending stripe order (snapshot capture, INFO
    /// keyspace/memory sums).
    pub fn dbs(&self) -> Vec<&Db> {
        let mut v = Vec::with_capacity(1 + self.rest.len());
        v.push(&self.first.db);
        for g in &self.rest {
            v.push(&g.db);
        }
        v
    }

    /// Immutable view of the first held engine (version/config reads).
    pub fn first_ref(&self) -> &Engine {
        &self.first
    }

    /// Replaces the held engines with freshly partitioned `parts` (rebuild
    /// install under `lock_all`). Extra or missing parts are ignored —
    /// `EngineStripes::partition` always produces exactly `n`.
    pub fn install(&mut self, parts: Vec<Engine>) {
        let mut it = parts.into_iter();
        if let Some(p) = it.next() {
            *self.first = p;
        }
        for (g, p) in self.rest.iter_mut().zip(it) {
            **g = p;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memorydb_engine::{cmd, key_hash_slot, SessionState};

    fn registry() -> Arc<Registry> {
        Arc::new(Registry::new())
    }

    #[test]
    fn stripe_of_is_contiguous_and_covers_all_slots() {
        for &n in &[1usize, 2, 4, 16, 64] {
            let mut prev = 0usize;
            for slot in 0..NUM_SLOTS {
                let s = stripe_of(slot, n);
                assert!(s < n, "stripe {s} out of range for n={n}");
                assert!(s >= prev, "stripe map must be monotone");
                prev = s;
            }
            assert_eq!(stripe_of(0, n), 0);
            assert_eq!(stripe_of(NUM_SLOTS - 1, n), n - 1);
        }
    }

    #[test]
    fn slot_ranges_partition_the_slot_space() {
        for &n in &[1usize, 2, 3, 16, 64] {
            let mut next = 0u32;
            for s in 0..n {
                let (lo, hi) = slot_range_of(s, n);
                assert_eq!(lo as u32, next, "stripe {s}/{n} must abut the previous");
                assert!(hi >= lo);
                assert_eq!(stripe_of(lo, n), s, "lo of stripe {s}/{n}");
                assert_eq!(stripe_of(hi, n), s, "hi of stripe {s}/{n}");
                next = hi as u32 + 1;
            }
            assert_eq!(next, NUM_SLOTS as u32, "n={n} must cover every slot");
        }
        // Out-of-range stripe clamps instead of panicking.
        assert_eq!(slot_range_of(99, 4), slot_range_of(3, 4));
    }

    #[test]
    fn split_routes_keys_to_owning_stripe() {
        let mut engine = Engine::new(Role::Primary);
        let mut s = SessionState::new();
        for k in ["foo", "bar", "hello", "{tag}a", "{tag}b"] {
            engine.execute(&mut s, &cmd(["SET", k, k]));
        }
        let stripes = EngineStripes::split(engine, 16, registry());
        assert_eq!(stripes.count(), 16);
        for k in ["foo", "bar", "hello"] {
            let idx = stripes.stripe_for_slot(key_hash_slot(k.as_bytes()));
            let mut g = stripes.lock_one(idx);
            let mut s = SessionState::new();
            let reply = g
                .engine_for_slot(key_hash_slot(k.as_bytes()))
                .execute(&mut s, &cmd(["GET", k]));
            assert_eq!(
                reply.reply,
                memorydb_engine::Frame::Bulk(bytes::Bytes::copy_from_slice(k.as_bytes())),
                "key {k} must live on its own stripe"
            );
        }
        // Total key count is preserved across the partitioning.
        let g = stripes.lock_all();
        let total: usize = g.dbs().iter().map(|db| db.len()).sum();
        assert_eq!(total, 5);
    }

    #[test]
    fn single_stripe_is_degenerate_all() {
        let stripes = EngineStripes::split(Engine::new(Role::Primary), 1, registry());
        assert_eq!(stripes.count(), 1);
        let g = stripes.lock_one(0);
        assert!(g.is_all(), "n=1: one stripe IS all stripes");
    }

    #[test]
    fn out_of_range_lock_one_degrades_to_all() {
        let stripes = EngineStripes::split(Engine::new(Role::Primary), 4, registry());
        let g = stripes.lock_one(99);
        assert!(g.is_all());
        assert_eq!(g.stripe_count(), 4);
    }

    #[test]
    fn install_swaps_every_stripe() {
        let stripes = EngineStripes::split(Engine::new(Role::Primary), 4, registry());
        let mut fresh = Engine::new(Role::Primary);
        let mut s = SessionState::new();
        fresh.execute(&mut s, &cmd(["SET", "foo", "v"]));
        fresh.execute(&mut s, &cmd(["SET", "bar", "v"]));
        let parts = stripes.partition(fresh);
        assert_eq!(parts.len(), 4);
        let mut g = stripes.lock_all();
        g.install(parts);
        let total: usize = g.dbs().iter().map(|db| db.len()).sum();
        assert_eq!(total, 2);
    }

    #[test]
    fn conflicts_are_counted() {
        let reg = registry();
        let stripes = Arc::new(EngineStripes::split(
            Engine::new(Role::Primary),
            2,
            Arc::clone(&reg),
        ));
        let held = stripes.lock_one(0);
        let s2 = Arc::clone(&stripes);
        let t = std::thread::spawn(move || {
            let _g = s2.lock_one(0); // blocks until the holder drops
        });
        std::thread::sleep(std::time::Duration::from_millis(50));
        drop(held);
        t.join().unwrap();
        assert!(reg.counter(CounterId::StripeConflicts) >= 1);
    }
}
