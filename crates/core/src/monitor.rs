//! The monitoring service (paper §4.2, §5.1).
//!
//! A service external to the data nodes polls every node (the **external
//! view**) and combines that with the cluster-bus gossip (the **internal
//! view**) before declaring a failure — both views must agree, improving
//! detection accuracy. Recovery actions: replace dead nodes with fresh
//! replicas (which restore from snapshot + log), and schedule off-box
//! snapshots when freshness decays (§4.2.3).

use crate::offbox::OffboxSnapshotter;
use crate::scheduler::{FreshnessSample, SnapshotScheduler};
use crate::shard::Shard;
use memorydb_engine::EngineVersion;
use memorydb_metrics::GaugeId;
use memorydb_txlog::EntryId;
use std::sync::Arc;
use std::time::Duration;

/// Outcome of one monitoring pass over one shard.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct TickReport {
    /// Nodes detected dead and removed from membership.
    pub dead_nodes_replaced: usize,
    /// Whether an off-box snapshot was created this pass.
    pub snapshot_created: bool,
    /// Whether the configuration was alarmed as invalid (e.g. no primary
    /// and no electable replica).
    pub alarmed: bool,
}

/// The monitoring service. Drive it with [`MonitoringService::tick`] (tests,
/// benches) or [`MonitoringService::run_background`].
pub struct MonitoringService {
    shards: Vec<Arc<Shard>>,
    scheduler: SnapshotScheduler,
    /// How stale a bus heartbeat may be before the internal view suspects
    /// the node.
    pub gossip_staleness: Duration,
    /// Desired replica count to restore after failures.
    pub target_replicas: usize,
    offbox_seq: std::sync::atomic::AtomicU64,
}

impl MonitoringService {
    /// Creates a monitor over a set of shards.
    pub fn new(shards: Vec<Arc<Shard>>, target_replicas: usize) -> MonitoringService {
        MonitoringService {
            shards,
            scheduler: SnapshotScheduler::default(),
            gossip_staleness: Duration::from_secs(2),
            target_replicas,
            offbox_seq: std::sync::atomic::AtomicU64::new(1 << 32),
        }
    }

    /// Replaces the snapshot scheduler policy.
    pub fn with_scheduler(mut self, scheduler: SnapshotScheduler) -> MonitoringService {
        self.scheduler = scheduler;
        self
    }

    /// One monitoring pass over one shard: failure detection using both
    /// views, node replacement, and snapshot scheduling.
    pub fn tick_shard(&self, shard: &Shard) -> TickReport {
        let mut report = TickReport::default();

        // External view: direct liveness polls.
        let externally_dead: Vec<u64> = shard
            .ctx()
            .bus
            .members_of(shard.id)
            .iter()
            .map(|(id, _)| *id)
            .filter(|id| !shard.nodes().iter().any(|n| n.id == *id))
            .collect();
        let _ = externally_dead; // membership list already excludes dead nodes

        // Internal view: gossip staleness.
        let stale = shard.ctx().bus.stale_nodes(self.gossip_staleness);

        // A node is declared failed when the external poll finds it
        // unresponsive; gossip staleness corroborates. Here crash() flips
        // the external view directly, and its heartbeat goes stale shortly
        // after, so reap + replace.
        let reaped = shard.reap_dead();
        for id in &stale {
            shard.ctx().bus.remove(*id);
        }
        report.dead_nodes_replaced = reaped;
        let live = shard.nodes().len();
        let want = self.target_replicas + 1;
        for _ in live..want {
            shard.add_node();
        }

        // Invalid configuration alarm: replicas exist but no primary can
        // emerge (e.g. the log is unreachable).
        if shard.primary().is_none() && shard.nodes().is_empty() {
            report.alarmed = true;
        }

        // Snapshot freshness (§4.2.3): sample and schedule.
        if let Some(sample) = self.sample_freshness(shard) {
            // Publish the cluster-level health gauges into the primary's
            // registry so `INFO stats` has the monitor's view (§10).
            if let Some(primary) = shard.primary() {
                let m = primary.metrics();
                m.set_gauge(GaugeId::LeaseEpoch, primary.epoch() as i64);
                m.set_gauge(
                    GaugeId::SnapshotCoveredEntry,
                    sample.snapshot_covered.0 as i64,
                );
                let tail = sample.log_tail.0;
                let staleness = shard
                    .nodes()
                    .iter()
                    .filter(|n| n.id != primary.id)
                    .map(|n| tail.saturating_sub(n.applied().0))
                    .max()
                    .unwrap_or(0);
                m.set_gauge(GaugeId::ReplicaStalenessEntries, staleness as i64);
            }
            if self.scheduler.should_snapshot(&sample) {
                let worker = OffboxSnapshotter::new(
                    Arc::clone(shard.ctx()),
                    self.oldest_engine_version(shard),
                    self.offbox_seq
                        .fetch_add(1, std::sync::atomic::Ordering::Relaxed),
                );
                if worker.create_snapshot(true).is_ok() {
                    report.snapshot_created = true;
                }
            }
        }
        report
    }

    /// One pass over every shard.
    pub fn tick(&self) -> Vec<TickReport> {
        self.shards.iter().map(|s| self.tick_shard(s)).collect()
    }

    /// Samples the freshness inputs for a shard.
    pub fn sample_freshness(&self, shard: &Shard) -> Option<FreshnessSample> {
        let log = &shard.ctx().log;
        // Chain-aware: the newest candidate whose metadata verifies, whether
        // an incremental manifest chain or a legacy monolithic blob.
        let covered =
            crate::manifest::newest_restorable_covered(&shard.ctx().store, &shard.ctx().name)
                .unwrap_or(EntryId::ZERO);
        let tail = log.committed_tail();
        let suffix_entries = tail.0.saturating_sub(covered.0);
        // Approximate suffix bytes from entry count (records here are
        // small); benches with large values sample real byte counts.
        let suffix_bytes = (suffix_entries as usize) * 96;
        let dataset_bytes = shard.primary().map(|p| p.dataset_bytes()).unwrap_or(0);
        Some(FreshnessSample {
            snapshot_covered: covered,
            log_tail: tail,
            suffix_bytes,
            dataset_bytes,
        })
    }

    /// Oldest engine version among a shard's live nodes — the version
    /// off-box snapshots must be taken with during upgrades (§7.1). All
    /// nodes in this reproduction run `CURRENT` unless a test injects
    /// otherwise, so this consults the bus-advertised membership only.
    fn oldest_engine_version(&self, _shard: &Shard) -> EngineVersion {
        EngineVersion::CURRENT
    }

    /// Spawns a background loop calling [`MonitoringService::tick`] every
    /// `interval` until the returned guard is dropped.
    pub fn run_background(self: Arc<Self>, interval: Duration) -> MonitorGuard {
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let monitor = Arc::clone(&self);
        let handle = std::thread::Builder::new()
            .name("monitoring-service".into())
            .spawn(move || {
                while !stop2.load(std::sync::atomic::Ordering::Acquire) {
                    monitor.tick();
                    std::thread::sleep(interval);
                }
            })
            .expect("spawn monitor");
        MonitorGuard {
            stop,
            handle: Some(handle),
        }
    }
}

/// Stops the background monitor when dropped.
pub struct MonitorGuard {
    stop: Arc<std::sync::atomic::AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Drop for MonitorGuard {
    fn drop(&mut self) {
        // Release pairs with the monitor loop's Acquire: everything this
        // thread did before requesting the stop is visible to the last tick.
        self.stop.store(true, std::sync::atomic::Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}
