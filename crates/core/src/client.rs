//! A cluster-aware client: slot routing, MOVED redirects, and the READONLY
//! opt-in for replica reads (paper §2.1, §3.2).

use crate::cluster::Cluster;
use crate::node::Node;
use crate::shard::Shard;
use bytes::Bytes;
use memorydb_engine::{cmd, key_hash_slot, keys_for, Frame, SessionState};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// A client connection bundle to a cluster.
///
/// Like a real Redis Cluster client it caches the slot→shard map and
/// refreshes it on `MOVED`, retries `TRYAGAIN` (mid-migration), and waits
/// out `CLUSTERDOWN` (mid-failover) up to a bounded number of attempts.
pub struct ClusterClient {
    cluster: Arc<Cluster>,
    route: HashMap<u16, Arc<Shard>>,
    sessions: HashMap<u64, SessionState>,
    /// READONLY mode: route reads to replicas (sequential consistency from
    /// one replica; the client pins a replica per shard).
    pub read_from_replicas: bool,
    /// Max redirect/retry attempts before giving up.
    pub max_retries: usize,
    pinned_replica: HashMap<u32, u64>,
}

impl ClusterClient {
    /// Connects to a cluster.
    pub fn new(cluster: Arc<Cluster>) -> ClusterClient {
        ClusterClient {
            cluster,
            route: HashMap::new(),
            sessions: HashMap::new(),
            read_from_replicas: false,
            max_retries: 64,
            pinned_replica: HashMap::new(),
        }
    }

    /// Issues a command built from string parts.
    pub fn command<S: Into<Vec<u8>>>(&mut self, parts: impl IntoIterator<Item = S>) -> Frame {
        self.command_args(&cmd(parts))
    }

    /// Issues a raw command.
    pub fn command_args(&mut self, args: &[Bytes]) -> Frame {
        let slot = keys_for(args).and_then(|keys| keys.first().map(|k| key_hash_slot(k)));
        let is_write = args
            .first()
            .and_then(|name| {
                memorydb_engine::command_spec(&String::from_utf8_lossy(name).to_ascii_uppercase())
            })
            .is_some_and(|spec| spec.flags.write);

        let mut last_err = Frame::error("cluster unavailable");
        for _attempt in 0..self.max_retries {
            let Some(shard) = self.shard_for(slot) else {
                std::thread::sleep(Duration::from_millis(10));
                continue;
            };
            let Some(node) = self.pick_node(&shard, is_write) else {
                // No serving node on that shard (mid-failover, or the shard
                // was destroyed by scale-in): invalidate the route.
                if let Some(s) = slot {
                    self.route.remove(&s);
                }
                std::thread::sleep(Duration::from_millis(10));
                continue;
            };
            let session = self.sessions.entry(node.id).or_default();
            let reply = node.handle(session, args);
            match &reply {
                Frame::Error(msg) if msg.starts_with("MOVED") => {
                    // Stale routing: refresh and retry.
                    if let Some(s) = slot {
                        self.route.remove(&s);
                    }
                    last_err = reply;
                    continue;
                }
                Frame::Error(msg) if msg.starts_with("TRYAGAIN") => {
                    last_err = reply;
                    std::thread::sleep(Duration::from_millis(5));
                    continue;
                }
                Frame::Error(msg) if msg.starts_with("CLUSTERDOWN") => {
                    // The shard may be mid-failover — or destroyed (scale
                    // in). Drop the cached route so the retry re-resolves.
                    if let Some(s) = slot {
                        self.route.remove(&s);
                    }
                    last_err = reply;
                    std::thread::sleep(Duration::from_millis(10));
                    continue;
                }
                _ => return reply,
            }
        }
        last_err
    }

    fn shard_for(&mut self, slot: Option<u16>) -> Option<Arc<Shard>> {
        match slot {
            None => self.cluster.shards().into_iter().next(),
            Some(s) => {
                if let Some(shard) = self.route.get(&s) {
                    return Some(Arc::clone(shard));
                }
                let shard = self.cluster.shard_for_slot(s)?;
                self.route.insert(s, Arc::clone(&shard));
                Some(shard)
            }
        }
    }

    fn pick_node(&mut self, shard: &Arc<Shard>, is_write: bool) -> Option<Arc<Node>> {
        if !is_write && self.read_from_replicas {
            // Pin one replica per shard: reading from a single replica
            // yields sequential consistency (§3.2); load-balancing across
            // replicas would weaken that to eventual consistency.
            if let Some(id) = self.pinned_replica.get(&shard.id) {
                if let Some(node) = shard.replicas().into_iter().find(|n| n.id == *id) {
                    return Some(node);
                }
            }
            if let Some(replica) = shard.replicas().into_iter().next() {
                self.pinned_replica.insert(shard.id, replica.id);
                return Some(replica);
            }
            // No replica: fall through to the primary.
        }
        shard.wait_for_primary(Duration::from_millis(500))
    }
}
