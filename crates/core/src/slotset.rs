//! A compact bitset over the 16384 cluster slots.

use memorydb_engine::NUM_SLOTS;

/// Set of cluster slots (0..16384) as a 2 KiB bitset.
#[derive(Clone, PartialEq, Eq)]
pub struct SlotSet {
    bits: Box<[u64; 256]>,
}

impl std::fmt::Debug for SlotSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SlotSet({} slots)", self.len())
    }
}

impl Default for SlotSet {
    fn default() -> Self {
        Self::empty()
    }
}

impl SlotSet {
    /// No slots.
    pub fn empty() -> SlotSet {
        SlotSet {
            bits: Box::new([0; 256]),
        }
    }

    /// All 16384 slots.
    pub fn full() -> SlotSet {
        SlotSet {
            bits: Box::new([u64::MAX; 256]),
        }
    }

    /// Builds from inclusive ranges.
    pub fn from_ranges(ranges: &[(u16, u16)]) -> SlotSet {
        let mut s = SlotSet::empty();
        for &(lo, hi) in ranges {
            for slot in lo..=hi.min(NUM_SLOTS - 1) {
                s.insert(slot);
            }
        }
        s
    }

    /// Adds a slot.
    pub fn insert(&mut self, slot: u16) {
        self.bits[(slot / 64) as usize] |= 1 << (slot % 64);
    }

    /// Removes a slot.
    pub fn remove(&mut self, slot: u16) {
        self.bits[(slot / 64) as usize] &= !(1 << (slot % 64));
    }

    /// Membership test.
    pub fn contains(&self, slot: u16) -> bool {
        self.bits[(slot / 64) as usize] & (1 << (slot % 64)) != 0
    }

    /// Number of slots in the set.
    pub fn len(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True when no slots are owned.
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|w| *w == 0)
    }

    /// Iterates the owned slots in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u16> + '_ {
        (0..NUM_SLOTS).filter(|s| self.contains(*s))
    }

    /// Collapses to minimal inclusive ranges (for `SlotOwnership` records
    /// and `CLUSTER SLOTS` replies).
    pub fn to_ranges(&self) -> Vec<(u16, u16)> {
        let mut ranges = Vec::new();
        let mut start: Option<u16> = None;
        for slot in 0..NUM_SLOTS {
            match (self.contains(slot), start) {
                (true, None) => start = Some(slot),
                (false, Some(s)) => {
                    ranges.push((s, slot - 1));
                    start = None;
                }
                _ => {}
            }
        }
        if let Some(s) = start {
            ranges.push((s, NUM_SLOTS - 1));
        }
        ranges
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_full() {
        assert_eq!(SlotSet::empty().len(), 0);
        assert!(SlotSet::empty().is_empty());
        assert_eq!(SlotSet::full().len(), 16384);
        assert!(SlotSet::full().contains(0));
        assert!(SlotSet::full().contains(16383));
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = SlotSet::empty();
        s.insert(100);
        s.insert(16383);
        assert!(s.contains(100));
        assert!(s.contains(16383));
        assert!(!s.contains(99));
        assert_eq!(s.len(), 2);
        s.remove(100);
        assert!(!s.contains(100));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn ranges_roundtrip() {
        let ranges = vec![(0u16, 99u16), (200, 200), (16000, 16383)];
        let s = SlotSet::from_ranges(&ranges);
        assert_eq!(s.len(), 100 + 1 + 384);
        assert_eq!(s.to_ranges(), ranges);
        assert_eq!(SlotSet::full().to_ranges(), vec![(0, 16383)]);
        assert!(SlotSet::empty().to_ranges().is_empty());
    }

    #[test]
    fn iter_ascending() {
        let s = SlotSet::from_ranges(&[(5, 7), (3, 3)]);
        let v: Vec<u16> = s.iter().collect();
        assert_eq!(v, vec![3, 5, 6, 7]);
    }
}
