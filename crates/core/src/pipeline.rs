//! Per-node commit pipeline: decoupled durability with cross-connection
//! group commit (DESIGN.md §11).
//!
//! The serving path *stages* encoded mutations under the engine lock —
//! folding prospective entry ids into the replica state so execution order
//! equals log order — and enqueues a [`Ticket`], then releases the lock. A
//! dedicated committer thread drains the staged queue and coalesces runs
//! from many connections into single conditional `append_batch_after`
//! calls; a completer thread watches the commit watermark and resolves
//! tickets in order. Callers (the server's IO threads) park replies against
//! the ticket instead of blocking in `wait_durable`, so N connections no
//! longer pay N independent quorum round trips.
// Pipeline types sit on the serving path: same panic-freedom bar as node.rs.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

use bytes::Bytes;
use memorydb_txlog::EntryId;
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How a commit ticket resolved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TicketOutcome {
    /// Every staged entry (and hazard) is durable; staged replies may ship.
    Durable,
    /// The committer's append was fenced or the node is shutting down: the
    /// staged mutations were never logged and the engine state is poisoned.
    /// Every reply at-or-after the first staged mutation must error.
    Poisoned(String),
    /// The append was accepted but did not commit within the timeout. The
    /// entries are in the log and hazard-tracked; writes error (ambiguous)
    /// and reads settle against their individual hazards.
    TimedOut,
}

struct TicketInner {
    outcome: Option<TicketOutcome>,
    /// Fired exactly once at resolution — the server layer uses this to
    /// nudge the owning IO thread instead of polling.
    waker: Option<Box<dyn FnOnce() + Send>>,
    /// Set by [`Ticket::note_unlocked`]: the staging thread dropped the
    /// engine lock and re-stamped `enqueued_us`. Attribution spans are
    /// recorded by whichever of note_unlocked/resolve runs *second*, so
    /// they never overlap the `engine` span even when the commit pipeline
    /// outruns the staging thread's bookkeeping.
    unlocked: bool,
}

/// One staged batch's claim on the commit pipeline. Created under the node
/// state lock (so ticket order equals fold order), resolved by the
/// committer (poison) or completer (durable / timed out).
pub struct Ticket {
    /// Highest prospective entry id this ticket waits on (for hazard-only
    /// read tickets: the newest read hazard).
    pub(crate) last_id: EntryId,
    /// Staged payload count — in-flight window accounting.
    pub(crate) entries: usize,
    /// Staged payload bytes — in-flight window accounting.
    pub(crate) bytes: usize,
    /// Ticket must resolve by here (staged time + commit timeout).
    pub(crate) deadline: Instant,
    /// When the batch entered the pipeline (for e2e attribution).
    pub(crate) e2e_start_us: u64,
    /// Stamped at stage time, overwritten at engine-lock drop so the
    /// `commit_queue_wait` stage starts where the `engine` stage ends.
    pub(crate) enqueued_us: AtomicU64,
    /// Stamped by the committer when the append is accepted.
    pub(crate) appended_us: AtomicU64,
    /// Client batches record per-ticket stages (queue wait, durability,
    /// e2e); internal traffic (renewals, expiry, control records) does not.
    pub(crate) attributed: bool,
    /// Leadership epoch observed when the ticket was staged. The completer
    /// re-validates it at watermark advance: a ticket staged under a lease
    /// this node has since lost must not ack, even if its pipelined batch
    /// went on to commit (pipelined-quorum fencing).
    pub(crate) epoch: u64,
    /// Exactly-once guard for the ticket's in-flight window claim: the
    /// resolver that wins this CAS releases the window; any later resolver
    /// (idle-promote vs. flush leader vs. completer races) must not.
    released: AtomicBool,
    inner: Mutex<TicketInner>,
    cv: Condvar,
}

/// Constructor arguments for [`Ticket::new`], named to keep staging sites
/// readable as the field list grows.
pub(crate) struct TicketSpec {
    pub last_id: EntryId,
    pub entries: usize,
    pub bytes: usize,
    /// Leadership epoch at staging time (see [`Ticket::epoch`]).
    pub epoch: u64,
    pub deadline: Instant,
    pub e2e_start_us: u64,
    pub now_us: u64,
    pub attributed: bool,
}

impl Ticket {
    pub(crate) fn new(spec: TicketSpec) -> Arc<Ticket> {
        Arc::new(Ticket {
            last_id: spec.last_id,
            entries: spec.entries,
            bytes: spec.bytes,
            deadline: spec.deadline,
            e2e_start_us: spec.e2e_start_us,
            enqueued_us: AtomicU64::new(spec.now_us),
            appended_us: AtomicU64::new(0),
            attributed: spec.attributed,
            epoch: spec.epoch,
            released: AtomicBool::new(false),
            inner: Mutex::new(TicketInner {
                outcome: None,
                waker: None,
                unlocked: false,
            }),
            cv: Condvar::new(),
        })
    }

    /// Claims the right to release this ticket's window accounting. True
    /// exactly once across all resolvers — the idempotence guard behind
    /// `Node::resolve_ticket`.
    pub(crate) fn begin_release(&self) -> bool {
        self.released
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// The prospective id of this ticket's newest entry.
    pub fn last_id(&self) -> EntryId {
        self.last_id
    }

    /// Re-stamps the queue-entry time (called right after the engine lock
    /// drops so the `commit_queue_wait` span starts where `engine` ends).
    /// Returns true when the ticket already resolved — the pipeline outran
    /// this thread's bookkeeping, so the *caller* must record the
    /// attribution spans (resolve skipped them).
    pub(crate) fn note_unlocked(&self, now_us: u64) -> bool {
        // Release pairs with the flush thread's Acquire load: the stamp must
        // be visible before the flusher computes the realized window width.
        self.enqueued_us.store(now_us, Ordering::Release);
        let mut inner = self.inner.lock();
        inner.unlocked = true;
        inner.outcome.is_some()
    }

    /// The resolved outcome, if any (non-blocking).
    pub fn outcome(&self) -> Option<TicketOutcome> {
        self.inner.lock().outcome.clone()
    }

    /// Has this ticket resolved?
    pub fn is_resolved(&self) -> bool {
        self.inner.lock().outcome.is_some()
    }

    /// Blocks until resolution or `timeout`. `None` only if the resolver
    /// threads died (callers treat that as a timed-out commit).
    pub fn wait(&self, timeout: Duration) -> Option<TicketOutcome> {
        let deadline = Instant::now() + timeout;
        let mut inner = self.inner.lock();
        loop {
            if let Some(o) = &inner.outcome {
                return Some(o.clone());
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            self.cv.wait_for(&mut inner, deadline - now);
        }
    }

    /// Registers a completion callback; fires immediately when already
    /// resolved. At most one waker is retained.
    pub fn set_waker(&self, waker: Box<dyn FnOnce() + Send>) {
        let mut inner = self.inner.lock();
        if inner.outcome.is_some() {
            drop(inner);
            waker();
        } else {
            inner.waker = Some(waker);
        }
    }

    /// Resolves the ticket (first resolution wins) and fires the waker.
    /// `before_wake` runs once with the `note_unlocked` flag *before* any
    /// waiter or waker can observe the outcome — the resolver records its
    /// attribution spans there, so a released reply can never race ahead
    /// of the metrics it contributes to (when the flag is false the
    /// staging thread records instead, with the lock-drop stamp as the
    /// span end). Returns false on a double resolve (no-op).
    pub(crate) fn resolve(&self, outcome: TicketOutcome, before_wake: impl FnOnce(bool)) -> bool {
        let waker = {
            let mut inner = self.inner.lock();
            if inner.outcome.is_some() {
                return false;
            }
            inner.outcome = Some(outcome);
            before_wake(inner.unlocked);
            self.cv.notify_all();
            inner.waker.take()
        };
        if let Some(w) = waker {
            w();
        }
        true
    }
}

impl std::fmt::Debug for Ticket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ticket")
            .field("last_id", &self.last_id)
            .field("entries", &self.entries)
            .field("outcome", &self.outcome())
            .finish()
    }
}

/// One staged run: the encoded payloads of a batch plus its ticket.
/// Hazard-only read tickets carry no payloads but still ride the queue so
/// poison ordering covers them (their hazards reference prospective ids).
pub(crate) struct StagedRun {
    pub ticket: Arc<Ticket>,
    pub payloads: Vec<Bytes>,
    /// Prospective id of `payloads[0]` (unused when payloads is empty).
    pub first_id: EntryId,
    /// Stripe the run executed on (`None` for all-stripe batches and
    /// internal control/effects traffic). Per-stripe fold order is the
    /// striping durability contract: restricted to one stripe, staged runs
    /// must appear in the queue in ascending `first_id` order — the
    /// committer's flush asserts this before appending.
    pub stripe: Option<u16>,
}

struct StagedQueue {
    runs: VecDeque<StagedRun>,
    inflight_entries: usize,
    inflight_bytes: usize,
}

/// The shared queues between the serving path, the committer, and the
/// completer. Lock order: node engine stripes (ascending stripe index,
/// via `EngineStripes::lock_all`/`lock_one`) < node `st` < `q` < `cq`.
pub(crate) struct CommitPipeline {
    q: Mutex<StagedQueue>,
    /// Committer wakeup: staged work arrived.
    work_cv: Condvar,
    /// Submitter wakeup: in-flight window shrank.
    window_cv: Condvar,
    /// Appended-but-unresolved tickets awaiting the commit watermark.
    cq: Mutex<Vec<Arc<Ticket>>>,
    /// Completer wakeup: tickets entered the committed queue.
    done_cv: Condvar,
}

impl CommitPipeline {
    pub fn new() -> CommitPipeline {
        CommitPipeline {
            q: Mutex::new(StagedQueue {
                runs: VecDeque::new(),
                inflight_entries: 0,
                inflight_bytes: 0,
            }),
            work_cv: Condvar::new(),
            window_cv: Condvar::new(),
            cq: Mutex::new(Vec::new()),
            done_cv: Condvar::new(),
        }
    }

    /// Blocks while the in-flight window is full. Called with NO other
    /// pipeline/node locks held (the committer and completer need those to
    /// drain the window). Returns the µs spent waiting.
    pub fn wait_for_window(
        &self,
        max_entries: usize,
        max_bytes: usize,
        timeout: Duration,
    ) -> Duration {
        let start = Instant::now();
        let deadline = start + timeout;
        let mut q = self.q.lock();
        while q.inflight_entries >= max_entries || q.inflight_bytes >= max_bytes {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            self.window_cv.wait_for(&mut q, deadline - now);
        }
        start.elapsed()
    }

    /// Enqueues a staged run. MUST be called while holding the node state
    /// lock: queue order is fold order, which the fencing argument needs.
    pub fn stage(&self, run: StagedRun) {
        let mut q = self.q.lock();
        q.inflight_entries += run.ticket.entries;
        q.inflight_bytes += run.ticket.bytes;
        q.runs.push_back(run);
        self.work_cv.notify_one();
    }

    /// `stage` without the committer wakeup: the idle fast path enqueues
    /// its own run and flushes it inline on the submitting connection, so
    /// poking the committer thread awake would only add a futile wakeup.
    /// The committer's periodic sweep still collects the run if the inline
    /// flush loses the token race. Same locking contract as `stage`.
    pub fn stage_quiet(&self, run: StagedRun) {
        let mut q = self.q.lock();
        q.inflight_entries += run.ticket.entries;
        q.inflight_bytes += run.ticket.bytes;
        q.runs.push_back(run);
    }

    /// True when nothing is staged and no resolved-window claims are
    /// outstanding — the adaptive group-commit idle signal. Reads the
    /// in-flight ticket accounting; never sleeps.
    pub fn is_idle(&self) -> bool {
        let q = self.q.lock();
        q.runs.is_empty() && q.inflight_entries == 0 && q.inflight_bytes == 0
    }

    /// Current in-flight window occupancy (entries, bytes) — regression-test
    /// visibility into the exactly-once release accounting.
    #[cfg(test)]
    pub fn inflight(&self) -> (usize, usize) {
        let q = self.q.lock();
        (q.inflight_entries, q.inflight_bytes)
    }

    /// Committer: blocks up to `timeout` for staged work; returns whether
    /// the queue is non-empty. Draining is separate (`take_staged_now`)
    /// because it must happen under the node's flush token.
    pub fn wait_for_staged(&self, timeout: Duration) -> bool {
        let mut q = self.q.lock();
        if q.runs.is_empty() {
            self.work_cv.wait_for(&mut q, timeout);
        }
        !q.runs.is_empty()
    }

    /// Takes everything staged right now without waiting (poison drain).
    pub fn take_staged_now(&self) -> Vec<StagedRun> {
        self.q.lock().runs.drain(..).collect()
    }

    /// Moves appended tickets to the committed queue for the completer.
    pub fn push_committed(&self, tickets: Vec<Arc<Ticket>>) {
        if tickets.is_empty() {
            return;
        }
        self.cq.lock().extend(tickets);
        self.done_cv.notify_one();
    }

    /// Completer: the lowest unresolved ticket id and earliest deadline,
    /// or `None` when the committed queue is empty. Ticket ids are not
    /// monotone in queue order (hazard-only tickets wait on older ids), so
    /// both are scans.
    pub fn next_wait_target(&self) -> Option<(EntryId, Instant)> {
        let cq = self.cq.lock();
        let target = cq.iter().map(|t| t.last_id).min()?;
        let deadline = cq.iter().map(|t| t.deadline).min()?;
        Some((target, deadline))
    }

    /// Completer: blocks until tickets arrive in the committed queue.
    pub fn wait_for_committed_work(&self, timeout: Duration) {
        let mut cq = self.cq.lock();
        if cq.is_empty() {
            self.done_cv.wait_for(&mut cq, timeout);
        }
    }

    /// Completer: splits the committed queue into (durable-at-`tail`,
    /// past-deadline) tickets, leaving the rest queued.
    pub fn split_resolved(
        &self,
        tail: EntryId,
        now: Instant,
    ) -> (Vec<Arc<Ticket>>, Vec<Arc<Ticket>>) {
        let mut cq = self.cq.lock();
        let mut durable = Vec::new();
        let mut timed_out = Vec::new();
        cq.retain(|t| {
            if t.last_id <= tail {
                durable.push(Arc::clone(t));
                false
            } else if now >= t.deadline {
                timed_out.push(Arc::clone(t));
                false
            } else {
                true
            }
        });
        (durable, timed_out)
    }

    /// Returns a resolved ticket's window claim and wakes blocked
    /// submitters.
    pub fn release_window(&self, entries: usize, bytes: usize) {
        if entries == 0 && bytes == 0 {
            return;
        }
        let mut q = self.q.lock();
        q.inflight_entries = q.inflight_entries.saturating_sub(entries);
        q.inflight_bytes = q.inflight_bytes.saturating_sub(bytes);
        self.window_cv.notify_all();
    }

    /// Wakes both pipeline threads (shutdown nudge).
    pub fn notify_all(&self) {
        self.work_cv.notify_all();
        self.done_cv.notify_all();
        self.window_cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ticket(last: u64, entries: usize, bytes: usize) -> Arc<Ticket> {
        Ticket::new(TicketSpec {
            last_id: EntryId(last),
            entries,
            bytes,
            epoch: 1,
            deadline: Instant::now() + Duration::from_secs(5),
            e2e_start_us: 0,
            now_us: 0,
            attributed: true,
        })
    }

    #[test]
    fn ticket_resolution_is_sticky_and_wakes_waiters() {
        let t = ticket(3, 1, 10);
        assert!(!t.is_resolved());
        let t2 = Arc::clone(&t);
        let waiter = std::thread::spawn(move || t2.wait(Duration::from_secs(2)));
        t.resolve(TicketOutcome::Durable, |_| {});
        assert!(!t.resolve(TicketOutcome::TimedOut, |_| {})); // first resolution wins
        assert_eq!(waiter.join().ok().flatten(), Some(TicketOutcome::Durable));
        assert_eq!(t.outcome(), Some(TicketOutcome::Durable));
    }

    #[test]
    fn waker_fires_on_resolve_and_immediately_when_late() {
        let fired = Arc::new(AtomicU64::new(0));
        let t = ticket(1, 1, 1);
        let f = Arc::clone(&fired);
        t.set_waker(Box::new(move || {
            f.fetch_add(1, Ordering::SeqCst);
        }));
        t.resolve(TicketOutcome::Durable, |_| {});
        assert_eq!(fired.load(Ordering::SeqCst), 1);
        // Registering after resolution fires right away.
        let f = Arc::clone(&fired);
        t.set_waker(Box::new(move || {
            f.fetch_add(1, Ordering::SeqCst);
        }));
        assert_eq!(fired.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn window_blocks_until_released() {
        let p = CommitPipeline::new();
        let t = ticket(1, 4, 100);
        p.stage(StagedRun {
            ticket: Arc::clone(&t),
            payloads: Vec::new(),
            first_id: EntryId(1),
            stripe: None,
        });
        // Window of 4 entries is now full; the wait should consume most of
        // its timeout.
        let waited = p.wait_for_window(4, 1 << 20, Duration::from_millis(40));
        assert!(waited >= Duration::from_millis(30));
        p.release_window(t.entries, t.bytes);
        let waited = p.wait_for_window(4, 1 << 20, Duration::from_millis(40));
        assert!(waited < Duration::from_millis(30));
    }

    #[test]
    fn begin_release_wins_exactly_once() {
        let t = ticket(1, 2, 20);
        assert!(t.begin_release());
        assert!(!t.begin_release());
        assert!(!t.begin_release());
    }

    #[test]
    fn idle_signal_tracks_staging_and_release() {
        let p = CommitPipeline::new();
        assert!(p.is_idle());
        let t = ticket(1, 2, 20);
        p.stage_quiet(StagedRun {
            ticket: Arc::clone(&t),
            payloads: Vec::new(),
            first_id: EntryId(1),
            stripe: None,
        });
        assert!(!p.is_idle());
        assert_eq!(p.inflight(), (2, 20));
        let _drained = p.take_staged_now();
        // Window claim survives the drain until the ticket resolves.
        assert!(!p.is_idle());
        p.release_window(t.entries, t.bytes);
        assert!(p.is_idle());
        assert_eq!(p.inflight(), (0, 0));
    }

    #[test]
    fn split_resolved_handles_non_monotone_ids() {
        let p = CommitPipeline::new();
        let write = ticket(7, 3, 30);
        let hazard = ticket(5, 0, 0);
        p.push_committed(vec![Arc::clone(&write), Arc::clone(&hazard)]);
        let (target, _) = p.next_wait_target().expect("queued");
        assert_eq!(target, EntryId(5));
        let (durable, timed_out) = p.split_resolved(EntryId(6), Instant::now());
        assert_eq!(durable.len(), 1);
        assert_eq!(durable[0].last_id, EntryId(5));
        assert!(timed_out.is_empty());
        let (durable, _) = p.split_resolved(EntryId(7), Instant::now());
        assert_eq!(durable.len(), 1);
        assert_eq!(durable[0].last_id, EntryId(7));
        assert!(p.next_wait_target().is_none());
    }
}
