//! # memorydb-core — the MemoryDB database (the paper's contribution)
//!
//! A fast, durable, memory-first database built by **decoupling durability
//! from the in-memory execution engine** (paper §3): a Redis-compatible
//! engine (`memorydb-engine`) executes commands; its deterministic effect
//! stream is intercepted and appended to a multi-AZ durable transaction log
//! (`memorydb-txlog`); replies are withheld until the log acknowledges
//! persistence. Replicas consume the committed log. Leader election,
//! fencing, and leases are built purely on the log's conditional-append API
//! (§4.1) — no cluster quorum is needed for liveness.
//!
//! Module map (paper section → module):
//!
//! | Paper | Module |
//! |---|---|
//! | §3.1 decoupled durability, effect interception | [`node`], [`record`] |
//! | §3.2 client-blocking tracker, key-level hazards | [`tracker`], [`node`] |
//! | §3.2 commit pipeline, cross-connection group commit | [`pipeline`], [`node`] |
//! | §4.1 leader election, leases, fencing | [`node`] (election), [`record`] |
//! | §4.2 recovery, data restoration | [`restore`], [`manifest`], [`monitor`] |
//! | §4.2.2 off-box snapshotting (incremental) | [`offbox`], [`manifest`] |
//! | §4.2.3 snapshot scheduling | [`scheduler`] |
//! | §5.1 monitoring (external + internal views) | [`monitor`], [`bus`] |
//! | §5.2 scaling & slot migration (2PC) | [`migration`], [`cluster`], [`shard`] |
//! | §7.1 upgrade protection | [`apply`], `memorydb_engine::version` |
//! | §7.2.1 snapshot verification | [`offbox`], [`snapshot`], [`apply`] |

pub mod apply;
pub mod bus;
pub mod client;
pub mod cluster;
pub mod config;
pub mod manifest;
pub mod migration;
pub mod monitor;
pub mod node;
pub mod offbox;
pub mod pipeline;
pub mod record;
pub mod restore;
pub mod scheduler;
pub mod shard;
pub mod slotset;
pub mod snapshot;
pub mod stripes;
pub mod tracker;

pub use apply::{HaltReason, ReplicaState};
pub use bus::{BusRole, ClusterBus};
pub use client::ClusterClient;
pub use cluster::Cluster;
pub use config::ShardConfig;
pub use manifest::{ChunkRef, SnapshotImage, SnapshotManifest};
pub use migration::{migrate_slot, MigrationError};
pub use monitor::MonitoringService;
pub use node::{Node, ShardContext, SubmittedBatch};
pub use offbox::OffboxSnapshotter;
pub use pipeline::TicketOutcome;
pub use record::{NodeId, Record, ShardId};
pub use restore::{RestoreOptions, SeedInfo};
pub use scheduler::SnapshotScheduler;
pub use shard::{NodeIdGen, Shard};
pub use slotset::SlotSet;
pub use snapshot::ShardSnapshot;
pub use stripes::{slot_range_of, stripe_of, EngineStripes, StripeGuards};
pub use tracker::Tracker;

#[cfg(test)]
mod tests;
