//! Incremental snapshot manifests and chain resolution (DESIGN.md §14).
//!
//! A full-state `ShardSnapshot` blob scales its upload with the whole
//! dataset even when only a sliver changed between snapshot cycles. The
//! incremental format splits a snapshot into a small **manifest** plus
//! chunked per-slot-range **blobs**:
//!
//! * a **full** manifest (`chain_len == 0`, `base == EntryId::ZERO`) chunks
//!   the entire keyspace into contiguous slot ranges;
//! * a **delta** manifest chunks only the slots dirtied since its `base`
//!   snapshot (the dirty-slot bitmap the replica state maintains at fold
//!   time), and names that base by covered position;
//! * chains are bounded: after `snapshot_max_chain` deltas the off-box
//!   snapshotter forces a full snapshot, so restore cost and blast radius
//!   of a lost base stay bounded.
//!
//! Restoration resolves the chain newest → oldest down to its full base,
//! fetches/decodes the chunks (in parallel when the restore is configured
//! with workers), and merges them newest-first: once a newer manifest's
//! chunk has claimed a slot range, older data in those slots is ignored —
//! which is also how deletions propagate, since a dirtied-but-now-empty
//! slot still claims its range.
//!
//! Store layout (separate prefixes so the legacy `snapshots/` namespace and
//! its ordering stay intact):
//!
//! ```text
//! snapmeta/{shard}/{covered:020}                 manifest (publication point)
//! snapchunk/{shard}/{covered:020}/{lo:05}-{hi:05} chunk blob (RDB format)
//! ```
//!
//! Chunks are uploaded **before** their manifest: a manifest in the store
//! implies every chunk it references is fetchable (the same
//! publication-point discipline as put-before-trim, see [`crate::offbox`]).

use crate::slotset::SlotSet;
use crate::snapshot::{ShardSnapshot, SnapshotError};
use bytes::Bytes;
use memorydb_engine::rdb::{self, crc64};
use memorydb_engine::{key_hash_slot, Db, EngineVersion};
use memorydb_objectstore::ObjectStore;
use memorydb_txlog::EntryId;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};

const MAGIC: &[u8; 4] = b"MDSM";

/// Longest base-pointer walk we will follow before declaring a cycle. Far
/// above any real `snapshot_max_chain`; guards against a corrupted or
/// adversarial manifest graph.
const MAX_CHAIN_WALK: usize = 1024;

/// One chunk of a snapshot: the keys of slot range `lo..=hi` at the
/// manifest's covered position, stored as an RDB-format blob.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkRef {
    /// First slot of the inclusive range.
    pub lo: u16,
    /// Last slot of the inclusive range.
    pub hi: u16,
    /// Size of the stored blob in bytes.
    pub len: u64,
    /// CRC64 of the stored blob (verified before decode on restore).
    pub crc: u64,
}

/// A snapshot manifest: the metadata of one (full or delta) snapshot plus
/// references to its chunk blobs.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotManifest {
    /// Last transaction-log entry included in this image.
    pub covered: EntryId,
    /// Running checksum of the record payload sequence through `covered`.
    pub running_crc: u64,
    /// Engine version that produced the image (§7.1).
    pub engine_version: EngineVersion,
    /// Leadership epoch at snapshot time (diagnostics).
    pub epoch: u64,
    /// Slot ownership at snapshot time, as inclusive ranges.
    pub slot_ranges: Vec<(u16, u16)>,
    /// Slots blocked mid-migration at snapshot time.
    pub blocked_slots: Vec<u16>,
    /// Covered position of the snapshot this delta builds on;
    /// `EntryId::ZERO` for a full snapshot.
    pub base: EntryId,
    /// Number of deltas between this manifest and its full base (0 = full).
    pub chain_len: u32,
    /// The chunk blobs making up the image, ascending disjoint slot ranges.
    pub chunks: Vec<ChunkRef>,
}

impl SnapshotManifest {
    /// Whether this manifest is a chain-anchoring full snapshot.
    pub fn is_full(&self) -> bool {
        self.chain_len == 0
    }

    /// Object-store key of a shard's manifest at a covered position;
    /// zero-padded so lexicographic order equals log order.
    pub fn store_key(shard_name: &str, covered: EntryId) -> String {
        format!("snapmeta/{shard_name}/{:020}", covered.0)
    }

    /// Object-store key of one chunk blob of a manifest.
    pub fn chunk_key(shard_name: &str, covered: EntryId, lo: u16, hi: u16) -> String {
        format!("snapchunk/{shard_name}/{:020}/{lo:05}-{hi:05}", covered.0)
    }

    /// Serializes the manifest for the object store.
    pub fn encode(&self) -> Bytes {
        let mut out = Vec::with_capacity(64 + self.chunks.len() * 20);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&self.covered.0.to_le_bytes());
        out.extend_from_slice(&self.running_crc.to_le_bytes());
        out.extend_from_slice(&self.engine_version.major.to_le_bytes());
        out.extend_from_slice(&self.engine_version.minor.to_le_bytes());
        out.extend_from_slice(&self.engine_version.patch.to_le_bytes());
        out.extend_from_slice(&self.epoch.to_le_bytes());
        out.extend_from_slice(&self.base.0.to_le_bytes());
        out.extend_from_slice(&self.chain_len.to_le_bytes());
        out.extend_from_slice(&(self.slot_ranges.len() as u32).to_le_bytes());
        for (lo, hi) in &self.slot_ranges {
            out.extend_from_slice(&lo.to_le_bytes());
            out.extend_from_slice(&hi.to_le_bytes());
        }
        out.extend_from_slice(&(self.blocked_slots.len() as u32).to_le_bytes());
        for s in &self.blocked_slots {
            out.extend_from_slice(&s.to_le_bytes());
        }
        out.extend_from_slice(&(self.chunks.len() as u32).to_le_bytes());
        for c in &self.chunks {
            out.extend_from_slice(&c.lo.to_le_bytes());
            out.extend_from_slice(&c.hi.to_le_bytes());
            out.extend_from_slice(&c.len.to_le_bytes());
            out.extend_from_slice(&c.crc.to_le_bytes());
        }
        let crc = crc64(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        Bytes::from(out)
    }

    /// Parses and integrity-checks a blob produced by [`encode`]. Every
    /// declared count is validated against the remaining buffer before any
    /// allocation sized from it (the same discipline as
    /// [`ShardSnapshot::decode`]).
    ///
    /// [`encode`]: SnapshotManifest::encode
    pub fn decode(data: &[u8]) -> Result<SnapshotManifest, SnapshotError> {
        if data.len() < 4 + 8 + 8 + 6 + 8 + 8 + 4 + 4 + 4 + 4 + 8 {
            return Err(SnapshotError::Corrupt("manifest too short".into()));
        }
        let (payload, trailer) = data.split_at(data.len() - 8);
        let stored = u64::from_le_bytes(trailer.try_into().expect("8 bytes"));
        if crc64(payload) != stored {
            return Err(SnapshotError::Corrupt(
                "manifest envelope checksum mismatch".into(),
            ));
        }
        if &payload[..4] != MAGIC {
            return Err(SnapshotError::Corrupt("bad manifest magic".into()));
        }
        struct Cur<'a> {
            d: &'a [u8],
            p: usize,
        }
        impl<'a> Cur<'a> {
            fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
                let end = self
                    .p
                    .checked_add(n)
                    .ok_or_else(|| SnapshotError::Corrupt("length overflow".into()))?;
                let out = self
                    .d
                    .get(self.p..end)
                    .ok_or_else(|| SnapshotError::Corrupt("truncated manifest".into()))?;
                self.p = end;
                Ok(out)
            }
            fn remaining(&self) -> usize {
                self.d.len().saturating_sub(self.p)
            }
            fn u16(&mut self) -> Result<u16, SnapshotError> {
                Ok(u16::from_le_bytes(
                    self.take(2)?.try_into().expect("2 bytes"),
                ))
            }
            fn u32(&mut self) -> Result<u32, SnapshotError> {
                Ok(u32::from_le_bytes(
                    self.take(4)?.try_into().expect("4 bytes"),
                ))
            }
            fn u64(&mut self) -> Result<u64, SnapshotError> {
                Ok(u64::from_le_bytes(
                    self.take(8)?.try_into().expect("8 bytes"),
                ))
            }
        }
        let mut c = Cur { d: payload, p: 4 };
        let covered = EntryId(c.u64()?);
        let running_crc = c.u64()?;
        let engine_version = EngineVersion::new(c.u16()?, c.u16()?, c.u16()?);
        let epoch = c.u64()?;
        let base = EntryId(c.u64()?);
        let chain_len = c.u32()?;
        if (chain_len == 0) != (base == EntryId::ZERO) {
            return Err(SnapshotError::Corrupt(
                "chain_len/base disagree on full vs delta".into(),
            ));
        }
        let nranges = c.u32()? as usize;
        if nranges > 16384 || nranges.saturating_mul(4) > c.remaining() {
            return Err(SnapshotError::Corrupt("too many slot ranges".into()));
        }
        let mut slot_ranges = Vec::with_capacity(nranges);
        for _ in 0..nranges {
            let lo = c.u16()?;
            let hi = c.u16()?;
            slot_ranges.push((lo, hi));
        }
        let nblocked = c.u32()? as usize;
        if nblocked > 16384 || nblocked.saturating_mul(2) > c.remaining() {
            return Err(SnapshotError::Corrupt("too many blocked slots".into()));
        }
        let mut blocked_slots = Vec::with_capacity(nblocked);
        for _ in 0..nblocked {
            blocked_slots.push(c.u16()?);
        }
        let nchunks = c.u32()? as usize;
        if nchunks > 16384 || nchunks.saturating_mul(20) > c.remaining() {
            return Err(SnapshotError::Corrupt("too many chunks".into()));
        }
        let mut chunks = Vec::with_capacity(nchunks);
        let mut prev_hi: Option<u16> = None;
        for _ in 0..nchunks {
            let lo = c.u16()?;
            let hi = c.u16()?;
            let len = c.u64()?;
            let crc = c.u64()?;
            if lo > hi || hi >= memorydb_engine::NUM_SLOTS {
                return Err(SnapshotError::Corrupt("bad chunk slot range".into()));
            }
            if let Some(p) = prev_hi {
                if lo <= p {
                    return Err(SnapshotError::Corrupt(
                        "chunk ranges not ascending/disjoint".into(),
                    ));
                }
            }
            prev_hi = Some(hi);
            chunks.push(ChunkRef { lo, hi, len, crc });
        }
        if c.remaining() != 0 {
            return Err(SnapshotError::Corrupt("trailing manifest bytes".into()));
        }
        Ok(SnapshotManifest {
            covered,
            running_crc,
            engine_version,
            epoch,
            slot_ranges,
            blocked_slots,
            base,
            chain_len,
            chunks,
        })
    }

    /// Fetches and verifies the manifest stored for `covered`, if present.
    pub fn fetch_at(
        store: &ObjectStore,
        shard_name: &str,
        covered: EntryId,
    ) -> Result<SnapshotManifest, SnapshotError> {
        let key = Self::store_key(shard_name, covered);
        let (_, blob) = store
            .get(&key)
            .map_err(|e| SnapshotError::Corrupt(format!("manifest {key}: {e}")))?;
        let m = Self::decode(&blob)?;
        if m.covered != covered {
            return Err(SnapshotError::Corrupt(format!(
                "manifest {key} claims covered {}",
                m.covered.0
            )));
        }
        Ok(m)
    }
}

/// A resolved incremental chain: manifests newest → oldest, the last one
/// full. Produced by [`resolve_chain`]; the restorable image is the merge
/// of the chunks newest-first.
#[derive(Debug, Clone)]
pub struct SnapshotChain {
    /// Manifests newest → oldest; `manifests[0]` is the chain head whose
    /// `covered`/`running_crc` seed the restored replica state, the last
    /// element is the anchoring full snapshot.
    pub manifests: Vec<SnapshotManifest>,
}

impl SnapshotChain {
    /// Covered position of the chain head.
    pub fn covered(&self) -> EntryId {
        self.manifests
            .first()
            .map(|m| m.covered)
            .unwrap_or(EntryId::ZERO)
    }

    /// Covered position of the anchoring full snapshot — the log position
    /// trims must never pass while deltas still build on it.
    pub fn full_covered(&self) -> EntryId {
        self.manifests
            .last()
            .map(|m| m.covered)
            .unwrap_or(EntryId::ZERO)
    }

    /// Deltas above the full base.
    pub fn chain_len(&self) -> u32 {
        self.manifests
            .first()
            .map(|m| m.chain_len)
            .unwrap_or_default()
    }
}

/// Walks base pointers from `head` down to its full snapshot. Fails —
/// without touching any chunk — when a base manifest is missing or corrupt,
/// when covered positions do not strictly decrease, or when the walk
/// exceeds [`MAX_CHAIN_WALK`]: a broken chain, which restoration answers by
/// falling back to an older candidate (ultimately the newest full).
pub fn resolve_chain(
    store: &ObjectStore,
    shard_name: &str,
    head: SnapshotManifest,
) -> Result<SnapshotChain, SnapshotError> {
    let mut manifests = vec![head];
    while let Some(last) = manifests.last() {
        if last.is_full() {
            break;
        }
        if manifests.len() >= MAX_CHAIN_WALK {
            return Err(SnapshotError::Corrupt("manifest chain too long".into()));
        }
        if last.base >= last.covered {
            return Err(SnapshotError::Corrupt(
                "manifest base does not precede it".into(),
            ));
        }
        let base = SnapshotManifest::fetch_at(store, shard_name, last.base)
            .map_err(|e| SnapshotError::Corrupt(format!("broken chain: {e}")))?;
        manifests.push(base);
    }
    Ok(SnapshotChain { manifests })
}

/// One restorable snapshot candidate found in the object store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotCandidate {
    /// A legacy monolithic `ShardSnapshot` blob at this covered position.
    Legacy(EntryId),
    /// An incremental manifest (chain head) at this covered position.
    Manifest(EntryId),
}

impl SnapshotCandidate {
    /// Covered position of the candidate.
    pub fn covered(&self) -> EntryId {
        match self {
            SnapshotCandidate::Legacy(id) | SnapshotCandidate::Manifest(id) => *id,
        }
    }
}

/// Lists every snapshot candidate of a shard, newest first. Manifests and
/// legacy blobs are interleaved by covered position; at equal positions the
/// manifest wins (chunked restore parallelizes, the blob does not).
pub fn list_candidates(store: &ObjectStore, shard_name: &str) -> Vec<SnapshotCandidate> {
    fn covered_of(key: &str) -> Option<EntryId> {
        key.rsplit('/').next()?.parse::<u64>().ok().map(EntryId)
    }
    let mut out = Vec::new();
    for meta in store.list(&format!("snapmeta/{shard_name}/")) {
        if let Some(id) = covered_of(&meta.key) {
            out.push(SnapshotCandidate::Manifest(id));
        }
    }
    for meta in store.list(&format!("snapshots/{shard_name}/")) {
        if let Some(id) = covered_of(&meta.key) {
            out.push(SnapshotCandidate::Legacy(id));
        }
    }
    // Newest first; manifest before legacy at the same position.
    out.sort_by_key(|c| {
        let manifest_first = matches!(c, SnapshotCandidate::Legacy(_));
        (std::cmp::Reverse(c.covered()), manifest_first)
    });
    out
}

/// A materialized point-in-time image — everything restore needs before log
/// replay, whether it came from a legacy blob or an incremental chain.
#[derive(Debug)]
pub struct SnapshotImage {
    /// The merged keyspace at `covered`.
    pub db: Db,
    /// Last transaction-log entry included.
    pub covered: EntryId,
    /// Running checksum through `covered`.
    pub running_crc: u64,
    /// Leadership epoch at snapshot time.
    pub epoch: u64,
    /// Slot ownership at snapshot time.
    pub slot_ranges: Vec<(u16, u16)>,
    /// Slots blocked mid-migration at snapshot time.
    pub blocked_slots: Vec<u16>,
    /// Deltas above the full base (0 when the image is/derives from a full).
    pub chain_len: u32,
    /// Covered position of the anchoring full snapshot.
    pub full_covered: EntryId,
    /// Whether the image came from a chunked manifest chain.
    pub from_manifest: bool,
    /// Whether the image came from the newest candidate in the store (a
    /// fallback past a broken newer candidate clears this; the off-box
    /// snapshotter then forces a full snapshot rather than extending a
    /// chain that is no longer the freshest).
    pub newest: bool,
}

/// Fetches the newest restorable snapshot image, degrading candidate by
/// candidate: a corrupt blob, broken chain, or corrupt/unfetchable chunk
/// fails only that candidate. `workers > 1` fetches and decodes chunk blobs
/// on that many threads. Returns `Ok(None)` on an empty store and the last
/// error when candidates exist but none restores.
pub fn fetch_latest_image(
    store: &ObjectStore,
    shard_name: &str,
    workers: usize,
) -> Result<Option<SnapshotImage>, SnapshotError> {
    let candidates = list_candidates(store, shard_name);
    if candidates.is_empty() {
        return Ok(None);
    }
    let mut last_err = SnapshotError::Corrupt("no restorable snapshot".into());
    for (i, cand) in candidates.iter().enumerate() {
        match materialize(store, shard_name, cand, workers) {
            Ok(mut image) => {
                image.newest = i == 0;
                return Ok(Some(image));
            }
            Err(e) => last_err = e,
        }
    }
    Err(last_err)
}

/// Covered position of the newest snapshot whose *metadata* verifies: the
/// legacy blob decodes, or the manifest chain resolves down to its full
/// base. Cheap relative to [`fetch_latest_image`] — chunk blobs are not
/// fetched — so monitoring can sample freshness without materializing a
/// keyspace. `None` when no candidate verifies.
pub fn newest_restorable_covered(store: &ObjectStore, shard_name: &str) -> Option<EntryId> {
    for cand in list_candidates(store, shard_name) {
        let ok = match &cand {
            SnapshotCandidate::Legacy(covered) => {
                let key = ShardSnapshot::store_key(shard_name, *covered);
                store
                    .get(&key)
                    .ok()
                    .is_some_and(|(_, blob)| ShardSnapshot::decode(&blob).is_ok())
            }
            SnapshotCandidate::Manifest(covered) => {
                SnapshotManifest::fetch_at(store, shard_name, *covered)
                    .and_then(|head| resolve_chain(store, shard_name, head))
                    .is_ok()
            }
        };
        if ok {
            return Some(cand.covered());
        }
    }
    None
}

/// Materializes one candidate into an image (`newest` left true; the caller
/// that walked the candidate list sets it).
fn materialize(
    store: &ObjectStore,
    shard_name: &str,
    cand: &SnapshotCandidate,
    workers: usize,
) -> Result<SnapshotImage, SnapshotError> {
    match cand {
        SnapshotCandidate::Legacy(covered) => {
            let key = ShardSnapshot::store_key(shard_name, *covered);
            let (_, blob) = store
                .get(&key)
                .map_err(|e| SnapshotError::Corrupt(format!("snapshot {key}: {e}")))?;
            let snap = ShardSnapshot::decode(&blob)?;
            let db = snap.load_db()?;
            Ok(SnapshotImage {
                db,
                covered: snap.covered,
                running_crc: snap.running_crc,
                epoch: snap.epoch,
                slot_ranges: snap.slot_ranges,
                blocked_slots: snap.blocked_slots,
                chain_len: 0,
                full_covered: snap.covered,
                from_manifest: false,
                newest: true,
            })
        }
        SnapshotCandidate::Manifest(covered) => {
            let head = SnapshotManifest::fetch_at(store, shard_name, *covered)?;
            let chain = resolve_chain(store, shard_name, head)?;
            let db = merge_chain(store, shard_name, &chain, workers)?;
            let full_covered = chain.full_covered();
            let chain_len = chain.chain_len();
            let Some(head) = chain.manifests.into_iter().next() else {
                return Err(SnapshotError::Corrupt("empty chain".into()));
            };
            Ok(SnapshotImage {
                db,
                covered: head.covered,
                running_crc: head.running_crc,
                epoch: head.epoch,
                slot_ranges: head.slot_ranges,
                blocked_slots: head.blocked_slots,
                chain_len,
                full_covered,
                from_manifest: true,
                newest: true,
            })
        }
    }
}

/// Fetches, verifies and decodes one chunk blob.
fn load_chunk(
    store: &ObjectStore,
    shard_name: &str,
    covered: EntryId,
    chunk: &ChunkRef,
) -> Result<Db, SnapshotError> {
    let key = SnapshotManifest::chunk_key(shard_name, covered, chunk.lo, chunk.hi);
    let (_, blob) = store
        .get(&key)
        .map_err(|e| SnapshotError::Corrupt(format!("chunk {key}: {e}")))?;
    if blob.len() as u64 != chunk.len || crc64(&blob) != chunk.crc {
        return Err(SnapshotError::Corrupt(format!(
            "chunk {key} does not match its manifest reference"
        )));
    }
    rdb::load(&blob).map_err(|e| SnapshotError::Corrupt(format!("chunk {key}: {e}")))
}

/// Fetches and decodes every chunk of the chain, then merges newest → oldest
/// under slot-coverage masking. With `workers > 1` the fetch+decode runs on
/// a scoped thread pool pulling tasks off a shared counter; the merge itself
/// stays sequential in chain order (it is cheap relative to decode).
fn merge_chain(
    store: &ObjectStore,
    shard_name: &str,
    chain: &SnapshotChain,
    workers: usize,
) -> Result<Db, SnapshotError> {
    // Flat task list: (manifest index, chunk). Chain order is preserved by
    // indexing results, not by completion order.
    let tasks: Vec<(usize, &ChunkRef)> = chain
        .manifests
        .iter()
        .enumerate()
        .flat_map(|(mi, m)| m.chunks.iter().map(move |c| (mi, c)))
        .collect();
    let mut decoded: Vec<Option<Result<Db, SnapshotError>>> = Vec::new();
    decoded.resize_with(tasks.len(), || None);
    let workers = workers.max(1).min(tasks.len().max(1));
    if workers <= 1 {
        for (slot, &(mi, chunk)) in decoded.iter_mut().zip(&tasks) {
            let covered = chain.manifests.get(mi).map(|m| m.covered);
            let covered = covered.unwrap_or(EntryId::ZERO);
            *slot = Some(load_chunk(store, shard_name, covered, chunk));
        }
    } else {
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<Result<Db, SnapshotError>>>> =
            tasks.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(&(mi, chunk)) = tasks.get(i) else {
                        break;
                    };
                    let covered = chain
                        .manifests
                        .get(mi)
                        .map(|m| m.covered)
                        .unwrap_or(EntryId::ZERO);
                    let result = load_chunk(store, shard_name, covered, chunk);
                    if let Some(slot) = slots.get(i) {
                        *slot.lock() = Some(result);
                    }
                });
            }
        });
        for (dst, src) in decoded.iter_mut().zip(slots) {
            *dst = src.into_inner();
        }
    }

    // Merge newest-first: a slot range claimed by a newer manifest masks
    // older data in those slots — including deletions, because an empty
    // dirtied slot still claims its range.
    let mut db = Db::new();
    let mut claimed = SlotSet::empty();
    let mut cursor = 0usize;
    for m in &chain.manifests {
        for _ in &m.chunks {
            let part = match decoded.get_mut(cursor).and_then(Option::take) {
                Some(Ok(part)) => part,
                Some(Err(e)) => return Err(e),
                None => return Err(SnapshotError::Corrupt("chunk task lost".into())),
            };
            cursor += 1;
            db.absorb_if(part, |key| !claimed.contains(key_hash_slot(key)));
        }
        for c in &m.chunks {
            for slot in c.lo..=c.hi {
                claimed.insert(slot);
            }
        }
    }
    Ok(db)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_manifest() -> SnapshotManifest {
        SnapshotManifest {
            covered: EntryId(42),
            running_crc: 0xDEAD_BEEF,
            engine_version: EngineVersion::CURRENT,
            epoch: 7,
            slot_ranges: vec![(0, 16383)],
            blocked_slots: vec![9, 400],
            base: EntryId(17),
            chain_len: 2,
            chunks: vec![
                ChunkRef {
                    lo: 0,
                    hi: 100,
                    len: 321,
                    crc: 0x1111,
                },
                ChunkRef {
                    lo: 5000,
                    hi: 8191,
                    len: 4,
                    crc: 0x2222,
                },
            ],
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let m = sample_manifest();
        let back = SnapshotManifest::decode(&m.encode()).unwrap();
        assert_eq!(back, m);
        assert!(!back.is_full());
        let mut full = m.clone();
        full.base = EntryId::ZERO;
        full.chain_len = 0;
        let back = SnapshotManifest::decode(&full.encode()).unwrap();
        assert!(back.is_full());
    }

    #[test]
    fn decode_rejects_structural_corruption() {
        let m = sample_manifest();
        let blob = m.encode().to_vec();
        // Flip a byte: envelope CRC catches it.
        let mut flipped = blob.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x55;
        assert!(SnapshotManifest::decode(&flipped).is_err());
        assert!(SnapshotManifest::decode(&blob[..11]).is_err());
        // Inconsistent full/delta markers.
        let mut bad = m.clone();
        bad.base = EntryId::ZERO; // chain_len still 2
        assert!(SnapshotManifest::decode(&bad.encode()).is_err());
        // Overlapping chunk ranges.
        let mut bad = m;
        bad.chunks[1].lo = 50;
        assert!(SnapshotManifest::decode(&bad.encode()).is_err());
    }

    #[test]
    fn keys_order_lexicographically() {
        let a = SnapshotManifest::store_key("s", EntryId(9));
        let b = SnapshotManifest::store_key("s", EntryId(10));
        assert!(a < b);
        let c = SnapshotManifest::chunk_key("s", EntryId(9), 0, 99);
        let d = SnapshotManifest::chunk_key("s", EntryId(9), 100, 200);
        assert!(c < d);
        // Namespaces are disjoint from the legacy one.
        assert!(a.starts_with("snapmeta/"));
        assert!(c.starts_with("snapchunk/"));
    }

    #[test]
    fn resolve_chain_walks_to_full_and_reports_breaks() {
        let store = ObjectStore::new();
        let mut full = sample_manifest();
        full.covered = EntryId(10);
        full.base = EntryId::ZERO;
        full.chain_len = 0;
        let mut d1 = sample_manifest();
        d1.covered = EntryId(20);
        d1.base = EntryId(10);
        d1.chain_len = 1;
        let mut d2 = sample_manifest();
        d2.covered = EntryId(30);
        d2.base = EntryId(20);
        d2.chain_len = 2;
        for m in [&full, &d1, &d2] {
            store.put(&SnapshotManifest::store_key("s", m.covered), m.encode());
        }
        let chain = resolve_chain(&store, "s", d2.clone()).unwrap();
        assert_eq!(chain.manifests.len(), 3);
        assert_eq!(chain.covered(), EntryId(30));
        assert_eq!(chain.full_covered(), EntryId(10));
        assert_eq!(chain.chain_len(), 2);
        // Removing the middle manifest breaks the chain.
        store.delete(&SnapshotManifest::store_key("s", EntryId(20)));
        assert!(resolve_chain(&store, "s", d2).is_err());
        // A full head resolves to itself without any store reads.
        let solo = resolve_chain(&ObjectStore::new(), "s", full).unwrap();
        assert_eq!(solo.manifests.len(), 1);
    }

    #[test]
    fn candidates_interleave_both_namespaces_newest_first() {
        let store = ObjectStore::new();
        store.put(
            &SnapshotManifest::store_key("s", EntryId(30)),
            Bytes::from_static(b"m"),
        );
        store.put(
            &ShardSnapshot::store_key("s", EntryId(40)),
            Bytes::from_static(b"l"),
        );
        store.put(
            &SnapshotManifest::store_key("s", EntryId(40)),
            Bytes::from_static(b"m"),
        );
        store.put(
            &ShardSnapshot::store_key("s", EntryId(10)),
            Bytes::from_static(b"l"),
        );
        let got = list_candidates(&store, "s");
        assert_eq!(
            got,
            vec![
                SnapshotCandidate::Manifest(EntryId(40)),
                SnapshotCandidate::Legacy(EntryId(40)),
                SnapshotCandidate::Manifest(EntryId(30)),
                SnapshotCandidate::Legacy(EntryId(10)),
            ]
        );
        assert!(list_candidates(&store, "other").is_empty());
    }
}
