//! A shard: one transaction log, one primary, zero or more replicas.

use crate::bus::ClusterBus;
use crate::config::ShardConfig;
use crate::node::{Node, ShardContext};
use crate::record::{NodeId, Record, ShardId};
use memorydb_engine::exec::Role;
use memorydb_objectstore::ObjectStore;
use memorydb_txlog::LogService;
use parking_lot::RwLock;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Source of unique node ids across a cluster.
#[derive(Debug, Default)]
pub struct NodeIdGen(AtomicU64);

impl NodeIdGen {
    /// Fresh generator starting at 1.
    pub fn new() -> NodeIdGen {
        NodeIdGen(AtomicU64::new(1))
    }

    /// Next unique id.
    pub fn next(&self) -> NodeId {
        self.0.fetch_add(1, Ordering::Relaxed)
    }
}

/// A MemoryDB shard.
pub struct Shard {
    /// Shard id within the cluster.
    pub id: ShardId,
    ctx: Arc<ShardContext>,
    nodes: RwLock<Vec<Arc<Node>>>,
    ids: Arc<NodeIdGen>,
}

impl std::fmt::Debug for Shard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shard")
            .field("id", &self.id)
            .field("nodes", &self.nodes.read().len())
            .finish()
    }
}

impl Shard {
    /// Bootstraps a shard: creates its transaction log, durably records its
    /// initial slot ownership, and starts `1 + replicas` nodes. The first
    /// primary emerges through the normal election path (a conditional
    /// append on the empty-but-for-ownership log), not by fiat.
    pub fn bootstrap(
        id: ShardId,
        cfg: ShardConfig,
        store: Arc<ObjectStore>,
        bus: Arc<ClusterBus>,
        ids: Arc<NodeIdGen>,
        slot_ranges: Vec<(u16, u16)>,
        replicas: usize,
    ) -> Arc<Shard> {
        cfg.validate().expect("invalid shard config");
        let log = LogService::new(cfg.log.clone());
        // Durable statement of initial ownership so it is recoverable from
        // the log alone.
        let ownership = Record::SlotOwnership {
            ranges: slot_ranges,
        }
        .encode();
        let entry = log.append(0, ownership).expect("bootstrap append");
        assert!(log.wait_durable(entry, Duration::from_secs(10)));

        let ctx = Arc::new(ShardContext {
            shard_id: id,
            name: format!("shard-{id}"),
            log,
            store,
            bus,
            cfg,
        });
        let shard = Arc::new(Shard {
            id,
            ctx: Arc::clone(&ctx),
            nodes: RwLock::new(Vec::new()),
            ids,
        });
        for _ in 0..replicas + 1 {
            shard.add_node();
        }
        shard
    }

    /// The shard's environment (log, store, bus, config).
    pub fn ctx(&self) -> &Arc<ShardContext> {
        &self.ctx
    }

    /// Starts one more node, restored from the object store + log
    /// (replica scaling, §5.2; recovery, §4.2).
    pub fn add_node(&self) -> Arc<Node> {
        self.add_node_with_version(memorydb_engine::EngineVersion::CURRENT)
    }

    /// Starts one more node pinned to an engine version (rolling-upgrade
    /// scenarios, §7.1).
    ///
    /// The restore is retried: a node joining a live shard can race a
    /// concurrent snapshot+trim cycle or a transient log partition, both of
    /// which are recoverable — only persistent failure (e.g. corrupt
    /// snapshot store) panics.
    pub fn add_node_with_version(&self, version: memorydb_engine::EngineVersion) -> Arc<Node> {
        let id = self.ids.next();
        let mut last_err = None;
        for _ in 0..100 {
            match Node::start_restored_with_version(Arc::clone(&self.ctx), id, version) {
                Ok(node) => {
                    self.nodes.write().push(Arc::clone(&node));
                    return node;
                }
                Err(e) => {
                    last_err = Some(e);
                    std::thread::sleep(Duration::from_millis(10));
                }
            }
        }
        panic!(
            "restore for a live shard kept failing: {}",
            last_err.expect("loop ran")
        );
    }

    /// All live nodes.
    pub fn nodes(&self) -> Vec<Arc<Node>> {
        self.nodes
            .read()
            .iter()
            .filter(|n| n.is_alive())
            .cloned()
            .collect()
    }

    /// The current active primary, if one holds a valid lease.
    pub fn primary(&self) -> Option<Arc<Node>> {
        self.nodes
            .read()
            .iter()
            .find(|n| n.is_alive() && n.is_active_primary())
            .cloned()
    }

    /// Blocks until a primary with a valid lease exists (bounded by
    /// `timeout`). Returns it.
    pub fn wait_for_primary(&self, timeout: Duration) -> Option<Arc<Node>> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(p) = self.primary() {
                return Some(p);
            }
            if Instant::now() >= deadline {
                return None;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    /// Replicas (alive, non-primary nodes).
    pub fn replicas(&self) -> Vec<Arc<Node>> {
        self.nodes
            .read()
            .iter()
            .filter(|n| n.is_alive() && n.role() == Role::Replica)
            .cloned()
            .collect()
    }

    /// Crashes the current primary (fault injection for tests/benches).
    pub fn crash_primary(&self) -> Option<Arc<Node>> {
        let p = self.primary()?;
        p.crash();
        Some(p)
    }

    /// Terminates one replica (replica scale-in, §5.2). Returns it.
    pub fn remove_replica(&self) -> Option<Arc<Node>> {
        let victim = self.replicas().into_iter().next()?;
        victim.crash();
        self.reap_dead();
        Some(victim)
    }

    /// Drops crashed nodes from the member list (monitoring action).
    pub fn reap_dead(&self) -> usize {
        let mut nodes = self.nodes.write();
        let before = nodes.len();
        nodes.retain(|n| n.is_alive());
        before - nodes.len()
    }

    /// Blocks until every live replica has applied the log through the
    /// current committed tail.
    pub fn wait_replicas_caught_up(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            let tail = self.ctx.log.committed_tail();
            if self
                .replicas()
                .iter()
                .all(|r| r.applied() >= tail && r.halted().is_none())
            {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }
}
