//! A MemoryDB node: the in-memory engine wired to the transaction log.
//!
//! One [`Node`] is one database process. A primary executes commands,
//! intercepts the engine's effect stream, appends it to the shard's
//! transaction log, and **withholds replies until the log acknowledges
//! durability** (paper §3.2). Replicas consume the committed log and serve
//! sequentially consistent reads. Leader election runs purely against the
//! log's conditional-append API with leases (§4.1); no cluster quorum is
//! involved.
// Serving/apply path: panic-freedom is an enforced invariant (DESIGN.md §9;
// `cargo run -p memorydb-analysis`). Keep clippy aligned with the analyzer.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

use crate::apply::{apply_entry_striped, fold_appended_payload, ReplicaState};
use crate::bus::{BusRole, ClusterBus};
use crate::config::ShardConfig;
use crate::pipeline::{CommitPipeline, StagedRun, Ticket, TicketOutcome, TicketSpec};
use crate::record::{NodeId, Record, ShardId};
use crate::restore::{restore_replica_opts, ReplayTarget, RestoreOptions, RestorePoint};
use crate::snapshot::ShardSnapshot;
use crate::stripes::{stripe_of, EngineStripes, StripeGuards};
use crate::tracker::Tracker;
use bytes::Bytes;
use memorydb_engine::command::command_spec;
use memorydb_engine::exec::Role;
use memorydb_engine::{
    eval_on_host, for_each_key, key_hash_slot, keys_for, CmdName, DirtySet, EffectCmd, Engine,
    ExecOutcome, Frame, ScriptHost, SessionState,
};
use memorydb_metrics::{CounterId, GaugeId, Registry, StageId};
use memorydb_objectstore::ObjectStore;
use memorydb_txlog::{AppendError, EntryId, LogService, ReadError};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// Everything a node needs to know about its shard's environment.
pub struct ShardContext {
    /// Shard identifier within the cluster.
    pub shard_id: ShardId,
    /// Human-readable shard name (object-store key prefix).
    pub name: String,
    /// The shard's transaction log.
    pub log: Arc<LogService>,
    /// The snapshot store (shared cluster-wide).
    pub store: Arc<ObjectStore>,
    /// The cluster bus (gossip).
    pub bus: Arc<ClusterBus>,
    /// Tunables.
    pub cfg: ShardConfig,
}

impl std::fmt::Debug for ShardContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardContext")
            .field("shard_id", &self.shard_id)
            .field("name", &self.name)
            .finish()
    }
}

struct NodeState {
    role: Role,
    rs: ReplicaState,
    tracker: Tracker,
    /// Primary: my lease is valid until here; I stop serving at expiry.
    lease_valid_until: Instant,
    /// Primary: a renewal staged but not yet confirmed durable. The ticket
    /// (not `is_durable` on the prospective id) is the confirmation: after
    /// a fence another leader's entry may occupy that id, and extending the
    /// lease from it would break lease disjointness.
    pending_renewal: Option<(Arc<Ticket>, Instant)>,
    /// Primary: when to append the next renewal.
    next_renewal_at: Instant,
    effects_since_probe: u64,
    demote_requested: bool,
    /// The engine executed mutations whose log append was REJECTED (fenced
    /// or partitioned): those keys are dirty but not hazard-tracked, so the
    /// node must not serve anything — not even reads — until the rebuild
    /// discards them. A timed-out append is different: its entries are in
    /// the log and in the tracker, so clean reads stay safe.
    state_poisoned: bool,
    /// A rebuild (restore from snapshot+log) is in progress.
    rebuilding: bool,
    /// Migration forwarding: writes to these slots are mirrored to the
    /// target shard's primary during the data-movement phase (§5.2).
    forward: HashMap<u16, Arc<Node>>,
}

/// Wall-clock milliseconds (the engine clock source in the threaded
/// runtime).
pub fn wall_ms() -> u64 {
    // A pre-epoch clock yields 0 rather than panicking the serving path.
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map_or(0, |d| d.as_millis() as u64)
}

/// A MemoryDB node (primary or replica).
pub struct Node {
    /// Globally unique node id (also its txlog client id).
    pub id: NodeId,
    ctx: Arc<ShardContext>,
    /// Slot-partitioned engine stripes (DESIGN.md §12): a batch confined to
    /// one stripe takes only that stripe's lock, so disjoint-stripe batches
    /// execute concurrently; cross-stripe work acquires every stripe in
    /// canonical ascending order via [`EngineStripes::lock_all`].
    stripes: EngineStripes,
    st: Mutex<NodeState>,
    alive: AtomicBool,
    /// Per-node observability: stage latency histograms, counters, and the
    /// slowlog ring surfaced by `INFO`/`SLOWLOG`/`LATENCY` (DESIGN.md §10).
    metrics: Arc<Registry>,
    /// Commit pipeline (DESIGN.md §11): staged runs awaiting the committer
    /// thread's coalesced append, and appended tickets awaiting the
    /// completer thread's watermark check.
    pipeline: Arc<CommitPipeline>,
    /// Group-commit leadership: whoever holds this drains the staged queue
    /// and appends. Serializing drain+append here is what keeps log order
    /// equal to fold order when submitters flush on their own thread.
    flush_token: Mutex<()>,
    /// Rotating active-expire cursor: each pass reaps one stripe under its
    /// own `lock_one`, so background expiration never stalls the other
    /// stripes behind an all-stripe acquisition.
    expire_cursor: AtomicUsize,
}

impl std::fmt::Debug for Node {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Node")
            .field("id", &self.id)
            .field("role", &self.role())
            .finish()
    }
}

/// A batch that has executed and staged its mutations on the commit
/// pipeline, with the mutation replies still parked on its [`Ticket`]
/// (DESIGN.md §11). Produced by [`Node::handle_batch_submit`], consumed by
/// [`Node::try_finish`] / [`Node::wait_finish`].
pub struct SubmittedBatch {
    /// Replies in submission order; mutation slots hold `Frame::Null`
    /// placeholders until the ticket resolves.
    replies: Vec<Frame>,
    /// `(index, reply)` for each staged mutation — installed only on a
    /// durable resolution.
    staged_replies: Vec<(usize, Frame)>,
    /// `(index, hazard entry)` for reads before the first mutation.
    hazard_reads: Vec<(usize, EntryId)>,
    /// Indices of successfully-validated `WAIT` commands: on a timed-out
    /// ticket these report the replica count actually achieved instead of
    /// inheriting the blanket ambiguous-commit error.
    wait_indices: Vec<usize>,
    first_write_index: Option<usize>,
    /// `None` when the batch never touched the pipeline (pure reads with
    /// no hazards): the replies are final already.
    ticket: Option<Arc<Ticket>>,
}

impl SubmittedBatch {
    /// Has the pipeline resolved this batch's ticket (or was none needed)?
    pub fn is_complete(&self) -> bool {
        self.ticket.as_ref().is_none_or(|t| t.is_resolved())
    }

    /// Registers a completion callback on the pending ticket; fires
    /// immediately when the batch is already complete.
    pub fn set_waker(&self, waker: Box<dyn FnOnce() + Send>) {
        match &self.ticket {
            Some(t) => t.set_waker(waker),
            None => waker(),
        }
    }

    /// The batch's commit ticket, if it staged one (test visibility).
    #[cfg(test)]
    pub(crate) fn ticket_ref(&self) -> Option<&Arc<Ticket>> {
        self.ticket.as_ref()
    }
}

/// Commands that must observe every stripe regardless of their key
/// signature: whole-keyspace scans and fan-outs, transaction closers (the
/// queued commands may span stripes), and the config/script broadcasts that
/// keep per-stripe state identical.
/// `DBSIZE` and `RANDOMKEY` are deliberately absent: per-stripe key
/// counters (refreshed on every guard drop) let `DBSIZE` answer from any
/// single stripe and let `RANDOMKEY` pre-pick a count-weighted stripe, so
/// neither needs the all-stripe acquisition on its own any more. Both keep
/// their exact all-stripe forms for EXEC bodies, scripts and mixed batches.
const FORCE_ALL_STRIPES: &[&str] = &[
    "EXEC", "SCAN", "KEYS", "FLUSHALL", "FLUSHDB", "INFO", "CONFIG", "SCRIPT", "EVAL", "EVALSHA",
];

/// Keyless commands that touch no keyspace state at all (session- or
/// node-level only) — safe to run on whichever single stripe a batch holds.
/// Any other keyless command conservatively takes the all-stripe route.
const STRIPE_AGNOSTIC: &[&str] = &[
    "PING", "ECHO", "TIME", "SELECT", "WAIT", "SLOWLOG", "LATENCY", "MULTI", "DISCARD", "UNWATCH",
    "COMMAND",
];

/// A [`ScriptHost`] over the full stripe set: routes each of a script's
/// inner commands to the stripe owning its keys (the interpreter rejects
/// MULTI/EXEC/EVAL inside scripts before they reach the host), so one
/// script may read and write across stripes while its effects still form
/// one atomic replication batch.
struct StripedHost<'g, 'a> {
    guards: &'g mut StripeGuards<'a>,
}

impl ScriptHost for StripedHost<'_, '_> {
    fn run_script_cmd(&mut self, cmd: &[Bytes]) -> ExecOutcome {
        Node::execute_single_routed(self.guards, cmd)
    }
}

impl Node {
    /// Starts a node from a restore point, spawning its run loop.
    pub fn start(ctx: Arc<ShardContext>, id: NodeId, rp: RestorePoint) -> Arc<Node> {
        let mut rs = rp.rs;
        // A fresh node always starts as a replica (paper §4.2) and must
        // wait out a full backoff before campaigning.
        rs.last_leadership_signal = Instant::now();
        let metrics = Arc::new(Registry::new());
        let stripes = EngineStripes::split(rp.engine, ctx.cfg.engine_stripes, Arc::clone(&metrics));
        let node = Arc::new(Node {
            id,
            ctx,
            stripes,
            st: Mutex::new(NodeState {
                role: Role::Replica,
                rs,
                tracker: Tracker::new(),
                lease_valid_until: Instant::now(),
                pending_renewal: None,
                next_renewal_at: Instant::now(),
                effects_since_probe: 0,
                demote_requested: false,
                state_poisoned: false,
                rebuilding: false,
                forward: HashMap::new(),
            }),
            alive: AtomicBool::new(true),
            metrics,
            pipeline: Arc::new(CommitPipeline::new()),
            flush_token: Mutex::new(()),
            expire_cursor: AtomicUsize::new(0),
        });
        let runner = Arc::clone(&node);
        // Baselined in analysis.toml: failing to spawn at node startup is a
        // boot error, not a serving-path panic — no lease is held yet.
        #[allow(clippy::expect_used)]
        std::thread::Builder::new()
            .name(format!("node-{id}"))
            .spawn(move || runner.run_loop())
            .expect("spawn node loop");
        let committer = Arc::clone(&node);
        #[allow(clippy::expect_used)]
        std::thread::Builder::new()
            .name(format!("node-{id}-committer"))
            .spawn(move || committer.committer_loop())
            .expect("spawn committer");
        let completer = Arc::clone(&node);
        #[allow(clippy::expect_used)]
        std::thread::Builder::new()
            .name(format!("node-{id}-completer"))
            .spawn(move || completer.completer_loop())
            .expect("spawn completer");
        node
    }

    /// Starts a brand-new node that restores itself from the object store
    /// and log (the path every recovering or scaling replica takes, §4.2.1).
    pub fn start_restored(
        ctx: Arc<ShardContext>,
        id: NodeId,
    ) -> Result<Arc<Node>, crate::restore::RestoreError> {
        Node::start_restored_with_version(ctx, id, memorydb_engine::EngineVersion::CURRENT)
    }

    /// Like [`Node::start_restored`] but pinning an engine version — used
    /// to stage mixed-version clusters for the §7.1 upgrade-protection
    /// scenarios.
    pub fn start_restored_with_version(
        ctx: Arc<ShardContext>,
        id: NodeId,
        version: memorydb_engine::EngineVersion,
    ) -> Result<Arc<Node>, crate::restore::RestoreError> {
        let mut rp = restore_replica_opts(
            &ctx.store,
            &ctx.log,
            id,
            &ctx.name,
            version,
            ReplayTarget::Tail,
            RestoreOptions {
                workers: ctx.cfg.restore_workers,
            },
        )?;
        // restore_replica builds the engine at `version` already; assert the
        // invariant here so a future refactor cannot silently drop it.
        debug_assert_eq!(rp.engine.version(), version);
        rp.engine.set_role(Role::Replica);
        Ok(Node::start(ctx, id, rp))
    }

    /// Current role.
    pub fn role(&self) -> Role {
        self.st.lock().role
    }

    /// Is this node the shard primary with a currently valid lease?
    ///
    /// A primary with a pending demotion (fenced append, voluntary release)
    /// no longer counts: its in-memory state may contain executed-but-
    /// uncommitted mutations that the rebuild is about to discard.
    pub fn is_active_primary(&self) -> bool {
        let st = self.st.lock();
        st.role == Role::Primary
            && Instant::now() < st.lease_valid_until
            && !st.rebuilding
            && !st.demote_requested
    }

    /// Last applied (or appended) log position.
    pub fn applied(&self) -> EntryId {
        self.st.lock().rs.applied
    }

    /// Current leadership epoch.
    pub fn epoch(&self) -> u64 {
        self.st.lock().rs.epoch
    }

    /// Running checksum over everything applied so far — equal positions
    /// must have equal checksums on every node (the convergence invariant
    /// the chaos harness asserts).
    pub fn running_crc(&self) -> u64 {
        self.st.lock().rs.running_crc
    }

    /// Applied position and running checksum read under one lock (an
    /// un-torn pair — reading them separately can interleave with apply).
    pub fn position(&self) -> (EntryId, u64) {
        let st = self.st.lock();
        (st.rs.applied, st.rs.running_crc)
    }

    /// Why this node stopped consuming the log, if it did.
    pub fn halted(&self) -> Option<crate::apply::HaltReason> {
        self.st.lock().rs.halted.clone()
    }

    /// Number of keys currently dirtied by unpersisted writes.
    pub fn pending_writes(&self) -> usize {
        self.st.lock().tracker.pending_keys()
    }

    /// The shard context (tests & controllers).
    pub fn ctx(&self) -> &Arc<ShardContext> {
        &self.ctx
    }

    /// In-flight window occupancy (entries, bytes) — regression-test
    /// visibility into the exactly-once release accounting.
    #[cfg(test)]
    pub(crate) fn pipeline_inflight(&self) -> (usize, usize) {
        self.pipeline.inflight()
    }

    /// This node's metrics registry (stage histograms, counters, slowlog).
    /// The server layer records its IO/parse stages here so one registry
    /// holds the full per-request breakdown; the transaction log keeps its
    /// own (see [`LogService::metrics`]).
    pub fn metrics(&self) -> &Arc<Registry> {
        &self.metrics
    }

    /// Simulates a hard crash: the run loop exits, the node stops serving.
    /// The pipeline threads drain whatever is in flight before exiting, so
    /// no parked reply hangs past the commit timeout.
    pub fn crash(&self) {
        self.alive.store(false, Ordering::SeqCst);
        self.ctx.bus.remove(self.id);
        self.pipeline.notify_all();
    }

    /// Is the node alive (not crashed)?
    pub fn is_alive(&self) -> bool {
        self.alive.load(Ordering::SeqCst)
    }

    /// Requests voluntary demotion (used by tests and scaling).
    pub fn request_demotion(&self) {
        self.st.lock().demote_requested = true;
    }

    /// Collaborative leadership transfer (§5.2): the primary appends a
    /// lease release, letting observers campaign immediately, then demotes.
    /// Returns whether the release was durably recorded.
    pub fn release_leadership(&self) -> bool {
        let ticket = {
            let mut st = self.st.lock();
            if st.role != Role::Primary || st.state_poisoned || st.rebuilding {
                return false;
            }
            let rec = Record::LeaseRelease {
                node: self.id,
                epoch: st.rs.epoch,
            };
            self.stage_control_locked(&mut st, rec.encode_framed())
        };
        let ok = matches!(
            ticket.wait(self.ticket_wait_cap()),
            Some(TicketOutcome::Durable)
        );
        self.st.lock().demote_requested = true;
        ok
    }

    // ---------------------------------------------------------------------
    // Client command path
    // ---------------------------------------------------------------------

    /// Executes one client command against this node, blocking until the
    /// reply may be released (commit for writes; hazard commit for reads).
    ///
    /// This is the single-command view of [`Node::handle_batch`]; both
    /// paths share one implementation so their semantics cannot drift.
    pub fn handle(&self, session: &mut SessionState, args: &[Bytes]) -> Frame {
        let one = [args.to_vec()];
        self.handle_batch(session, &one)
            .pop()
            .unwrap_or_else(|| Frame::error("ERR internal: batch returned no reply"))
    }

    /// Executes a pipeline of commands with **one** stripe-lock
    /// acquisition and **one** commit ticket covering every mutation
    /// (group commit, §3.1's BtrLog batching), blocking until the commit
    /// pipeline releases the whole pipeline of replies (§3.2).
    ///
    /// Replies come back in submission order. Semantics match running the
    /// same commands one at a time through [`Node::handle`]: per-command
    /// role/slot checks, MULTI/EXEC session state, read hazards, and the
    /// no-unacknowledged-data-loss rule (a mutation whose append is fenced
    /// poisons every later command in the batch, because those executed
    /// against state that will be discarded on demotion).
    ///
    /// This is the blocking wrapper over [`Node::handle_batch_submit`] +
    /// [`Node::wait_finish`]; the multiplexed server uses the split form
    /// to park replies instead of blocking its IO threads (DESIGN.md §11).
    ///
    /// Because this caller blocks for its replies anyway, it is the path
    /// that takes the adaptive idle fast path (DESIGN.md §13): when the
    /// pipeline is idle at staging time the submitting thread appends its
    /// own run inline instead of bouncing through the committer.
    pub fn handle_batch(&self, session: &mut SessionState, cmds: &[Vec<Bytes>]) -> Vec<Frame> {
        let sb = self.submit_batch_inner(session, cmds, true);
        self.wait_finish(sb)
    }

    /// The non-blocking half of [`Node::handle_batch`]: classifies the batch
    /// by CRC16 slot stripe, executes it under the owning stripe lock(s)
    /// (DESIGN.md §12), stages its mutations (and read hazards) on
    /// the commit pipeline, and returns with the mutation replies still
    /// parked on the batch's ticket. [`Node::try_finish`] /
    /// [`Node::wait_finish`] release them once the ticket resolves.
    ///
    /// This split form never takes the inline idle flush: the caller is a
    /// multiplexing IO thread that must return to its event loop, so the
    /// run always rides the committer handoff — which is also what lets
    /// the committer coalesce runs from many connections into one append.
    pub fn handle_batch_submit(
        &self,
        session: &mut SessionState,
        cmds: &[Vec<Bytes>],
    ) -> SubmittedBatch {
        self.submit_batch_inner(session, cmds, false)
    }

    /// Shared body of [`Node::handle_batch`] / [`Node::handle_batch_submit`].
    /// `allow_inline` is true only for blocking callers: the idle fast path
    /// blocks the submitting thread on the log append, which is only
    /// acceptable when that thread was about to block on the reply anyway.
    fn submit_batch_inner(
        &self,
        session: &mut SessionState,
        cmds: &[Vec<Bytes>],
        allow_inline: bool,
    ) -> SubmittedBatch {
        let mut replies: Vec<Frame> = Vec::with_capacity(cmds.len());
        if cmds.is_empty() {
            return SubmittedBatch {
                replies,
                staged_replies: Vec::new(),
                hazard_reads: Vec::new(),
                wait_indices: Vec::new(),
                first_write_index: None,
                ticket: None,
            };
        }

        /// A mutation staged for the batch's single group-commit append.
        struct StagedWrite {
            index: usize,
            payload: Bytes,
            dirty: memorydb_engine::DirtySet,
            slot: Option<u16>,
            effects: Vec<EffectCmd>,
            reply: Frame,
        }

        let mut staged: Vec<StagedWrite> = Vec::new();
        let mut first_write_index: Option<usize> = None;
        // Read hazards for commands before the first mutation; later reads
        // are covered by the batch's own (newer) log entries.
        let mut hazard_reads: Vec<(usize, EntryId)> = Vec::new();
        let mut wait_indices: Vec<usize> = Vec::new();

        let e2e_start = self.metrics.now_us();
        // Backpressure (§11): block while the in-flight commit window is
        // full, before taking any lock (the pipeline threads need them to
        // drain the window). Attributed to `commit_queue_wait` so the e2e
        // breakdown still closes when the window engages.
        let windowed = self.pipeline.wait_for_window(
            self.ctx.cfg.commit_window_entries,
            self.ctx.cfg.commit_window_bytes,
            self.ctx.cfg.commit_timeout,
        );
        let windowed_us = windowed.as_micros() as u64;
        if windowed_us > 0 {
            self.metrics
                .record_stage(StageId::CommitQueueWait, windowed_us);
        }
        self.metrics.incr(CounterId::BatchesDispatched);
        self.metrics
            .add(CounterId::CommandsDispatched, cmds.len() as u64);

        // Classify before any lock: a batch confined to one stripe takes
        // only that stripe's lock and runs concurrently with batches on
        // other stripes; anything else locks all stripes in ascending order.
        let route = self.classify_batch(cmds);
        let engine_start = self.metrics.now_us();
        let mut guards = match route {
            Some(idx) => self.stripes.lock_one(idx),
            None => {
                self.metrics.incr(CounterId::CrossStripeOps);
                self.stripes.lock_all()
            }
        };
        let lock_acquired_us = self.metrics.now_us();
        let now_ms = wall_ms();
        for e in guards.each() {
            e.set_time_ms(now_ms);
        }
        // `CONFIG SET slowlog-log-slower-than` lands in engine config
        // (broadcast to every stripe); mirror it into the registry's slowlog
        // under the already-held stripe lock.
        if let Some(t) = guards
            .first_ref()
            .config_param("slowlog-log-slower-than")
            .and_then(|v| v.parse::<i64>().ok())
        {
            self.metrics.slowlog().set_threshold_us(t);
        }

        for (i, args) in cmds.iter().enumerate() {
            let Some(cmd_name) = args.first() else {
                replies.push(Frame::error("empty command"));
                continue;
            };
            let name = CmdName::from_arg(cmd_name);

            // WAIT numreplicas timeout: every acknowledged write is already
            // durable across AZs, so any satisfiable replica count is met
            // immediately; reply with the number of gossiping replicas,
            // like MemoryDB. The arguments are still validated like Redis.
            if name == "WAIT" {
                let (Some(raw_replicas), Some(raw_timeout), 3) =
                    (args.get(1), args.get(2), args.len())
                else {
                    replies.push(Frame::error(
                        "ERR wrong number of arguments for 'wait' command",
                    ));
                    continue;
                };
                let numreplicas = String::from_utf8_lossy(raw_replicas).parse::<i64>();
                let timeout_ms = String::from_utf8_lossy(raw_timeout).parse::<i64>();
                replies.push(match (numreplicas, timeout_ms) {
                    (Ok(_), Ok(t)) if t >= 0 => {
                        wait_indices.push(i);
                        Frame::Integer(self.ctx.bus.replica_count(self.ctx.shard_id) as i64)
                    }
                    (Ok(_), Ok(_)) => Frame::error("ERR timeout is negative"),
                    _ => Frame::error("ERR value is not an integer or out of range"),
                });
                continue;
            }

            // INFO at the node level: the engine only knows its keyspace;
            // the replication/cluster sections live here.
            if name == "INFO" {
                let st = self.st.lock();
                replies.push(self.info_reply_locked(&guards, &st, args.get(1)));
                continue;
            }

            // SLOWLOG / LATENCY read the node's metrics registry; the engine
            // only carries empty-shaped fallbacks for standalone use.
            if name == "SLOWLOG" {
                replies.push(self.slowlog_reply(args));
                continue;
            }
            if name == "LATENCY" {
                replies.push(self.latency_reply(args));
                continue;
            }

            let keys = keys_for(args);
            let is_write = command_spec(&name).is_some_and(|s| s.flags.write);
            // Cross-slot detection needs no node state.
            let mut cmd_slot: Option<u16> = None;
            let mut crossslot = false;
            if let Some(keys) = &keys {
                for key in keys {
                    let slot = key_hash_slot(key);
                    match cmd_slot {
                        None => cmd_slot = Some(slot),
                        Some(s) if s != slot => {
                            crossslot = true;
                            break;
                        }
                        _ => {}
                    }
                }
            }

            // Node-state gate, under a short `st` section: the stripe lock
            // (not `st`) is what serializes execution now, so `st` is held
            // only long enough to read the role/lease/slot state. Check
            // order matches the pre-striping single-lock path exactly.
            let gate: Option<Frame> = {
                let st = self.st.lock();
                if st.rebuilding {
                    Some(Frame::Error(
                        "CLUSTERDOWN node is syncing from the transaction log".into(),
                    ))
                } else if let Some(halt) = &st.rs.halted {
                    Some(Frame::Error(
                        format!("CLUSTERDOWN replication halted: {halt}").into(),
                    ))
                } else {
                    match st.role {
                        // A fenced append left executed-but-unlogged
                        // mutations in the engine: serving even a read here
                        // could expose values that the imminent rebuild will
                        // discard (a read-then-unread anomaly the chaos
                        // harness caught).
                        Role::Primary if st.state_poisoned => Some(Frame::Error(
                            "CLUSTERDOWN uncommitted state pending rebuild; demoting".into(),
                        )),
                        // §4.1.3: a primary that cannot keep its lease
                        // voluntarily stops servicing reads and writes.
                        Role::Primary if Instant::now() >= st.lease_valid_until => Some(
                            Frame::Error("CLUSTERDOWN leadership lease expired; demoting".into()),
                        ),
                        Role::Replica if is_write => Some(Frame::Error(
                            format!(
                                "MOVED {} shard-{}",
                                keys.as_ref()
                                    .and_then(|k| k.first())
                                    .map(|k| key_hash_slot(k))
                                    .unwrap_or(0),
                                self.ctx.shard_id
                            )
                            .into(),
                        )),
                        _ if crossslot => Some(Frame::Error(
                            "CROSSSLOT Keys in request don't hash to the same slot".into(),
                        )),
                        _ => match cmd_slot {
                            Some(slot) if !st.rs.owned_slots.contains(slot) => {
                                Some(Frame::Error(format!("MOVED {slot} ?").into()))
                            }
                            Some(slot) if is_write && st.rs.blocked_slots.contains(&slot) => Some(
                                Frame::Error("TRYAGAIN slot ownership transfer in progress".into()),
                            ),
                            _ => None,
                        },
                    }
                }
            };
            if let Some(err) = gate {
                replies.push(err);
                continue;
            }

            // DBSIZE without an all-stripe sweep: the held stripe's live
            // count plus the other stripes' published counters (refreshed on
            // every guard drop). Inside MULTI the command queues like any
            // other and EXEC's all-stripe route answers it exactly.
            if name == "DBSIZE" && !session.in_multi() {
                if args.len() == 1 {
                    let total = if guards.is_all() {
                        guards.dbs().iter().map(|db| db.len()).sum::<usize>()
                    } else {
                        guards.first_ref().db.len() + self.stripes.keys_elsewhere(guards.held_idx())
                    };
                    replies.push(Frame::Integer(total as i64));
                } else {
                    // Arity error, straight from the engine's own gate.
                    replies.push(guards.any_engine().execute_single(args).reply);
                }
                continue;
            }

            let apply_start = self.metrics.now_us();
            let outcome = self.execute_routed(&mut guards, session, &name, args);
            let apply_us = self.metrics.now_us().saturating_sub(apply_start);
            self.metrics.record_stage(StageId::Apply, apply_us);
            if self
                .metrics
                .slowlog()
                .observe(apply_us, (wall_ms() / 1000) as i64, || {
                    args.iter().map(|a| a.to_vec()).collect()
                })
            {
                self.metrics.incr(CounterId::SlowlogRecorded);
            }

            if outcome.effects.is_empty() {
                // Read (or no-op write): key-level hazard check (§3.2).
                // EXEC has no keys of its own; be conservative and use the
                // max pending. A write to this command's keys lives on this
                // same stripe, and writers hold their stripe lock through
                // the fold, so the tracker already carries any hazard our
                // read could have observed.
                let hazard = {
                    let st = self.st.lock();
                    match &keys {
                        Some(ks) if name != "EXEC" => st.tracker.hazard_for(ks.iter()),
                        _ if name == "EXEC" || name == "FLUSHALL" || name == "FLUSHDB" => {
                            st.tracker.max_pending()
                        }
                        _ => None,
                    }
                };
                if let Some(h) = hazard {
                    if first_write_index.is_none() {
                        hazard_reads.push((i, h));
                    }
                    // else: the batch's own entries are newer than any
                    // tracked hazard, so the single batch wait covers it.
                }
                replies.push(outcome.reply);
            } else {
                // Mutation: stage its effect record; the fold happens
                // once, below, while the stripe lock is still held, so log
                // order equals execution order within the stripe (§3.2).
                let record = Record::Effects {
                    version: guards.first_ref().version(),
                    effects: outcome.effects,
                };
                let payload = record.encode_framed();
                // Take the effects back out — encoding borrowed them, so the
                // argument vectors never re-clone on the hot path.
                let effects = match record {
                    Record::Effects { effects, .. } => effects,
                    _ => Vec::new(),
                };
                first_write_index.get_or_insert(i);
                staged.push(StagedWrite {
                    index: i,
                    payload,
                    dirty: outcome.dirty,
                    slot: cmd_slot,
                    effects,
                    reply: outcome.reply,
                });
                // Placeholder until the batch commits durably.
                replies.push(Frame::Null);
            }
        }

        // Group commit, decoupled (§11): fold prospective entry ids under
        // `st` while the stripe lock is still held — within a stripe, log
        // order equals execution order, exactly as the single-lock path
        // did — enqueue one commit ticket, and let the committer thread
        // perform the coalesced conditional append.
        let mut ticket: Option<Arc<Ticket>> = None;
        let mut staged_replies: Vec<(usize, Frame)> = Vec::new();
        // Adaptive group commit (DESIGN.md §13): set when the pipeline was
        // idle at staging time — the submitting connection then appends its
        // own run inline after dropping the locks, instead of bouncing
        // through the flush-token race and the committer thread.
        let mut inline_flush = false;
        let run_stripe: Option<u16> = if guards.is_all() {
            None
        } else {
            Some(guards.held_idx() as u16)
        };
        if !staged.is_empty() {
            let mut st = self.st.lock();
            if st.state_poisoned || st.rebuilding || st.role != Role::Primary {
                // The per-command gate no longer holds `st` through
                // execution, so a fence on another stripe can poison the
                // node mid-batch. These mutations executed but must not
                // fold: they are exactly the executed-but-unlogged state
                // the imminent rebuild discards. Fail their replies (and
                // any earlier hazard reads) like a poisoned ticket would.
                drop(st);
                let first = first_write_index.unwrap_or(replies.len());
                for reply in replies.iter_mut().skip(first) {
                    *reply = Frame::Error(
                        "CLUSTERDOWN uncommitted state pending rebuild; demoting".into(),
                    );
                }
                for &(i, _) in &hazard_reads {
                    if let Some(slot) = replies.get_mut(i) {
                        *slot =
                            Frame::Error("CLUSTERDOWN timed out waiting for hazard commit".into());
                    }
                }
            } else {
                let first_id = st.rs.applied.next();
                let mut payloads: Vec<Bytes> = Vec::with_capacity(staged.len() + 1);
                let mut bytes = 0usize;
                for w in &staged {
                    let id = st.rs.applied.next();
                    fold_appended_payload(&mut st.rs, id, &w.payload, false);
                    st.rs.mark_dirty(&w.dirty);
                    st.tracker.stage(id, &w.dirty);
                    bytes += w.payload.len();
                    payloads.push(w.payload.clone());
                }
                st.effects_since_probe += staged.len() as u64;
                if st.effects_since_probe >= self.ctx.cfg.checksum_probe_every {
                    st.effects_since_probe = 0;
                    let probe = Record::ChecksumProbe {
                        crc: st.rs.running_crc,
                    }
                    .encode_framed();
                    let pid = st.rs.applied.next();
                    fold_appended_payload(&mut st.rs, pid, &probe, true);
                    bytes += probe.len();
                    payloads.push(probe);
                }
                // Mirror to migration targets if these slots are being moved
                // (§5.2). Sent while holding the stripe lock so the target
                // observes effects in execution order.
                for w in &staged {
                    if let Some(slot) = w.slot {
                        if let Some(target) = st.forward.get(&slot).cloned() {
                            let _ = target.ingest_effects(&w.effects, true);
                        }
                    }
                }
                let now_us = self.metrics.now_us();
                // Idle/busy decision from the in-flight ticket count (never
                // a wall-clock sleep): with nothing staged and no window
                // claims outstanding, this connection appends inline. `st`
                // is held, and every staging site holds `st`, so no run can
                // slip in between this check and ours. Lock order st < q
                // makes the pipeline probe safe here.
                let idle =
                    allow_inline && self.ctx.cfg.flush_idle_fastpath && self.pipeline.is_idle();
                let t = Ticket::new(TicketSpec {
                    last_id: st.rs.applied,
                    entries: payloads.len(),
                    bytes,
                    epoch: st.rs.epoch,
                    deadline: Instant::now() + self.ctx.cfg.commit_timeout,
                    e2e_start_us: e2e_start,
                    now_us,
                    attributed: true,
                });
                // Staged while `st` is held: queue order is fold order,
                // which the committer's fencing argument relies on. The
                // idle path skips the committer wakeup — the submitting
                // thread flushes this run itself right after unlocking.
                let run = StagedRun {
                    ticket: Arc::clone(&t),
                    payloads,
                    first_id,
                    stripe: run_stripe,
                };
                if idle {
                    self.pipeline.stage_quiet(run);
                    inline_flush = true;
                } else {
                    self.pipeline.stage(run);
                }
                staged_replies = staged.into_iter().map(|w| (w.index, w.reply)).collect();
                ticket = Some(t);
            }
        } else if let Some(h) = hazard_reads.iter().map(|&(_, h)| h).max() {
            // Read-only batch with hazards: ride the staged queue with an
            // empty run so a fence poisons it in submission order — the
            // hazard ids are prospective, and after a fence another
            // leader's entry may occupy them, so `is_durable` alone cannot
            // clear these reads. Staged under `st` like the write path: a
            // fence can land between execution and here, and an unpoisoned
            // hazard run staged after the poison drain would wait out its
            // full deadline against ids another leader may now own.
            let st = self.st.lock();
            if st.state_poisoned || st.rebuilding || st.role != Role::Primary {
                drop(st);
                for &(i, _) in &hazard_reads {
                    if let Some(slot) = replies.get_mut(i) {
                        *slot =
                            Frame::Error("CLUSTERDOWN timed out waiting for hazard commit".into());
                    }
                }
            } else {
                let now_us = self.metrics.now_us();
                let t = Ticket::new(TicketSpec {
                    last_id: h,
                    entries: 0,
                    bytes: 0,
                    epoch: st.rs.epoch,
                    deadline: Instant::now() + self.ctx.cfg.commit_timeout,
                    e2e_start_us: e2e_start,
                    now_us,
                    attributed: true,
                });
                self.pipeline.stage(StagedRun {
                    ticket: Arc::clone(&t),
                    payloads: Vec::new(),
                    first_id: EntryId(0),
                    stripe: run_stripe,
                });
                ticket = Some(t);
            }
        }

        drop(guards);
        let lock_dropped_us = self.metrics.now_us();
        let held_us = lock_dropped_us.saturating_sub(lock_acquired_us);
        // Both views of the same span: `engine_lock_hold` keeps its historic
        // name for existing dashboards; `stripe_lock_hold` is the per-stripe
        // serving-lock hold the striping work gates on.
        self.metrics.record_stage(StageId::EngineLockHold, held_us);
        self.metrics.record_stage(StageId::StripeLockHold, held_us);
        self.metrics.record_stage(
            StageId::Engine,
            lock_dropped_us.saturating_sub(engine_start),
        );
        match &ticket {
            // Re-stamp queue entry so the `commit_queue_wait` span starts
            // where the `engine` span ends (no double counting). When the
            // pipeline already resolved the ticket — committer, quorum, and
            // completer all outran this thread's bookkeeping — the reply
            // could not have shipped before now, so this thread records the
            // spans with the lock drop as the end stamp.
            Some(t) => {
                if t.note_unlocked(lock_dropped_us) && t.attributed {
                    self.record_ticket_spans(t, lock_dropped_us);
                }
                if inline_flush {
                    self.flush_inline_idle();
                } else {
                    self.try_self_flush();
                }
            }
            // No pipeline involvement: the batch is complete right now.
            None => self
                .metrics
                .record_stage(StageId::E2e, lock_dropped_us.saturating_sub(e2e_start)),
        }

        SubmittedBatch {
            replies,
            staged_replies,
            hazard_reads,
            wait_indices,
            first_write_index,
            ticket,
        }
    }

    // ---------------------------------------------------------------------
    // Stripe routing (DESIGN.md §12)
    // ---------------------------------------------------------------------

    /// Classifies a batch by the stripes its commands touch: `Some(idx)`
    /// when every command is confined to stripe `idx` (the single-stripe
    /// fast path), `None` when any command needs the all-stripe route.
    /// Pure — runs before any lock is taken, so misrouting is impossible
    /// to race into: keys hash to the same stripe no matter who computes it.
    fn classify_batch(&self, cmds: &[Vec<Bytes>]) -> Option<usize> {
        let n = self.stripes.count();
        if n == 1 {
            return Some(0);
        }
        let mut stripe: Option<usize> = None;
        for args in cmds {
            let Some(cmd_name) = args.first() else {
                continue; // empty commands error without touching the keyspace
            };
            let name = CmdName::from_arg(cmd_name);
            if FORCE_ALL_STRIPES.contains(&name.as_str()) {
                return None;
            }
            // DBSIZE is answered from any held stripe (live count plus the
            // other stripes' published counters) — stripe-agnostic.
            if name == "DBSIZE" {
                continue;
            }
            // RANDOMKEY: pre-pick a count-weighted stripe so the overall key
            // distribution matches the unstriped engine; a batch whose other
            // commands live elsewhere degrades to the all-stripe route,
            // where `randomkey_striped` still answers exactly.
            if name == "RANDOMKEY" && args.len() == 1 {
                let s = self.stripes.weighted_random_stripe();
                match stripe {
                    None => stripe = Some(s),
                    Some(prev) if prev != s => return None,
                    _ => {}
                }
                continue;
            }
            // Visit the keys without collecting them — classification only
            // needs each key's stripe, never the key itself.
            let mut conflict = false;
            let visited = for_each_key(args, |key| {
                let s = stripe_of(key_hash_slot(key), n);
                match stripe {
                    None => stripe = Some(s),
                    Some(prev) if prev != s => conflict = true,
                    _ => {}
                }
            });
            if conflict {
                return None;
            }
            match visited {
                Some(k) if k > 0 => {}
                _ => {
                    // Keyless or unknown: only the known session-/node-local
                    // commands are safe on one stripe; everything else gets
                    // the conservative all-stripe route.
                    if !STRIPE_AGNOSTIC.contains(&name.as_str()) {
                        return None;
                    }
                }
            }
        }
        Some(stripe.unwrap_or(0))
    }

    /// Executes one client command against the held stripe set. On the
    /// single-stripe route the classification already proved every key
    /// lives on the held stripe, so this is a plain engine call; on the
    /// all-stripe route, fan-out commands visit every stripe and keyed
    /// commands their owning stripe.
    fn execute_routed(
        &self,
        guards: &mut StripeGuards<'_>,
        session: &mut SessionState,
        name: &str,
        args: &[Bytes],
    ) -> ExecOutcome {
        if !guards.is_all() || guards.stripe_count() == 1 {
            return guards.any_engine().execute(session, args);
        }
        if name == "EXEC" {
            return self.exec_striped(guards, session);
        }
        if session.in_multi() {
            // Queueing (and the MULTI-nesting / WATCH-inside-MULTI errors)
            // is session state only; no keyspace is touched until EXEC.
            return guards.any_engine().execute(session, args);
        }
        match name {
            "FLUSHALL" | "FLUSHDB" | "DBSIZE" | "KEYS" | "SCAN" | "RANDOMKEY" | "CONFIG"
            | "SCRIPT" | "EVAL" | "EVALSHA" => Self::execute_single_routed(guards, args),
            _ => match keys_for(args).as_ref().and_then(|k| k.first()) {
                // Keys past the first share its slot (the CROSSSLOT gate
                // already ran), hence its stripe — WATCH included.
                Some(key) => {
                    let slot = key_hash_slot(key);
                    guards.engine_for_slot(slot).execute(session, args)
                }
                None => guards.any_engine().execute(session, args),
            },
        }
    }

    /// Node-level `EXEC` for the all-stripe route: mirrors the engine's
    /// `exec_transaction` exactly, but routes each watch validation and
    /// each queued command to the stripe owning its keys, so a transaction
    /// may span stripes while its effects stay one atomic log record.
    fn exec_striped(
        &self,
        guards: &mut StripeGuards<'_>,
        session: &mut SessionState,
    ) -> ExecOutcome {
        if !session.in_multi() {
            return ExecOutcome::error("EXEC without MULTI");
        }
        let (queued, queue_error, watches) = session.take_transaction();
        if queue_error {
            return ExecOutcome::read(Frame::Error(
                "EXECABORT Transaction discarded because of previous errors.".into(),
            ));
        }
        // WATCH validation: any watched key modified since WATCH aborts.
        // Each key's version lives on its owning stripe.
        let aborted = watches
            .iter()
            .any(|(key, ver)| guards.engine_for_slot(key_hash_slot(key)).db.version(key) != *ver);
        if aborted {
            return ExecOutcome::read(Frame::Null);
        }
        let mut replies = Vec::with_capacity(queued.len());
        let mut effects: Vec<EffectCmd> = Vec::new();
        let mut dirty = DirtySet::None;
        for cmd in &queued {
            let out = Self::execute_single_routed(guards, cmd);
            replies.push(out.reply);
            effects.extend(out.effects);
            dirty.merge(out.dirty);
        }
        // The whole transaction's effects form one atomic replication unit,
        // exactly like the single-engine EXEC.
        ExecOutcome::write(Frame::Array(replies), effects, dirty)
    }

    /// One already-validated command on the all-stripe route, without
    /// session semantics: queued `EXEC` bodies and script-inner commands
    /// (the engine rejects MULTI/EXEC/WATCH at queue/interpreter time, so
    /// none of those reach here). Fan-out commands visit every stripe;
    /// keyed commands run on their owning stripe.
    fn execute_single_routed(guards: &mut StripeGuards<'_>, cmd: &[Bytes]) -> ExecOutcome {
        let Some(first) = cmd.first() else {
            return ExecOutcome::error("empty command");
        };
        let name = CmdName::from_arg(first);
        match name.as_str() {
            "FLUSHALL" | "FLUSHDB" => Self::flush_striped(guards, cmd),
            "DBSIZE" => Self::dbsize_striped(guards, cmd),
            "KEYS" => Self::keys_striped(guards, cmd),
            "SCAN" => Self::scan_striped(guards, cmd),
            "RANDOMKEY" => Self::randomkey_striped(guards, cmd),
            // Broadcast so per-stripe configs and script caches stay
            // identical (both are node-local, never replicated); the
            // replies are deterministic and equal, keep the first.
            "CONFIG" | "SCRIPT" => Self::broadcast_striped(guards, cmd),
            "EVAL" | "EVALSHA" => Self::eval_striped(guards, &name, cmd),
            _ => match keys_for(cmd).as_ref().and_then(|k| k.first()) {
                Some(key) => {
                    let slot = key_hash_slot(key);
                    guards.engine_for_slot(slot).execute_single(cmd)
                }
                None => guards.any_engine().execute_single(cmd),
            },
        }
    }

    /// `FLUSHALL`/`FLUSHDB` across every stripe: one merged effect record
    /// iff any stripe actually dropped keys, matching the single-engine
    /// no-op rule (an empty database flush replicates nothing).
    fn flush_striped(guards: &mut StripeGuards<'_>, args: &[Bytes]) -> ExecOutcome {
        let mut reply: Option<Frame> = None;
        let mut dirty = DirtySet::None;
        let mut any_effect = false;
        for e in guards.each() {
            let out = e.execute_single(args);
            if !out.effects.is_empty() {
                any_effect = true;
                dirty.merge(out.dirty);
            }
            reply.get_or_insert(out.reply);
        }
        let reply = reply.unwrap_or_else(Frame::ok);
        if any_effect {
            let name_only: Vec<Bytes> = args.iter().take(1).cloned().collect();
            ExecOutcome::write(reply, vec![name_only], dirty)
        } else {
            ExecOutcome::read(reply)
        }
    }

    /// `DBSIZE`: the sum of every stripe's key count.
    fn dbsize_striped(guards: &mut StripeGuards<'_>, args: &[Bytes]) -> ExecOutcome {
        let mut total: i64 = 0;
        for e in guards.each() {
            match e.execute_single(args).reply {
                Frame::Integer(v) => total += v,
                other => return ExecOutcome::read(other), // arity error
            }
        }
        ExecOutcome::read(Frame::Integer(total))
    }

    /// `KEYS pattern`: the concatenation of every stripe's matches (like
    /// Redis, the order is unspecified).
    fn keys_striped(guards: &mut StripeGuards<'_>, args: &[Bytes]) -> ExecOutcome {
        let mut all: Vec<Frame> = Vec::new();
        for e in guards.each() {
            match e.execute_single(args).reply {
                Frame::Array(mut items) => all.append(&mut items),
                other => return ExecOutcome::read(other), // arity error
            }
        }
        ExecOutcome::read(Frame::Array(all))
    }

    /// `SCAN` with a composite cursor: the high bits select the stripe, the
    /// low 48 the stripe-local cursor. A stripe's exhausted cursor (inner
    /// 0) advances to the next stripe; the final stripe's yields cursor 0,
    /// completing the iteration exactly once like a single-engine SCAN.
    fn scan_striped(guards: &mut StripeGuards<'_>, args: &[Bytes]) -> ExecOutcome {
        const INNER_BITS: u32 = 48;
        const INNER_MASK: u64 = (1 << INNER_BITS) - 1;
        let Some(raw) = args.get(1) else {
            return guards.any_engine().execute_single(args); // arity error
        };
        let Ok(cursor) = String::from_utf8_lossy(raw).parse::<u64>() else {
            return guards.any_engine().execute_single(args); // invalid cursor
        };
        let mut stripe = (cursor >> INNER_BITS) as usize;
        let mut inner = cursor & INNER_MASK;
        let n = guards.stripe_count();
        if stripe >= n {
            // A stale cursor past the last stripe (e.g. the stripe count
            // shrank between calls): terminate cleanly.
            return ExecOutcome::read(Frame::Array(vec![
                Frame::Bulk(Bytes::from_static(b"0")),
                Frame::Array(Vec::new()),
            ]));
        }
        loop {
            let mut sub = args.to_vec();
            if let Some(slot) = sub.get_mut(1) {
                *slot = Bytes::from(inner.to_string());
            }
            let out = guards.engine_at(stripe).execute_single(&sub);
            match out.reply {
                Frame::Array(mut items) => {
                    let next_inner = match items.first() {
                        Some(Frame::Bulk(raw)) => {
                            String::from_utf8_lossy(raw).parse::<u64>().unwrap_or(0)
                        }
                        _ => 0,
                    };
                    let batch_empty = matches!(items.get(1), Some(Frame::Array(b)) if b.is_empty());
                    if next_inner == 0 && batch_empty && stripe + 1 < n {
                        // Exhausted stripe, nothing to return: fast-forward
                        // to the next stripe inside this call. Without this,
                        // a cursor gone stale mid-scan (FLUSHDB emptied the
                        // keyspace) hands the client one empty page with a
                        // nonzero cursor per remaining stripe before finally
                        // reaching 0.
                        stripe += 1;
                        inner = 0;
                        continue;
                    }
                    let next = if next_inner != 0 {
                        ((stripe as u64) << INNER_BITS) | (next_inner & INNER_MASK)
                    } else if stripe + 1 < n {
                        ((stripe as u64) + 1) << INNER_BITS
                    } else {
                        0
                    };
                    if let Some(slot) = items.get_mut(0) {
                        *slot = Frame::Bulk(Bytes::from(next.to_string()));
                    }
                    return ExecOutcome::read(Frame::Array(items));
                }
                other => return ExecOutcome::read(other), // bad MATCH/COUNT arguments
            }
        }
    }

    /// `RANDOMKEY`: pick a stripe weighted by its key count (so the overall
    /// distribution matches the unstriped engine), then delegate.
    fn randomkey_striped(guards: &mut StripeGuards<'_>, args: &[Bytes]) -> ExecOutcome {
        if args.len() != 1 {
            return guards.any_engine().execute_single(args); // arity error
        }
        let per: Vec<usize> = guards.dbs().iter().map(|db| db.len()).collect();
        let total: usize = per.iter().sum();
        if total == 0 {
            return ExecOutcome::read(Frame::Null);
        }
        let mut pick = guards.any_engine().rand_index(total);
        let mut idx = 0usize;
        for (i, len) in per.iter().enumerate() {
            if pick < *len {
                idx = i;
                break;
            }
            pick -= len;
        }
        guards.engine_at(idx).execute_single(args)
    }

    /// Runs `args` on every stripe, returning the first stripe's outcome
    /// (CONFIG/SCRIPT are deterministic and node-local, so the outcomes are
    /// identical — the broadcast only keeps the per-stripe state in sync).
    fn broadcast_striped(guards: &mut StripeGuards<'_>, args: &[Bytes]) -> ExecOutcome {
        let mut first: Option<ExecOutcome> = None;
        for e in guards.each() {
            let out = e.execute_single(args);
            first.get_or_insert(out);
        }
        first.unwrap_or_else(|| ExecOutcome::error("empty command"))
    }

    /// `EVAL`/`EVALSHA` against the full stripe set: resolve `EVALSHA` to
    /// its cached source (any stripe's cache — they are broadcast-identical)
    /// and interpret with a [`StripedHost`] routing each inner command.
    fn eval_striped(guards: &mut StripeGuards<'_>, name: &str, args: &[Bytes]) -> ExecOutcome {
        if args.len() < 3 {
            return guards.any_engine().execute_single(args); // arity error
        }
        let mut eargs = args.to_vec();
        if name == "EVALSHA" {
            let sha = eargs
                .get(1)
                .map(|b| String::from_utf8_lossy(b).to_ascii_lowercase())
                .unwrap_or_default();
            let Some(src) = guards.first_ref().script_source(&sha) else {
                return ExecOutcome::read(Frame::Error(
                    "NOSCRIPT No matching script. Please use EVAL.".into(),
                ));
            };
            if let Some(slot) = eargs.get_mut(1) {
                *slot = src;
            }
        }
        eval_on_host(&mut StripedHost { guards }, &eargs)
    }

    /// Upper bound on any single ticket wait: generous enough that the
    /// pipeline threads always resolve first (the completer enforces
    /// `commit_timeout`), yet finite so a caller can never hang even if
    /// the node died mid-flight.
    fn ticket_wait_cap(&self) -> Duration {
        self.ctx.cfg.commit_timeout * 2 + Duration::from_secs(1)
    }

    /// Blocks until the batch's ticket resolves and returns the final
    /// replies (the blocking half of the submit/finish split).
    pub fn wait_finish(&self, sb: SubmittedBatch) -> Vec<Frame> {
        let outcome = sb.ticket.as_ref().map(|t| {
            t.wait(self.ticket_wait_cap())
                .unwrap_or(TicketOutcome::TimedOut)
        });
        self.finish_batch(sb, outcome)
    }

    /// Non-blocking finish: the final replies if the batch's ticket has
    /// resolved, or the batch handed back for re-parking.
    pub fn try_finish(&self, sb: SubmittedBatch) -> Result<Vec<Frame>, SubmittedBatch> {
        match &sb.ticket {
            None => Ok(self.finish_batch(sb, None)),
            Some(t) => match t.outcome() {
                Some(o) => Ok(self.finish_batch(sb, Some(o))),
                None => Err(sb),
            },
        }
    }

    /// Installs or poisons the parked replies according to the ticket's
    /// outcome — the same reply rules the synchronous path enforced.
    fn finish_batch(&self, sb: SubmittedBatch, outcome: Option<TicketOutcome>) -> Vec<Frame> {
        let SubmittedBatch {
            mut replies,
            staged_replies,
            hazard_reads,
            wait_indices,
            first_write_index,
            ticket,
        } = sb;
        match outcome {
            None => {}
            Some(TicketOutcome::Durable) => {
                for (i, r) in staged_replies {
                    if let Some(slot) = replies.get_mut(i) {
                        *slot = r;
                    }
                }
            }
            Some(TicketOutcome::Poisoned(e)) => {
                // The rebuild will discard everything from the first staged
                // mutation on, and later commands in the batch observed
                // that state — none of their replies may be released.
                let first = first_write_index.unwrap_or(replies.len());
                for reply in replies.iter_mut().skip(first) {
                    *reply = Frame::Error(
                        format!("CLUSTERDOWN cannot commit to transaction log ({e}); demoting")
                            .into(),
                    );
                }
                // Hazard ids are prospective: after a fence another
                // leader's entry may occupy them, so `is_durable` cannot
                // vouch for these reads — error them all.
                for &(i, _) in &hazard_reads {
                    if let Some(slot) = replies.get_mut(i) {
                        *slot =
                            Frame::Error("CLUSTERDOWN timed out waiting for hazard commit".into());
                    }
                }
            }
            Some(TicketOutcome::TimedOut) => {
                if let Some(first) = first_write_index {
                    for reply in replies.iter_mut().skip(first) {
                        *reply = Frame::Error(
                            "CLUSTERDOWN write could not be committed durably; demoting".into(),
                        );
                    }
                    // WAIT asks "how many replicas hold this write" — on a
                    // timeout the count achieved so far IS the answer, not
                    // an ambiguous-commit error (Redis semantics: WAIT
                    // returns the replica count reached when its timeout
                    // expires). Restore those replies after the blanket
                    // overwrite above.
                    if !wait_indices.is_empty() {
                        let acked = ticket
                            .as_ref()
                            .map_or(0, |t| self.ctx.log.acked_count(t.last_id()))
                            as i64;
                        for &i in &wait_indices {
                            if i >= first {
                                if let Some(slot) = replies.get_mut(i) {
                                    *slot = Frame::Integer(acked);
                                }
                            }
                        }
                    }
                }
                // A timed-out ticket's entries were genuinely appended (it
                // reached the committed queue), so settling each hazard
                // against `is_durable` is sound here.
                self.settle_hazard_reads(&mut replies, &hazard_reads);
            }
        }
        replies
    }

    /// After a failed batch wait: reads whose individual hazard did commit
    /// keep their replies; the rest get the single-command timeout error.
    fn settle_hazard_reads(&self, replies: &mut [Frame], hazard_reads: &[(usize, EntryId)]) {
        for &(i, h) in hazard_reads {
            if !self.ctx.log.is_durable(h) {
                if let Some(slot) = replies.get_mut(i) {
                    *slot = Frame::Error("CLUSTERDOWN timed out waiting for hazard commit".into());
                }
            }
        }
    }

    // ---------------------------------------------------------------------
    // Commit pipeline threads (DESIGN.md §11)
    // ---------------------------------------------------------------------

    /// Folds one control payload (no tracker entry) into the prospective
    /// tail and stages it. Caller holds `st` and has already checked
    /// role / poison / rebuild state.
    fn stage_control_locked(&self, st: &mut NodeState, payload: Bytes) -> Arc<Ticket> {
        let id = st.rs.applied.next();
        fold_appended_payload(&mut st.rs, id, &payload, false);
        let now_us = self.metrics.now_us();
        let ticket = Ticket::new(TicketSpec {
            last_id: id,
            entries: 1,
            bytes: payload.len(),
            epoch: st.rs.epoch,
            deadline: Instant::now() + self.ctx.cfg.commit_timeout,
            e2e_start_us: now_us,
            now_us,
            attributed: false,
        });
        self.pipeline.stage(StagedRun {
            ticket: Arc::clone(&ticket),
            payloads: vec![payload],
            first_id: id,
            stripe: None,
        });
        ticket
    }

    /// Like [`Node::stage_control_locked`] but for an effects record whose
    /// dirty keys must be hazard-tracked until commit. `stripe` carries the
    /// single held stripe (the caller must hold that stripe's guard while
    /// staging) so the committer's per-stripe fold-order check applies;
    /// `None` means the caller holds every stripe.
    fn stage_effects_locked(
        &self,
        st: &mut NodeState,
        payload: Bytes,
        dirty: &memorydb_engine::DirtySet,
        stripe: Option<u16>,
    ) -> Arc<Ticket> {
        let id = st.rs.applied.next();
        fold_appended_payload(&mut st.rs, id, &payload, false);
        st.rs.mark_dirty(dirty);
        st.tracker.stage(id, dirty);
        let now_us = self.metrics.now_us();
        let ticket = Ticket::new(TicketSpec {
            last_id: id,
            entries: 1,
            bytes: payload.len(),
            epoch: st.rs.epoch,
            deadline: Instant::now() + self.ctx.cfg.commit_timeout,
            e2e_start_us: now_us,
            now_us,
            attributed: false,
        });
        self.pipeline.stage(StagedRun {
            ticket: Arc::clone(&ticket),
            payloads: vec![payload],
            first_id: id,
            stripe,
        });
        ticket
    }

    /// Committer thread: drains every staged run and performs **one**
    /// coalesced conditional append per drain, chained after the
    /// prospective tail of the first run. The conditional-append fencing
    /// contract is preserved: if another leader slipped an entry in, the
    /// whole flush conflicts and every staged ticket poisons.
    ///
    /// Submitting threads usually beat this thread to the flush (see
    /// [`Node::try_self_flush`]); it remains the fallback that guarantees
    /// staged runs never linger when every submitter has parked.
    fn committer_loop(self: Arc<Node>) {
        loop {
            if !self.pipeline.wait_for_staged(Duration::from_millis(50))
                && !self.alive.load(Ordering::SeqCst)
            {
                // Final sweep: flush anything that raced in, then exit.
                let token = self.flush_token.lock();
                let rest = self.pipeline.take_staged_now();
                if rest.is_empty() {
                    return;
                }
                self.flush_runs(rest);
                drop(token);
                continue;
            }
            let token = self.flush_token.lock();
            let runs = self.pipeline.take_staged_now();
            if !runs.is_empty() {
                self.flush_runs(runs);
            }
            drop(token);
        }
    }

    /// Group-commit leader election: the submitting thread flushes the
    /// staged queue itself when no other flush is in progress, sparing the
    /// committer-thread handoff on the uncontended path (on a small host
    /// every saved wakeup is throughput). Contended submitters just park on
    /// their tickets — the current leader's drain or the committer picks
    /// their runs up. Leadership is a *single* drain pass: looping here
    /// traps one submitter (in the multiplexed server, an IO thread)
    /// flushing everyone else's runs while its own connections starve;
    /// whatever stages mid-flush belongs to the committer thread, which
    /// `stage()` has already woken. Drain+append stays serialized under
    /// `flush_token`, so log order still equals fold order.
    fn try_self_flush(&self) {
        let Some(token) = self.flush_token.try_lock() else {
            return;
        };
        let runs = self.pipeline.take_staged_now();
        if !runs.is_empty() {
            self.flush_runs(runs);
        }
        drop(token);
    }

    /// The adaptive group-commit idle fast path (DESIGN.md §13): the
    /// pipeline was idle when this connection staged its run, so it appends
    /// the run itself — no committer wakeup, no try-lock bounce. The
    /// blocking acquire is safe precisely because the queue was empty at
    /// staging time: any concurrent token holder is draining at most a
    /// straggler sweep. BLOCKING: must not be called with a stripe guard or
    /// `st` held (the analyzer's lock-discipline pass enforces the former).
    fn flush_inline_idle(&self) {
        let token = self.flush_token.lock();
        let runs = self.pipeline.take_staged_now();
        if !runs.is_empty() {
            self.flush_runs(runs);
        }
        drop(token);
    }

    /// One coalesced flush of staged runs (committer thread body).
    fn flush_runs(&self, runs: Vec<StagedRun>) {
        // Per-stripe fold order: write runs staged from one stripe must
        // carry strictly ascending first ids — queue order is fold order
        // restricted to that stripe (the striping invariant DESIGN.md §12
        // rests on). All-stripe runs (`stripe: None`) serialize globally.
        debug_assert!(
            {
                let mut last: HashMap<u16, u64> = HashMap::new();
                runs.iter()
                    .filter(|r| !r.payloads.is_empty())
                    .all(|r| match r.stripe {
                        Some(s) => last
                            .insert(s, r.first_id.0)
                            .is_none_or(|prev| prev < r.first_id.0),
                        None => true,
                    })
            },
            "staged runs out of per-stripe fold order"
        );
        let mut payloads: Vec<Bytes> = Vec::new();
        let mut first_id: Option<EntryId> = None;
        let mut write_runs: u64 = 0;
        for run in &runs {
            if !run.payloads.is_empty() {
                first_id.get_or_insert(run.first_id);
                write_runs += 1;
                payloads.extend(run.payloads.iter().cloned());
            }
        }
        // Hazard-only runs have nothing to append; they ride straight to
        // the committed queue (their hazards were appended by earlier
        // flushes, or this one).
        if let Some(first) = first_id {
            if let Err(e) =
                self.ctx
                    .log
                    .append_batch_after(self.id, EntryId(first.0 - 1), &payloads)
            {
                self.poison_pipeline(e.to_string(), runs);
                return;
            }
            self.metrics
                .record_stage(StageId::CommitFlushEntries, payloads.len() as u64);
            if write_runs > 1 {
                // Appends saved vs the one-append-per-batch world.
                self.metrics
                    .add(CounterId::AppendsCoalesced, write_runs - 1);
            }
        }
        // Attribution happens at resolve time (the enqueued→appended span
        // is only meaningful once `note_unlocked` has re-stamped the queue
        // entry; this flush can race ahead of the client's lock drop).
        let appended_us = self.metrics.now_us();
        let mut oldest_enqueued = u64::MAX;
        for run in &runs {
            // Release pairs with the completer's Acquire in
            // record_ticket_spans: a nonzero appended stamp guarantees the
            // enqueue stamp it is compared against is visible too.
            run.ticket.appended_us.store(appended_us, Ordering::Release);
            if run.ticket.attributed && !run.payloads.is_empty() {
                oldest_enqueued =
                    oldest_enqueued.min(run.ticket.enqueued_us.load(Ordering::Acquire));
            }
        }
        if first_id.is_some() && oldest_enqueued != u64::MAX {
            // Realized flush-window width: how long the oldest client run
            // in this flush sat staged before the append handoff. ~0 on
            // the idle fast path; widens with coalescing under load.
            self.metrics.record_stage(
                StageId::FlushWindow,
                appended_us.saturating_sub(oldest_enqueued),
            );
        }
        // Anything the log already committed (zero-latency quorums promote
        // inline during the append) resolves right here, in submission
        // order, sparing a completer-thread handoff per flush. The rest
        // waits on the watermark like before.
        let tail = self.ctx.log.committed_tail();
        let mut waiting: Vec<Arc<Ticket>> = Vec::new();
        let mut resolve_now: Vec<Arc<Ticket>> = Vec::new();
        for run in runs {
            if run.ticket.last_id() <= tail {
                resolve_now.push(run.ticket);
            } else {
                waiting.push(run.ticket);
            }
        }
        if !resolve_now.is_empty() {
            let (fenced, epoch) = self.ack_fence(tail);
            for t in resolve_now {
                if fenced || t.epoch != epoch {
                    self.resolve_ticket(&t, TicketOutcome::TimedOut);
                } else {
                    self.resolve_ticket(&t, TicketOutcome::Durable);
                }
            }
        }
        self.pipeline.push_committed(waiting);
    }

    /// Pipelined-quorum fencing (DESIGN.md §13), read under `st` at every
    /// watermark advance (the committed tracker advances in the same
    /// critical section). Returns `(fenced, current_epoch)`: when `fenced`,
    /// or when a ticket's staged epoch differs from `current_epoch`, the
    /// ticket must NOT resolve durable — a demoted, poisoned, or rebuilding
    /// node may no longer ack batches staged under a lease it has lost,
    /// even if those batches went on to commit. They resolve ambiguous
    /// (`TimedOut`) instead: the entries really are in the log, but this
    /// node's parked replies were computed against state the rebuild
    /// discards.
    fn ack_fence(&self, tail: EntryId) -> (bool, u64) {
        let mut st = self.st.lock();
        st.tracker.advance_committed(tail);
        (
            st.state_poisoned || st.rebuilding || st.demote_requested || st.role != Role::Primary,
            st.rs.epoch,
        )
    }

    /// A fenced or partitioned coalesced append: demote, poison the engine
    /// state (exactly like the synchronous path), and fail every staged
    /// ticket. The flags are set under `st` *before* draining the queue,
    /// and staging checks them under `st`, so no run can slip into the
    /// queue unpoisoned afterwards.
    fn poison_pipeline(&self, err: String, drained: Vec<StagedRun>) {
        {
            let mut st = self.st.lock();
            st.demote_requested = true;
            st.state_poisoned = true;
        }
        let rest = self.pipeline.take_staged_now();
        for run in drained.into_iter().chain(rest) {
            self.resolve_ticket(&run.ticket, TicketOutcome::Poisoned(err.clone()));
        }
    }

    /// Resolves a ticket: releases its in-flight window claim, records its
    /// attribution spans (unless the staging thread has not yet dropped
    /// its stripe lock(s), in which case it records them), and fires its
    /// waker. Span recording happens before any waiter can observe the
    /// outcome, so a released reply never outruns its own metrics.
    pub(crate) fn resolve_ticket(&self, ticket: &Arc<Ticket>, outcome: TicketOutcome) {
        let resolved_us = self.metrics.now_us();
        // Exactly-once window release: resolution paths can race (the
        // flush leader's inline resolve, the completer's watermark pass,
        // the poison drain), and `resolve` only dedupes the outcome — a
        // second caller must not return the window claim again, or the
        // in-flight accounting undercounts and backpressure opens early.
        if ticket.begin_release() {
            self.pipeline.release_window(ticket.entries, ticket.bytes);
        }
        ticket.resolve(outcome, |unlocked| {
            if unlocked && ticket.attributed {
                self.record_ticket_spans(ticket, resolved_us);
            }
        });
    }

    /// Attribution for one resolved ticket, ending at `end_us`: the
    /// `commit_queue_wait` span runs from the engine-lock drop to the
    /// committer's append, `durability` from the append to resolution, and
    /// `e2e` covers the whole batch. Stamps are clamped so the spans tile
    /// e2e without overlapping `engine` regardless of which thread won the
    /// race to record them.
    fn record_ticket_spans(&self, ticket: &Ticket, end_us: u64) {
        let appended = ticket.appended_us.load(Ordering::Acquire);
        if appended != 0 {
            let enqueued = ticket.enqueued_us.load(Ordering::Acquire);
            self.metrics
                .record_stage(StageId::CommitQueueWait, appended.saturating_sub(enqueued));
            self.metrics.record_stage(
                StageId::Durability,
                end_us.saturating_sub(appended.max(enqueued)),
            );
        }
        self.metrics
            .record_stage(StageId::E2e, end_us.saturating_sub(ticket.e2e_start_us));
    }

    /// Completer thread: watches the log's commit watermark and resolves
    /// appended tickets — durable once the watermark passes their last
    /// entry, timed out past their deadline (which requests demotion,
    /// matching the synchronous path's ambiguous-commit handling).
    fn completer_loop(self: Arc<Node>) {
        loop {
            let Some((target, deadline)) = self.pipeline.next_wait_target() else {
                if !self.alive.load(Ordering::SeqCst) {
                    return;
                }
                self.pipeline
                    .wait_for_committed_work(Duration::from_millis(50));
                continue;
            };
            let slice = deadline
                .saturating_duration_since(Instant::now())
                .min(Duration::from_millis(50));
            let tail = self.ctx.log.wait_committed_at_least(target, slice);
            let (durable, timed_out) = self.pipeline.split_resolved(tail, Instant::now());
            if !durable.is_empty() {
                // Re-validate leadership at the watermark advance: batches
                // pipelined before a demotion may commit after it, and a
                // fenced node must not release their acks (see `ack_fence`).
                let (fenced, epoch) = self.ack_fence(tail);
                for t in &durable {
                    if fenced || t.epoch != epoch {
                        self.resolve_ticket(t, TicketOutcome::TimedOut);
                    } else {
                        self.resolve_ticket(t, TicketOutcome::Durable);
                    }
                }
            }
            if !timed_out.is_empty() {
                self.st.lock().demote_requested = true;
                for t in &timed_out {
                    self.resolve_ticket(t, TicketOutcome::TimedOut);
                }
            }
        }
    }

    /// Builds the `INFO [section]` reply: engine keyspace stats plus the
    /// node's replication and durability state, and — from the metrics
    /// registries — a `stats` counter section and a `latencystats` section
    /// with per-stage latency percentiles (DESIGN.md §10).
    fn info_reply_locked(
        &self,
        guards: &StripeGuards<'_>,
        st: &NodeState,
        section: Option<&Bytes>,
    ) -> Frame {
        let filter = section.map(|s| String::from_utf8_lossy(s).to_ascii_lowercase());
        // Bare INFO keeps its historic shape (no stats sections): existing
        // parsers split on `# ` headers and count sections.
        let wants = |name: &str, by_default: bool| match filter.as_deref() {
            None | Some("default") => by_default,
            Some("all") | Some("everything") => true,
            Some(f) => f == name,
        };
        let role = match st.role {
            Role::Primary => "master",
            Role::Replica => "slave",
        };
        let lease_remaining_ms = if st.role == Role::Primary {
            st.lease_valid_until
                .saturating_duration_since(Instant::now())
                .as_millis() as i64
        } else {
            -1
        };
        let mut text = String::new();
        if wants("server", true) {
            text.push_str(&format!(
                "# Server\r\nredis_version:{version}\r\nengine:memorydb-repro\r\nnode_id:{id}\r\nengine_stripes:{stripes}\r\n",
                version = guards.first_ref().version(),
                id = self.id,
                stripes = guards.stripe_count(),
            ));
        }
        if wants("replication", true) {
            text.push_str(&format!(
                "# Replication\r\nrole:{role}\r\nleader_epoch:{epoch}\r\nknown_leader:{leader}\r\n\
                 applied_log_entry:{applied}\r\ncommitted_log_tail:{committed}\r\n\
                 lease_remaining_ms:{lease_remaining_ms}\r\npending_unacked_keys:{pending}\r\n\
                 halted:{halted}\r\n",
                epoch = st.rs.epoch,
                leader = st
                    .rs
                    .leader
                    .map(|l| l.to_string())
                    .unwrap_or_else(|| "?".into()),
                applied = st.rs.applied.0,
                committed = self.ctx.log.committed_tail().0,
                pending = st.tracker.pending_keys(),
                halted = st
                    .rs
                    .halted
                    .as_ref()
                    .map(|h| h.to_string())
                    .unwrap_or_else(|| "no".into()),
            ));
        }
        if wants("cluster", true) {
            text.push_str(&format!(
                "# Cluster\r\nshard_id:{shard}\r\nowned_slots:{slots}\r\nconnected_replicas:{replicas}\r\n",
                shard = self.ctx.shard_id,
                slots = st.rs.owned_slots.len(),
                replicas = self.ctx.bus.replica_count(self.ctx.shard_id),
            ));
        }
        if wants("keyspace", true) {
            let keys: usize = guards.dbs().iter().map(|db| db.len()).sum();
            text.push_str(&format!("# Keyspace\r\ndb0:keys={keys}\r\n"));
        }
        if wants("memory", true) {
            let used: usize = guards.dbs().iter().map(|db| db.used_memory()).sum();
            text.push_str(&format!("# Memory\r\nused_memory:{used}\r\n"));
        }
        if wants("stats", false) {
            let node = self.metrics.snapshot();
            let log = self.ctx.log.metrics().snapshot();
            text.push_str("# Stats\r\n");
            for (name, v) in &node.counters {
                text.push_str(&format!("{name}:{v}\r\n"));
            }
            for (name, v) in &node.gauges {
                text.push_str(&format!("{name}:{v}\r\n"));
            }
            for (name, v) in &log.counters {
                text.push_str(&format!("txlog_{name}:{v}\r\n"));
            }
            for (name, v) in &log.gauges {
                text.push_str(&format!("txlog_{name}:{v}\r\n"));
            }
        }
        if wants("latencystats", false) {
            text.push_str("# Latencystats\r\n");
            for snap in [self.metrics.snapshot(), self.ctx.log.metrics().snapshot()] {
                for s in &snap.stages {
                    if s.count == 0 {
                        continue;
                    }
                    text.push_str(&format!(
                        "latency_percentiles_usec_{}:p50={},p99={},p99.9={},max={},calls={}\r\n",
                        s.name, s.p50_us, s.p99_us, s.p999_us, s.max_us, s.count
                    ));
                }
            }
        }
        if text.is_empty() {
            // Unknown section: Redis replies with an empty bulk.
            return Frame::Bulk(Bytes::new());
        }
        Frame::Bulk(Bytes::from(text))
    }

    /// `SLOWLOG GET [n] | RESET | LEN`, served from the node registry's
    /// slowlog ring (the engine's SLOWLOG is an empty-shaped fallback).
    fn slowlog_reply(&self, args: &[Bytes]) -> Frame {
        let Some(sub) = args.get(1) else {
            return Frame::error("ERR wrong number of arguments for 'slowlog' command");
        };
        match String::from_utf8_lossy(sub).to_ascii_uppercase().as_str() {
            "GET" => {
                let n = match args.get(2) {
                    Some(raw) => match String::from_utf8_lossy(raw).parse::<i64>() {
                        // Redis: a negative count means "everything".
                        Ok(v) if v < 0 => usize::MAX,
                        Ok(v) => v as usize,
                        Err(_) => {
                            return Frame::error("ERR value is not an integer or out of range")
                        }
                    },
                    None => 10,
                };
                Frame::Array(
                    self.metrics
                        .slowlog()
                        .get(n)
                        .into_iter()
                        .map(|e| {
                            Frame::Array(vec![
                                Frame::Integer(e.id as i64),
                                Frame::Integer(e.unix_time_s),
                                Frame::Integer(e.duration_us as i64),
                                Frame::Array(
                                    e.args
                                        .into_iter()
                                        .map(|a| Frame::Bulk(Bytes::from(a)))
                                        .collect(),
                                ),
                            ])
                        })
                        .collect(),
                )
            }
            "RESET" => {
                self.metrics.slowlog().reset();
                Frame::ok()
            }
            "LEN" => Frame::Integer(self.metrics.slowlog().len() as i64),
            other => Frame::error(format!("ERR Unknown SLOWLOG subcommand '{other}'")),
        }
    }

    /// `LATENCY HISTOGRAM | RESET`: per-stage latency summaries from both
    /// the node registry (io/parse/engine/apply/durability/e2e) and the
    /// shard's transaction-log registry (append/quorum-ack/read stages).
    /// Only stages with at least one sample are reported.
    fn latency_reply(&self, args: &[Bytes]) -> Frame {
        let Some(sub) = args.get(1) else {
            return Frame::error("ERR wrong number of arguments for 'latency' command");
        };
        match String::from_utf8_lossy(sub).to_ascii_uppercase().as_str() {
            "HISTOGRAM" => {
                let mut out: Vec<(Frame, Frame)> = Vec::new();
                for snap in [self.metrics.snapshot(), self.ctx.log.metrics().snapshot()] {
                    for s in &snap.stages {
                        if s.count == 0 {
                            continue;
                        }
                        let field = |k: &str, v: u64| {
                            (
                                Frame::Bulk(Bytes::from(k.to_string())),
                                Frame::Integer(v as i64),
                            )
                        };
                        out.push((
                            Frame::Bulk(Bytes::from(s.name.to_string())),
                            Frame::Map(vec![
                                field("calls", s.count),
                                field("p50_us", s.p50_us),
                                field("p99_us", s.p99_us),
                                field("p999_us", s.p999_us),
                                field("max_us", s.max_us),
                                field("sum_us", s.sum_us),
                            ]),
                        ));
                    }
                }
                Frame::Map(out)
            }
            // Stage histograms are cumulative (like Redis's latencystats);
            // RESET acknowledges with the Redis shape without clearing.
            "RESET" => Frame::Integer(0),
            other => Frame::error(format!("ERR Unknown LATENCY subcommand '{other}'")),
        }
    }

    // ---------------------------------------------------------------------
    // Migration support (used by the migration controller, §5.2)
    // ---------------------------------------------------------------------

    /// Applies a batch of effect commands *as a primary* and logs the
    /// realized effects as one atomic record. With `lenient`, individual
    /// command errors are skipped (data-movement forwarding may race the
    /// key snapshot; the final `RESTORE` and the integrity handshake make
    /// the end state exact). Returns the appended entry (or the current
    /// position when nothing was logged).
    pub fn ingest_effects(&self, cmds: &[EffectCmd], lenient: bool) -> Result<EntryId, String> {
        self.metrics.incr(CounterId::CrossStripeOps);
        let mut guards = self.stripes.lock_all();
        let mut st = self.st.lock();
        if st.role != Role::Primary {
            return Err("not the primary".into());
        }
        if st.state_poisoned || st.rebuilding {
            return Err("uncommitted state pending rebuild".into());
        }
        let now_ms = wall_ms();
        for e in guards.each() {
            e.set_time_ms(now_ms);
        }
        let mut effects: Vec<EffectCmd> = Vec::new();
        let mut dirty = DirtySet::None;
        let mut session = SessionState::new();
        for cmd in cmds {
            let name = CmdName::from_arg(cmd.first().map_or(b"".as_slice(), |c| c));
            let out = self.execute_routed(&mut guards, &mut session, &name, cmd);
            if out.reply.is_error() && !lenient {
                return Err(format!("effect {cmd:?} failed: {:?}", out.reply));
            }
            effects.extend(out.effects);
            dirty.merge(out.dirty);
        }
        if effects.is_empty() {
            return Ok(st.rs.applied);
        }
        let record = Record::Effects {
            version: guards.first_ref().version(),
            effects,
        };
        // Staged on the commit pipeline like any client mutation (a fenced
        // flush poisons the state); the migration controller drains via
        // `max_pending_write` before any ownership transfer.
        let ticket = self.stage_effects_locked(&mut st, record.encode_framed(), &dirty, None);
        Ok(ticket.last_id())
    }

    /// Durably appends a control record (migration 2PC messages). Blocks
    /// until committed. The record's semantics are also applied to this
    /// primary's own state (primaries do not consume their own log).
    pub fn commit_record(&self, record: &Record) -> Result<EntryId, String> {
        let ticket = {
            let mut guards = self.stripes.lock_all();
            let mut st = self.st.lock();
            if st.role != Role::Primary {
                return Err("not the primary".into());
            }
            if st.state_poisoned || st.rebuilding {
                return Err("uncommitted state pending rebuild".into());
            }
            let ticket = self.stage_control_locked(&mut st, record.encode_framed());
            // Mirror the consumer-side semantics locally (primaries do not
            // consume their own log). Optimistic like the fold: a fenced
            // flush poisons the state and the rebuild discards this.
            match record {
                Record::MigrationPrepare { slot, .. } => {
                    st.rs.blocked_slots.insert(*slot);
                }
                Record::MigrationCommit { slot, .. } => {
                    st.rs.owned_slots.insert(*slot);
                }
                Record::MigrationDone { slot } => {
                    st.rs.blocked_slots.remove(slot);
                    st.rs.owned_slots.remove(*slot);
                    // Deleting the handed-off data dirties the slot relative
                    // to any earlier snapshot (mirrors the consumer fold).
                    st.rs.dirty_slots.insert(*slot);
                    guards.engine_for_slot(*slot).db.delete_slot(*slot);
                }
                Record::MigrationAbort { slot } => {
                    st.rs.blocked_slots.remove(slot);
                }
                Record::SlotOwnership { ranges } => {
                    st.rs.owned_slots = crate::slotset::SlotSet::from_ranges(ranges);
                }
                _ => {}
            }
            ticket
        };
        match ticket.wait(self.ticket_wait_cap()) {
            Some(TicketOutcome::Durable) => Ok(ticket.last_id()),
            Some(TicketOutcome::Poisoned(e)) => Err(format!("log append failed: {e}")),
            _ => {
                self.st.lock().demote_requested = true;
                Err("control record did not commit".into())
            }
        }
    }

    /// Serializes every key in `slot` (with expiry) for transfer. Only the
    /// stripe owning the slot needs locking.
    pub fn serialize_slot(&self, slot: u16) -> Vec<(Bytes, Vec<u8>)> {
        let guards = self.stripes.lock_one(self.stripes.stripe_for_slot(slot));
        let engine = guards.first_ref();
        let mut out = Vec::new();
        for key in engine.db.keys_in_slot(slot) {
            // Serialize physical state including logically-expired entries;
            // the target inherits the same expiry.
            if let Some((value, expiry)) = engine
                .db
                .lookup(&key, 0)
                .map(|v| (v.clone(), engine.db.expiry(&key)))
            {
                out.push((key, memorydb_engine::rdb::serialize_entry(&value, expiry)));
            }
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Keys currently stored in a slot.
    pub fn slot_keys(&self, slot: u16) -> Vec<Bytes> {
        self.stripes
            .lock_one(self.stripes.stripe_for_slot(slot))
            .first_ref()
            .db
            .keys_in_slot(slot)
    }

    /// Digest of a slot's content for the §5.2 integrity handshake.
    pub fn slot_digest(&self, slot: u16) -> (usize, u64) {
        let entries = self.serialize_slot(slot);
        let mut crc = memorydb_engine::rdb::Crc64::new();
        for (key, blob) in &entries {
            crc.update(key);
            crc.update(blob);
        }
        (entries.len(), crc.digest())
    }

    /// Starts/stops mirroring writes for a slot to a migration target.
    pub fn set_forward(&self, slot: u16, target: Option<Arc<Node>>) {
        let mut st = self.st.lock();
        match target {
            Some(t) => {
                st.forward.insert(slot, t);
            }
            None => {
                st.forward.remove(&slot);
            }
        }
    }

    /// Locally blocks writes to a slot ahead of the durable
    /// `MigrationPrepare` record (the source primary's immediate gate).
    pub fn block_slot_local(&self, slot: u16, blocked: bool) {
        let mut st = self.st.lock();
        if blocked {
            st.rs.blocked_slots.insert(slot);
        } else {
            st.rs.blocked_slots.remove(&slot);
        }
    }

    /// The highest staged-but-unacked write, to drain before ownership
    /// transfer.
    pub fn max_pending_write(&self) -> Option<EntryId> {
        self.st.lock().tracker.max_pending()
    }

    /// Does this node currently own `slot`?
    pub fn owns_slot(&self, slot: u16) -> bool {
        self.st.lock().rs.owned_slots.contains(slot)
    }

    /// Owned slots as ranges (CLUSTER SLOTS-style).
    pub fn owned_ranges(&self) -> Vec<(u16, u16)> {
        self.st.lock().rs.owned_slots.to_ranges()
    }

    // ---------------------------------------------------------------------
    // Snapshots
    // ---------------------------------------------------------------------

    /// Captures a snapshot of this node's current state (used by tests and
    /// by on-box snapshotting comparisons; production-path snapshots are
    /// taken off-box, see `offbox.rs`).
    pub fn capture_snapshot(&self) -> ShardSnapshot {
        let guards = self.stripes.lock_all();
        let st = self.st.lock();
        ShardSnapshot::capture_multi(
            &guards.dbs(),
            st.rs.applied,
            st.rs.running_crc,
            guards.first_ref().version(),
            st.rs.epoch,
            st.rs.owned_slots.to_ranges(),
            st.rs.blocked_slots.iter().copied().collect(),
        )
    }

    /// Approximate dataset size in bytes (snapshot scheduling input).
    pub fn dataset_bytes(&self) -> usize {
        self.stripes
            .lock_all()
            .dbs()
            .iter()
            .map(|db| db.used_memory())
            .sum()
    }

    /// Number of keys stored.
    pub fn key_count(&self) -> usize {
        self.stripes
            .lock_all()
            .dbs()
            .iter()
            .map(|db| db.len())
            .sum()
    }

    // ---------------------------------------------------------------------
    // Run loop: replication, election, lease maintenance
    // ---------------------------------------------------------------------

    fn run_loop(self: Arc<Node>) {
        while self.alive.load(Ordering::SeqCst) {
            let role = {
                let st = self.st.lock();
                st.role
            };
            match role {
                Role::Replica => self.replica_step(),
                Role::Primary => self.primary_step(),
            }
            let role_now = self.st.lock().role;
            self.ctx.bus.heartbeat(
                self.id,
                self.ctx.shard_id,
                match role_now {
                    Role::Primary => BusRole::Primary,
                    Role::Replica => BusRole::Replica,
                },
            );
        }
        self.ctx.bus.remove(self.id);
    }

    fn replica_step(&self) {
        let cfg = &self.ctx.cfg;
        let (applied, halted) = {
            let st = self.st.lock();
            (st.rs.applied, st.rs.halted.is_some())
        };

        if halted {
            // Upgrade-stalled or corrupt: stay passive (§7.1).
            std::thread::sleep(cfg.tick);
            return;
        }

        match self
            .ctx
            .log
            .wait_for_entries(self.id, applied, 256, cfg.tick)
        {
            Ok(entries) if !entries.is_empty() => {
                let mut guards = self.stripes.lock_all();
                let mut st = self.st.lock();
                let now_ms = wall_ms();
                let version = guards.first_ref().version();
                let n = guards.stripe_count();
                let mut engines: Vec<&mut Engine> = guards.each().collect();
                for e in engines.iter_mut() {
                    e.set_time_ms(now_ms);
                }
                for entry in &entries {
                    if entry.id != st.rs.applied.next() {
                        break; // raced with a state swap; re-read next tick
                    }
                    if apply_entry_striped(
                        &mut engines,
                        |s| stripe_of(s, n),
                        &mut st.rs,
                        entry,
                        version,
                    )
                    .is_err()
                    {
                        break;
                    }
                }
            }
            Ok(_) => {}
            Err(ReadError::Trimmed { .. }) => {
                // Fell behind a trim: restore from snapshot + log (§4.2.1).
                self.rebuild();
                return;
            }
            Err(ReadError::Partitioned) => {
                std::thread::sleep(cfg.tick);
            }
        }

        // Replica staleness: committed entries this replica has not yet
        // applied (the monitor also samples this cluster-wide).
        let tail = self.ctx.log.committed_tail().0;
        let applied_now = self.st.lock().rs.applied.0;
        self.metrics.set_gauge(
            GaugeId::ReplicaStalenessEntries,
            tail.saturating_sub(applied_now) as i64,
        );

        // Election check (§4.1.3): campaign when no leadership signal has
        // been observed for a full backoff (strictly greater than the
        // lease), or immediately after a voluntary release.
        let now = Instant::now();
        let campaign = {
            let st = self.st.lock();
            st.rs.halted.is_none()
                && (st.rs.release_observed
                    || now.duration_since(st.rs.last_leadership_signal) >= cfg.backoff)
        };
        if campaign {
            self.try_campaign();
        }
    }

    fn try_campaign(&self) {
        let cfg = &self.ctx.cfg;
        let (claim_at, epoch, payload) = {
            let st = self.st.lock();
            let epoch = st.rs.epoch + 1;
            let rec = Record::LeaderClaim {
                node: self.id,
                epoch,
                lease_ms: cfg.lease.as_millis() as u64,
            };
            (st.rs.applied, epoch, rec.encode_framed())
        };
        let t0 = Instant::now();
        match self
            .ctx
            .log
            .append_after(self.id, claim_at, payload.clone())
        {
            Ok(id) => {
                // Serve only after the claim itself is durable.
                if self.ctx.log.wait_durable(id, cfg.commit_timeout) {
                    let mut guards = self.stripes.lock_all();
                    let mut st = self.st.lock();
                    // The append succeeded at our applied tail, so we had
                    // observed every committed update — the §4.1.2
                    // consistent-failover guarantee.
                    fold_appended_payload(&mut st.rs, id, &payload, false);
                    st.rs.epoch = epoch;
                    st.rs.leader = Some(self.id);
                    st.rs.release_observed = false;
                    st.rs.last_leadership_signal = Instant::now();
                    st.role = Role::Primary;
                    for e in guards.each() {
                        e.set_role(Role::Primary);
                    }
                    st.lease_valid_until = t0 + cfg.lease;
                    st.next_renewal_at = t0 + cfg.renew_interval;
                    st.pending_renewal = None;
                    st.tracker.reset();
                    st.tracker.advance_committed(id);
                    st.demote_requested = false;
                    // A stale poison resolution (from a pre-rebuild flush)
                    // may have landed while we were a replica; winning the
                    // campaign proves our state is exactly the log prefix.
                    st.state_poisoned = false;
                    drop(st);
                    drop(guards);
                    self.metrics.set_gauge(GaugeId::LeaseEpoch, epoch as i64);
                    self.ctx
                        .bus
                        .heartbeat(self.id, self.ctx.shard_id, BusRole::Primary);
                }
                // If the claim did not commit in time we stay a replica;
                // the replication loop will apply our own claim entry when
                // it eventually commits and backoff restarts from there.
            }
            Err(AppendError::Conflict { .. }) => {
                // Not fully caught up, or another replica won: keep
                // consuming (§4.1.2 — only caught-up replicas can win).
            }
            Err(AppendError::Partitioned) => {}
        }
    }

    /// One active-expire pass (Redis's background expiration, §2.1): the
    /// primary reaps expired keys and replicates explicit `DEL`s so
    /// replicas converge without consulting their own clocks. Each pass
    /// visits ONE stripe under its own `lock_one`, rotating a cursor across
    /// passes — background reaping never stalls the other stripes behind an
    /// all-stripe acquisition, and every stripe is still visited once per
    /// full rotation.
    fn active_expire(&self) {
        let n = self.stripes.count();
        let idx = self.expire_cursor.fetch_add(1, Ordering::Relaxed) % n.max(1);
        let mut guards = self.stripes.lock_one(idx);
        let mut st = self.st.lock();
        if st.role != Role::Primary || st.rebuilding || st.state_poisoned {
            return;
        }
        let now_ms = wall_ms();
        let mut effects = Vec::new();
        for e in guards.each() {
            e.set_time_ms(now_ms);
            effects.extend(e.active_expire_cycle(64));
        }
        if effects.is_empty() {
            return;
        }
        let dirty = memorydb_engine::DirtySet::Keys(
            effects.iter().filter_map(|e| e.get(1).cloned()).collect(),
        );
        let record = Record::Effects {
            version: guards.first_ref().version(),
            effects,
        };
        let stripe = if guards.is_all() {
            None
        } else {
            Some(guards.held_idx() as u16)
        };
        // Fire-and-forget through the commit pipeline: the DELs are hazard-
        // tracked until commit, and a fenced flush poisons the state. Staged
        // while the stripe guard is held, so per-stripe fold order holds.
        let _ticket = self.stage_effects_locked(&mut st, record.encode_framed(), &dirty, stripe);
    }

    fn primary_step(&self) {
        let cfg = &self.ctx.cfg;
        self.active_expire();
        let now = Instant::now();
        let mut demote = false;
        {
            let mut st = self.st.lock();
            // Confirm a pending renewal's durability: the lease extends
            // from the moment the renewal was *sent*, and only once its
            // ticket resolves durable. The ticket — not `is_durable` on the
            // prospective id — is the proof: after a fence, another
            // leader's entry may occupy that id.
            let renewal = st
                .pending_renewal
                .as_ref()
                .and_then(|(t, sent_at)| t.outcome().map(|o| (o, *sent_at)));
            if let Some((outcome, sent_at)) = renewal {
                st.pending_renewal = None;
                match outcome {
                    TicketOutcome::Durable => st.lease_valid_until = sent_at + cfg.lease,
                    // Fenced or ambiguous: never extend; demote.
                    _ => demote = true,
                }
            }
            // Decide demotion BEFORE staging any renewal: an expired
            // lease (or a requested demotion) means we are no longer the
            // leader, and appending a renewal past that point would reset
            // the replicas' election timers and delay the failover we are
            // supposed to be enabling.
            if st.demote_requested || now >= st.lease_valid_until {
                demote = true;
            }
            // Stage a renewal when due; the committer flushes it together
            // with any client mutations in the queue.
            if !demote
                && !st.state_poisoned
                && st.pending_renewal.is_none()
                && now >= st.next_renewal_at
            {
                let rec = Record::LeaseRenewal {
                    node: self.id,
                    epoch: st.rs.epoch,
                    lease_ms: cfg.lease.as_millis() as u64,
                };
                let ticket = self.stage_control_locked(&mut st, rec.encode_framed());
                st.pending_renewal = Some((ticket, now));
                st.next_renewal_at = now + cfg.renew_interval;
            }
            // The committer can detect fencing and request demotion at any
            // point; re-check before continuing to serve.
            if st.demote_requested {
                demote = true;
            }
            if !demote {
                st.tracker.advance_committed(self.ctx.log.committed_tail());
            }
        }
        if demote {
            self.rebuild();
        } else {
            std::thread::sleep(cfg.tick);
        }
    }

    /// Demotes to replica by rebuilding local state from the snapshot store
    /// plus the transaction log. A demoted primary may hold executed-but-
    /// uncommitted mutations; those must not stay visible (§3.2), and a full
    /// restore discards exactly them.
    fn rebuild(&self) {
        {
            let mut st = self.st.lock();
            st.rebuilding = true;
            st.role = Role::Replica;
            st.pending_renewal = None;
            st.demote_requested = false;
            st.forward.clear();
        }
        self.ctx
            .bus
            .heartbeat(self.id, self.ctx.shard_id, BusRole::Replica);
        while self.alive.load(Ordering::SeqCst) {
            let version = self.stripes.engine_version();
            match restore_replica_opts(
                &self.ctx.store,
                &self.ctx.log,
                self.id,
                &self.ctx.name,
                version,
                ReplayTarget::Tail,
                RestoreOptions {
                    workers: self.ctx.cfg.restore_workers,
                },
            ) {
                Ok(rp) => {
                    // Re-partition the restored engine into stripes, then
                    // install under the all-stripe lock so no reader observes
                    // a torn mix of old and new state.
                    let parts = self.stripes.partition(rp.engine);
                    let mut guards = self.stripes.lock_all();
                    let mut st = self.st.lock();
                    guards.install(parts);
                    st.rs = rp.rs;
                    st.rs.last_leadership_signal = Instant::now();
                    // A demoted primary defers to the other replicas even if
                    // it observed its own lease release during replay.
                    st.rs.release_observed = false;
                    st.tracker.reset();
                    st.state_poisoned = false;
                    st.rebuilding = false;
                    return;
                }
                Err(_) => {
                    // Likely partitioned from the log/store; retry.
                    std::thread::sleep(self.ctx.cfg.tick.max(Duration::from_millis(10)));
                }
            }
        }
    }
}
