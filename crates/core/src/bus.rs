//! The cluster bus: in-process gossip between nodes (paper §2.1, §4.1.2).
//!
//! MemoryDB keeps the Redis cluster bus for what it is good at — topology
//! propagation and health gossip — while *removing* it from the leader
//! election critical path (election runs purely against the transaction
//! log). Nodes heartbeat here, announce role changes after elections so the
//! rest of the cluster can point clients at the new primary quickly, and the
//! monitoring service reads the "internal view" of cluster health from here
//! (§4.2).

use crate::record::{NodeId, ShardId};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Role of a node as announced on the bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BusRole {
    /// Shard leader.
    Primary,
    /// Read replica.
    Replica,
}

#[derive(Debug, Clone)]
struct NodeInfo {
    shard: ShardId,
    role: BusRole,
    last_heartbeat: Instant,
}

/// The shared gossip medium. One per cluster.
#[derive(Debug, Default)]
pub struct ClusterBus {
    nodes: Mutex<HashMap<NodeId, NodeInfo>>,
}

impl ClusterBus {
    /// Creates an empty bus.
    pub fn new() -> ClusterBus {
        ClusterBus::default()
    }

    /// Publishes a heartbeat with the node's current role.
    pub fn heartbeat(&self, node: NodeId, shard: ShardId, role: BusRole) {
        self.nodes.lock().insert(
            node,
            NodeInfo {
                shard,
                role,
                last_heartbeat: Instant::now(),
            },
        );
    }

    /// Removes a node (decommissioned or replaced).
    pub fn remove(&self, node: NodeId) {
        self.nodes.lock().remove(&node);
    }

    /// The announced primary of a shard, if any is gossiping.
    pub fn primary_of(&self, shard: ShardId) -> Option<NodeId> {
        self.nodes
            .lock()
            .iter()
            .find(|(_, info)| info.shard == shard && info.role == BusRole::Primary)
            .map(|(id, _)| *id)
    }

    /// All nodes of a shard with their roles.
    pub fn members_of(&self, shard: ShardId) -> Vec<(NodeId, BusRole)> {
        let mut out: Vec<(NodeId, BusRole)> = self
            .nodes
            .lock()
            .iter()
            .filter(|(_, info)| info.shard == shard)
            .map(|(id, info)| (*id, info.role))
            .collect();
        out.sort_by_key(|(id, _)| *id);
        out
    }

    /// Number of replicas currently gossiping for a shard (the `WAIT`
    /// reply).
    pub fn replica_count(&self, shard: ShardId) -> usize {
        self.nodes
            .lock()
            .values()
            .filter(|info| info.shard == shard && info.role == BusRole::Replica)
            .count()
    }

    /// Internal health view: nodes whose last heartbeat is older than
    /// `staleness` (suspected failed by their peers).
    pub fn stale_nodes(&self, staleness: Duration) -> Vec<NodeId> {
        let now = Instant::now();
        let mut out: Vec<NodeId> = self
            .nodes
            .lock()
            .iter()
            .filter(|(_, info)| now.duration_since(info.last_heartbeat) > staleness)
            .map(|(id, _)| *id)
            .collect();
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heartbeat_and_roles() {
        let bus = ClusterBus::new();
        bus.heartbeat(1, 0, BusRole::Primary);
        bus.heartbeat(2, 0, BusRole::Replica);
        bus.heartbeat(3, 1, BusRole::Primary);
        assert_eq!(bus.primary_of(0), Some(1));
        assert_eq!(bus.primary_of(1), Some(3));
        assert_eq!(bus.primary_of(9), None);
        assert_eq!(bus.replica_count(0), 1);
        assert_eq!(
            bus.members_of(0),
            vec![(1, BusRole::Primary), (2, BusRole::Replica)]
        );
    }

    #[test]
    fn role_change_overwrites() {
        let bus = ClusterBus::new();
        bus.heartbeat(1, 0, BusRole::Primary);
        bus.heartbeat(1, 0, BusRole::Replica);
        assert_eq!(bus.primary_of(0), None);
        assert_eq!(bus.replica_count(0), 1);
    }

    #[test]
    fn staleness_detection() {
        let bus = ClusterBus::new();
        bus.heartbeat(1, 0, BusRole::Primary);
        assert!(bus.stale_nodes(Duration::from_secs(5)).is_empty());
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(bus.stale_nodes(Duration::from_millis(10)), vec![1]);
        bus.heartbeat(1, 0, BusRole::Primary);
        assert!(bus.stale_nodes(Duration::from_millis(10)).is_empty());
    }

    #[test]
    fn remove_node() {
        let bus = ClusterBus::new();
        bus.heartbeat(1, 0, BusRole::Primary);
        bus.remove(1);
        assert_eq!(bus.primary_of(0), None);
        assert!(bus.members_of(0).is_empty());
    }
}
