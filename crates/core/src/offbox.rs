//! Off-box snapshotting and snapshot verification (paper §4.2.2, §7.2.1).
//!
//! Snapshots are never taken on customer nodes: an ephemeral **shadow
//! replica** — sharing only the durable data sources (object store and
//! transaction log) with the customer cluster — restores the latest
//! snapshot, replays the log to a tail position recorded at creation time,
//! and dumps a fresh snapshot. Because it is not part of the cluster, it
//! steals no CPU, no memory headroom, and no replica read capacity from
//! customer traffic (the Figure 7 result).
//!
//! Snapshots are **incremental** where possible: when the shadow replica
//! restored from the newest manifest chain and the chain is still short
//! (`ShardConfig::snapshot_max_chain`), only the slots the replayed suffix
//! dirtied are dumped, as a *delta* manifest whose `base` points at the
//! restored position. Otherwise a *full* snapshot is cut, chunked into
//! `ShardConfig::snapshot_chunks` slot ranges so restore can fetch and load
//! them in parallel (see [`crate::manifest`]).
//!
//! Every new snapshot is **verified before it is made available**: the
//! shadow replica recomputes the running checksum while replaying and
//! cross-checks it against the checksum probes the primary injects into the
//! log; every produced chunk is then decoded, its key placement checked
//! against the live keyspace, and the manifest round-tripped (§7.2.1's
//! "rehearse restoring it") — all before anything is published.

use crate::manifest::{ChunkRef, SnapshotManifest};
use crate::node::ShardContext;
use crate::restore::{restore_replica_opts, ReplayTarget, RestoreError, RestoreOptions};
use crate::stripes::slot_range_of;
use bytes::Bytes;
use memorydb_engine::rdb;
use memorydb_engine::{key_hash_slot, EngineVersion};
use memorydb_txlog::EntryId;
use std::sync::Arc;

/// Errors from an off-box snapshot run.
#[derive(Debug)]
pub enum OffboxError {
    /// Restoring the shadow replica failed (incl. checksum-probe mismatch
    /// during replay — the §7.2.1 verification failing).
    Restore(RestoreError),
    /// The freshly produced snapshot failed its own verification rehearsal.
    Verification(String),
}

impl std::fmt::Display for OffboxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OffboxError::Restore(e) => write!(f, "off-box restore failed: {e}"),
            OffboxError::Verification(e) => write!(f, "snapshot verification failed: {e}"),
        }
    }
}

impl std::error::Error for OffboxError {}

/// The off-box snapshotter: an ephemeral worker bound to one shard's
/// durable data sources.
pub struct OffboxSnapshotter {
    ctx: Arc<ShardContext>,
    /// Engine version the shadow replica runs. During rolling upgrades the
    /// control plane pins this to the OLDEST version in the cluster so
    /// old-engine nodes can still be re-seeded from the result (§7.1).
    version: EngineVersion,
    /// Txlog client id of the shadow replica.
    client_id: u64,
}

impl OffboxSnapshotter {
    /// Creates a snapshotter for a shard.
    pub fn new(
        ctx: Arc<ShardContext>,
        version: EngineVersion,
        client_id: u64,
    ) -> OffboxSnapshotter {
        OffboxSnapshotter {
            ctx,
            version,
            client_id,
        }
    }

    /// Runs one off-box snapshot cycle and returns the new snapshot's
    /// manifest store key and covered position. `trim_log` additionally
    /// trims the log prefix that is now safely re-derivable (§4.2.3).
    ///
    /// **Ordering contract (trim safety).** Publication is ordered: chunk
    /// blobs first, the manifest referencing them *last* — a manifest in
    /// the store implies its chunks are too. The log prefix is trimmed only
    /// *after* that, and the trim point is the covered position of the
    /// newest **full** snapshot — never a delta's. Consequences restorers
    /// may rely on:
    ///
    /// 1. Every committed entry is always reachable as (some stored
    ///    snapshot) + (the untrimmed log suffix): `first_available()` never
    ///    exceeds `newest_full.covered + 1`.
    /// 2. A restore that observes `ReadError::Trimmed` mid-replay raced a
    ///    concurrent snapshot+trim cycle, and a *fresher* snapshot covering
    ///    at least the trim point is already fetchable — retrying from the
    ///    latest snapshot always makes progress (see
    ///    [`crate::restore::restore_replica`]).
    /// 3. A delta chain that breaks (corrupt or lost intermediate) never
    ///    strands a restorer: the suffix above the newest full snapshot is
    ///    still in the log, so falling back to that full and replaying
    ///    reaches the same position the chain covered.
    ///
    /// Violating this order (trim first, put after; or trimming to a
    /// delta's covered) would open a window where a crash — or a single
    /// corrupt delta — loses the only copy of committed data.
    pub fn create_snapshot(&self, trim_log: bool) -> Result<(String, EntryId), OffboxError> {
        // (1) Record the tail at creation time, restore to exactly there —
        // a static data view guaranteed fresher than any previous snapshot.
        let tail = self.ctx.log.committed_tail();
        let rp = restore_replica_opts(
            &self.ctx.store,
            &self.ctx.log,
            self.client_id,
            &self.ctx.name,
            self.version,
            ReplayTarget::Exactly(tail),
            RestoreOptions {
                workers: self.ctx.cfg.restore_workers,
            },
        )
        .map_err(OffboxError::Restore)?;
        let seed = rp.seeded_from;

        // Nothing committed since the seed we restored from, and that seed
        // is the newest manifest in the store: re-publishing would create a
        // delta whose base is itself. Point at the existing manifest.
        if let Some(s) = seed {
            if s.from_manifest && s.newest && s.covered == rp.rs.applied {
                let key = SnapshotManifest::store_key(&self.ctx.name, s.covered);
                return Ok((key, s.covered));
            }
        }

        // (2) Full or delta? A delta may only extend the chain we actually
        // restored from, and only while that chain is the newest thing in
        // the store and still under the configured length bound.
        let max_chain = self.ctx.cfg.snapshot_max_chain;
        let delta_base = seed.filter(|s| {
            s.from_manifest && s.newest && s.chain_len < max_chain && rp.rs.applied > s.covered
        });

        // (3) Choose chunk slot ranges. Full: an even partition of the slot
        // space. Delta: the slots the replayed suffix dirtied, coalesced to
        // at most `snapshot_chunks` ranges (coalescing pulls in clean slots
        // between dirty ones — their chunk data is current, so claims stay
        // correct, the chunks are just slightly bigger).
        let n_chunks = self.ctx.cfg.snapshot_chunks.max(1);
        let ranges: Vec<(u16, u16)> = match delta_base {
            None => (0..n_chunks).map(|i| slot_range_of(i, n_chunks)).collect(),
            Some(_) => coalesce_ranges(&rp.rs.dirty_slots.to_ranges(), n_chunks),
        };

        // (4) Dump each range and build the manifest.
        let covered = rp.rs.applied;
        let mut chunks = Vec::with_capacity(ranges.len());
        let mut blobs = Vec::with_capacity(ranges.len());
        for &(lo, hi) in &ranges {
            let blob = rdb::dump_slot_range(&[&rp.engine.db], lo, hi);
            chunks.push(ChunkRef {
                lo,
                hi,
                len: blob.len() as u64,
                crc: rdb::crc64(&blob),
            });
            blobs.push(Bytes::from(blob));
        }
        let manifest = SnapshotManifest {
            covered,
            running_crc: rp.rs.running_crc,
            engine_version: self.version,
            epoch: rp.rs.epoch,
            slot_ranges: rp.rs.owned_slots.to_ranges(),
            blocked_slots: rp.rs.blocked_slots.iter().copied().collect(),
            base: delta_base.map_or(EntryId::ZERO, |s| s.covered),
            chain_len: delta_base.map_or(0, |s| s.chain_len + 1),
            chunks,
        };

        // (5) Verification rehearsal before publication (§7.2.1): the
        // manifest must round-trip, and every chunk must decode and hold
        // exactly the live keys of its slot range — no more, no fewer.
        self.rehearse(&manifest, &blobs, &rp.engine.db)?;

        // (6) Publication: chunks first, manifest last. The manifest is the
        // publication point — only verified, fully-uploaded snapshots are
        // ever visible to a restorer.
        for (chunk, blob) in manifest.chunks.iter().zip(&blobs) {
            let key = SnapshotManifest::chunk_key(&self.ctx.name, covered, chunk.lo, chunk.hi);
            self.ctx.store.put(&key, blob.clone());
        }
        let key = SnapshotManifest::store_key(&self.ctx.name, covered);
        self.ctx.store.put(&key, manifest.encode());

        if trim_log {
            // Trim to the newest FULL snapshot only: a delta's prefix must
            // stay replayable in case its chain breaks (consequence 3).
            let trim_to = delta_base.map_or(covered, |s| s.full_covered);
            self.ctx.log.trim_prefix(trim_to);
        }
        Ok((key, covered))
    }

    /// §7.2.1 rehearsal: decode the manifest and every chunk as a restorer
    /// would, and cross-check chunk contents against the live keyspace.
    fn rehearse(
        &self,
        manifest: &SnapshotManifest,
        blobs: &[Bytes],
        db: &memorydb_engine::Db,
    ) -> Result<(), OffboxError> {
        let reparsed = SnapshotManifest::decode(&manifest.encode())
            .map_err(|e| OffboxError::Verification(e.to_string()))?;
        if &reparsed != manifest {
            return Err(OffboxError::Verification(
                "manifest did not round-trip".into(),
            ));
        }
        // Expected key count per range, from one pass over the live db.
        let ranges: Vec<(u16, u16)> = manifest.chunks.iter().map(|c| (c.lo, c.hi)).collect();
        let mut expected = vec![0usize; ranges.len()];
        let mut outside = 0usize;
        for (key, _) in db.iter_entries() {
            match range_index_of(&ranges, key_hash_slot(key)) {
                Some(i) => expected[i] += 1,
                None => outside += 1,
            }
        }
        if manifest.is_full() && outside != 0 {
            return Err(OffboxError::Verification(format!(
                "full snapshot ranges miss {outside} keys"
            )));
        }
        for ((chunk, blob), want) in manifest.chunks.iter().zip(blobs).zip(&expected) {
            let loaded = rdb::load(blob).map_err(|e| {
                OffboxError::Verification(format!("chunk {}-{}: {e}", chunk.lo, chunk.hi))
            })?;
            if loaded.len() != *want {
                return Err(OffboxError::Verification(format!(
                    "chunk {}-{} rehearsal count mismatch: {} vs {}",
                    chunk.lo,
                    chunk.hi,
                    loaded.len(),
                    want
                )));
            }
        }
        Ok(())
    }
}

/// Reduces a sorted, disjoint range list to at most `max` ranges by merging
/// across the smallest gaps first (keeping the `max - 1` largest gaps).
fn coalesce_ranges(ranges: &[(u16, u16)], max: usize) -> Vec<(u16, u16)> {
    if ranges.len() <= max || max == 0 {
        return ranges.to_vec();
    }
    let mut gaps: Vec<usize> = (0..ranges.len() - 1).collect();
    gaps.sort_by_key(|&i| std::cmp::Reverse(ranges[i + 1].0 - ranges[i].1));
    let keep: std::collections::HashSet<usize> = gaps.into_iter().take(max - 1).collect();
    let mut out = Vec::with_capacity(max);
    let mut cur = ranges[0];
    for (i, r) in ranges.iter().enumerate().skip(1) {
        if keep.contains(&(i - 1)) {
            out.push(cur);
            cur = *r;
        } else {
            cur.1 = r.1;
        }
    }
    out.push(cur);
    out
}

/// Index of the range containing `slot`, if any (`ranges` sorted by `lo`).
fn range_index_of(ranges: &[(u16, u16)], slot: u16) -> Option<usize> {
    let i = ranges.partition_point(|r| r.1 < slot);
    (i < ranges.len() && ranges[i].0 <= slot).then_some(i)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coalesce_keeps_largest_gaps() {
        let ranges = vec![(0, 10), (12, 20), (100, 110), (112, 120), (500, 600)];
        // max 3: keep the two largest gaps (20→100 and 120→500).
        let out = coalesce_ranges(&ranges, 3);
        assert_eq!(out, vec![(0, 20), (100, 120), (500, 600)]);
        // max >= len: unchanged.
        assert_eq!(coalesce_ranges(&ranges, 5), ranges);
        // max 1: one covering range.
        assert_eq!(coalesce_ranges(&ranges, 1), vec![(0, 600)]);
        assert!(coalesce_ranges(&[], 4).is_empty());
    }

    #[test]
    fn range_index_lookup() {
        let ranges = vec![(0u16, 10u16), (20, 30), (40, 40)];
        assert_eq!(range_index_of(&ranges, 0), Some(0));
        assert_eq!(range_index_of(&ranges, 10), Some(0));
        assert_eq!(range_index_of(&ranges, 15), None);
        assert_eq!(range_index_of(&ranges, 25), Some(1));
        assert_eq!(range_index_of(&ranges, 40), Some(2));
        assert_eq!(range_index_of(&ranges, 41), None);
    }
}
