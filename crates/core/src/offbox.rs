//! Off-box snapshotting and snapshot verification (paper §4.2.2, §7.2.1).
//!
//! Snapshots are never taken on customer nodes: an ephemeral **shadow
//! replica** — sharing only the durable data sources (object store and
//! transaction log) with the customer cluster — restores the latest
//! snapshot, replays the log to a tail position recorded at creation time,
//! and dumps a fresh snapshot. Because it is not part of the cluster, it
//! steals no CPU, no memory headroom, and no replica read capacity from
//! customer traffic (the Figure 7 result).
//!
//! Every new snapshot is **verified before it is made available**: the
//! shadow replica recomputes the running checksum while replaying and
//! cross-checks it against the checksum probes the primary injects into the
//! log; the produced blob is then decoded and integrity-checked end to end
//! (§7.2.1's "rehearse restoring it").

use crate::node::ShardContext;
use crate::restore::{restore_replica, ReplayTarget, RestoreError};
use crate::snapshot::ShardSnapshot;
use memorydb_engine::EngineVersion;
use memorydb_txlog::EntryId;
use std::sync::Arc;

/// Errors from an off-box snapshot run.
#[derive(Debug)]
pub enum OffboxError {
    /// Restoring the shadow replica failed (incl. checksum-probe mismatch
    /// during replay — the §7.2.1 verification failing).
    Restore(RestoreError),
    /// The freshly produced snapshot failed its own verification rehearsal.
    Verification(String),
}

impl std::fmt::Display for OffboxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OffboxError::Restore(e) => write!(f, "off-box restore failed: {e}"),
            OffboxError::Verification(e) => write!(f, "snapshot verification failed: {e}"),
        }
    }
}

impl std::error::Error for OffboxError {}

/// The off-box snapshotter: an ephemeral worker bound to one shard's
/// durable data sources.
pub struct OffboxSnapshotter {
    ctx: Arc<ShardContext>,
    /// Engine version the shadow replica runs. During rolling upgrades the
    /// control plane pins this to the OLDEST version in the cluster so
    /// old-engine nodes can still be re-seeded from the result (§7.1).
    version: EngineVersion,
    /// Txlog client id of the shadow replica.
    client_id: u64,
}

impl OffboxSnapshotter {
    /// Creates a snapshotter for a shard.
    pub fn new(
        ctx: Arc<ShardContext>,
        version: EngineVersion,
        client_id: u64,
    ) -> OffboxSnapshotter {
        OffboxSnapshotter {
            ctx,
            version,
            client_id,
        }
    }

    /// Runs one off-box snapshot cycle and returns the new snapshot's store
    /// key and covered position. `trim_log` additionally trims the log
    /// prefix the verified snapshot now covers (§4.2.3).
    ///
    /// **Ordering contract (trim safety).** The log prefix is trimmed only
    /// *after* the verified snapshot blob is durably in the object store —
    /// `store.put` strictly precedes `log.trim_prefix`, and the trim point
    /// equals the snapshot's `covered` position. Consequences restorers may
    /// rely on:
    ///
    /// 1. Every committed entry is always reachable as (some stored
    ///    snapshot) + (the untrimmed log suffix): `first_available()` never
    ///    exceeds `latest_snapshot.covered + 1`.
    /// 2. A restore that observes `ReadError::Trimmed` mid-replay raced a
    ///    concurrent snapshot+trim cycle, and a *fresher* snapshot covering
    ///    at least the trim point is already fetchable — retrying from the
    ///    latest snapshot always makes progress (see
    ///    [`crate::restore::restore_replica`]).
    ///
    /// Violating this order (trim first, put after) would open a window
    /// where a crash loses the only copy of the trimmed prefix.
    pub fn create_snapshot(&self, trim_log: bool) -> Result<(String, EntryId), OffboxError> {
        // (1) Record the tail at creation time, restore to exactly there —
        // a static data view guaranteed fresher than any previous snapshot.
        let tail = self.ctx.log.committed_tail();
        let rp = restore_replica(
            &self.ctx.store,
            &self.ctx.log,
            self.client_id,
            &self.ctx.name,
            self.version,
            ReplayTarget::Exactly(tail),
        )
        .map_err(OffboxError::Restore)?;

        // (2) Dump the view into a new snapshot.
        let snapshot = ShardSnapshot::capture(
            &rp.engine.db,
            rp.rs.applied,
            rp.rs.running_crc,
            self.version,
            rp.rs.epoch,
            rp.rs.owned_slots.to_ranges(),
            rp.rs.blocked_slots.iter().copied().collect(),
        );

        // (3) Verification rehearsal before publication (§7.2.1): decode the
        // blob, check both checksums, reload the keyspace.
        let blob = snapshot.encode();
        let reparsed =
            ShardSnapshot::decode(&blob).map_err(|e| OffboxError::Verification(e.to_string()))?;
        let db = reparsed
            .load_db()
            .map_err(|e| OffboxError::Verification(e.to_string()))?;
        if db.len() != rp.engine.db.len() {
            return Err(OffboxError::Verification(format!(
                "rehearsal keyspace size mismatch: {} vs {}",
                db.len(),
                rp.engine.db.len()
            )));
        }
        if reparsed.running_crc != rp.rs.running_crc {
            return Err(OffboxError::Verification(
                "rehearsal running checksum mismatch".into(),
            ));
        }

        // Only successfully verified snapshots are made available.
        let key = ShardSnapshot::store_key(&self.ctx.name, snapshot.covered);
        self.ctx.store.put(&key, blob);

        if trim_log {
            self.ctx.log.trim_prefix(snapshot.covered);
        }
        Ok((key, snapshot.covered))
    }
}
