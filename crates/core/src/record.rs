//! The shard's transaction-log record format.
//!
//! Every payload MemoryDB appends to the transaction log is one of these
//! records. `Effects` carries the intercepted replication stream (paper
//! §3.1); the remaining variants implement leader election (§4.1), snapshot
//! verification (§7.2.1), and the slot-migration 2PC (§5.2).

use bytes::Bytes;
use memorydb_engine::effects::{decode_effect_batch, encode_effect_batch, EffectCmd};
use memorydb_engine::EngineVersion;

/// Identifier of a node within a cluster.
pub type NodeId = u64;

/// Identifier of a shard within a cluster.
pub type ShardId = u32;

/// One record in a shard's transaction log.
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// An atomic batch of deterministic effects, stamped with the engine
    /// version that produced it (upgrade protection, §7.1).
    Effects {
        /// Version of the engine that generated this stream segment.
        version: EngineVersion,
        /// The effect commands, applied in order.
        effects: Vec<EffectCmd>,
    },
    /// A leadership claim: appending this (conditionally, at the log tail)
    /// is how a caught-up replica becomes primary (§4.1.1).
    LeaderClaim {
        /// The claiming node.
        node: NodeId,
        /// New leadership epoch (monotone per shard).
        epoch: u64,
        /// Lease duration granted by this claim, in milliseconds.
        lease_ms: u64,
    },
    /// Periodic lease renewal/heartbeat from the current primary (§4.1.3).
    LeaseRenewal {
        /// The renewing primary.
        node: NodeId,
        /// Its epoch.
        epoch: u64,
        /// Lease duration from the moment a replica observes this entry.
        lease_ms: u64,
    },
    /// Voluntary lease release for collaborative leadership transfer during
    /// N+1 scaling (§5.2): observers may campaign immediately.
    LeaseRelease {
        /// The releasing primary.
        node: NodeId,
        /// Its epoch.
        epoch: u64,
    },
    /// The current running checksum, injected periodically so verifiers can
    /// cross-check snapshots against the log prefix (§7.2.1).
    ChecksumProbe {
        /// Running CRC64 over all prior record payloads.
        crc: u64,
    },
    /// Slot-migration 2PC: the source has durably decided to hand `slot` to
    /// `target` (written to the SOURCE shard's log).
    MigrationPrepare {
        /// Slot being transferred.
        slot: u16,
        /// Receiving shard.
        target: ShardId,
    },
    /// Slot-migration 2PC: the target durably accepts ownership of `slot`
    /// (written to the TARGET shard's log).
    MigrationCommit {
        /// Slot received.
        slot: u16,
        /// Originating shard.
        source: ShardId,
    },
    /// Slot-migration 2PC: the source records completion and relinquishes
    /// ownership (written to the SOURCE shard's log).
    MigrationDone {
        /// Slot released.
        slot: u16,
    },
    /// Slot-migration abort: the transfer was abandoned before the
    /// ownership handoff; the source keeps the slot and resumes writes
    /// (written to the SOURCE shard's log).
    MigrationAbort {
        /// Slot retained.
        slot: u16,
    },
    /// Initial/explicit statement of slot ownership (written at shard
    /// creation so ownership is recoverable from the log alone).
    SlotOwnership {
        /// Slots owned by this shard, as inclusive ranges.
        ranges: Vec<(u16, u16)>,
    },
}

const TAG_EFFECTS: u8 = 1;
const TAG_CLAIM: u8 = 2;
const TAG_RENEWAL: u8 = 3;
const TAG_RELEASE: u8 = 4;
const TAG_CHECKSUM: u8 = 5;
const TAG_MIG_PREPARE: u8 = 6;
const TAG_MIG_COMMIT: u8 = 7;
const TAG_MIG_DONE: u8 = 8;
const TAG_SLOTS: u8 = 9;
const TAG_MIG_ABORT: u8 = 10;

fn push_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

struct Rd<'a> {
    d: &'a [u8],
    p: usize,
}

impl<'a> Rd<'a> {
    fn u8(&mut self) -> Option<u8> {
        let v = *self.d.get(self.p)?;
        self.p += 1;
        Some(v)
    }
    fn u16(&mut self) -> Option<u16> {
        let raw: [u8; 2] = self.d.get(self.p..self.p + 2)?.try_into().ok()?;
        self.p += 2;
        Some(u16::from_le_bytes(raw))
    }
    fn u32(&mut self) -> Option<u32> {
        let raw: [u8; 4] = self.d.get(self.p..self.p + 4)?.try_into().ok()?;
        self.p += 4;
        Some(u32::from_le_bytes(raw))
    }
    fn u64(&mut self) -> Option<u64> {
        let raw: [u8; 8] = self.d.get(self.p..self.p + 8)?.try_into().ok()?;
        self.p += 8;
        Some(u64::from_le_bytes(raw))
    }
    fn rest(&self) -> &'a [u8] {
        &self.d[self.p..]
    }
    fn at_end(&self) -> bool {
        self.p == self.d.len()
    }
}

impl Record {
    /// Serializes the record into a transaction-log payload.
    pub fn encode(&self) -> Bytes {
        let mut out = Vec::new();
        match self {
            Record::Effects { version, effects } => {
                out.push(TAG_EFFECTS);
                push_u16(&mut out, version.major);
                push_u16(&mut out, version.minor);
                push_u16(&mut out, version.patch);
                out.extend_from_slice(&encode_effect_batch(effects));
            }
            Record::LeaderClaim {
                node,
                epoch,
                lease_ms,
            } => {
                out.push(TAG_CLAIM);
                push_u64(&mut out, *node);
                push_u64(&mut out, *epoch);
                push_u64(&mut out, *lease_ms);
            }
            Record::LeaseRenewal {
                node,
                epoch,
                lease_ms,
            } => {
                out.push(TAG_RENEWAL);
                push_u64(&mut out, *node);
                push_u64(&mut out, *epoch);
                push_u64(&mut out, *lease_ms);
            }
            Record::LeaseRelease { node, epoch } => {
                out.push(TAG_RELEASE);
                push_u64(&mut out, *node);
                push_u64(&mut out, *epoch);
            }
            Record::ChecksumProbe { crc } => {
                out.push(TAG_CHECKSUM);
                push_u64(&mut out, *crc);
            }
            Record::MigrationPrepare { slot, target } => {
                out.push(TAG_MIG_PREPARE);
                push_u16(&mut out, *slot);
                push_u32(&mut out, *target);
            }
            Record::MigrationCommit { slot, source } => {
                out.push(TAG_MIG_COMMIT);
                push_u16(&mut out, *slot);
                push_u32(&mut out, *source);
            }
            Record::MigrationDone { slot } => {
                out.push(TAG_MIG_DONE);
                push_u16(&mut out, *slot);
            }
            Record::MigrationAbort { slot } => {
                out.push(TAG_MIG_ABORT);
                push_u16(&mut out, *slot);
            }
            Record::SlotOwnership { ranges } => {
                out.push(TAG_SLOTS);
                push_u32(&mut out, ranges.len() as u32);
                for (lo, hi) in ranges {
                    push_u16(&mut out, *lo);
                    push_u16(&mut out, *hi);
                }
            }
        }
        Bytes::from(out)
    }

    /// Deserializes a transaction-log payload.
    pub fn decode(data: &[u8]) -> Option<Record> {
        let mut r = Rd { d: data, p: 0 };
        let rec = match r.u8()? {
            TAG_EFFECTS => {
                let version = EngineVersion::new(r.u16()?, r.u16()?, r.u16()?);
                let effects = decode_effect_batch(r.rest())?;
                return Some(Record::Effects { version, effects });
            }
            TAG_CLAIM => Record::LeaderClaim {
                node: r.u64()?,
                epoch: r.u64()?,
                lease_ms: r.u64()?,
            },
            TAG_RENEWAL => Record::LeaseRenewal {
                node: r.u64()?,
                epoch: r.u64()?,
                lease_ms: r.u64()?,
            },
            TAG_RELEASE => Record::LeaseRelease {
                node: r.u64()?,
                epoch: r.u64()?,
            },
            TAG_CHECKSUM => Record::ChecksumProbe { crc: r.u64()? },
            TAG_MIG_PREPARE => Record::MigrationPrepare {
                slot: r.u16()?,
                target: r.u32()?,
            },
            TAG_MIG_COMMIT => Record::MigrationCommit {
                slot: r.u16()?,
                source: r.u32()?,
            },
            TAG_MIG_DONE => Record::MigrationDone { slot: r.u16()? },
            TAG_MIG_ABORT => Record::MigrationAbort { slot: r.u16()? },
            TAG_SLOTS => {
                let n = r.u32()? as usize;
                let mut ranges = Vec::with_capacity(n.min(16384));
                for _ in 0..n {
                    ranges.push((r.u16()?, r.u16()?));
                }
                Record::SlotOwnership { ranges }
            }
            _ => return None,
        };
        if r.at_end() {
            Some(rec)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memorydb_engine::cmd;

    fn roundtrip(rec: Record) {
        let encoded = rec.encode();
        assert_eq!(Record::decode(&encoded), Some(rec));
    }

    #[test]
    fn all_variants_roundtrip() {
        roundtrip(Record::Effects {
            version: EngineVersion::CURRENT,
            effects: vec![cmd(["SET", "k", "v"]), cmd(["DEL", "x"])],
        });
        roundtrip(Record::Effects {
            version: EngineVersion::new(8, 1, 2),
            effects: vec![],
        });
        roundtrip(Record::LeaderClaim {
            node: 42,
            epoch: 7,
            lease_ms: 2000,
        });
        roundtrip(Record::LeaseRenewal {
            node: 42,
            epoch: 7,
            lease_ms: 2000,
        });
        roundtrip(Record::LeaseRelease { node: 1, epoch: 2 });
        roundtrip(Record::ChecksumProbe { crc: 0xDEADBEEF });
        roundtrip(Record::MigrationPrepare {
            slot: 100,
            target: 3,
        });
        roundtrip(Record::MigrationCommit {
            slot: 100,
            source: 1,
        });
        roundtrip(Record::MigrationDone { slot: 100 });
        roundtrip(Record::MigrationAbort { slot: 100 });
        roundtrip(Record::SlotOwnership {
            ranges: vec![(0, 8191), (10000, 16383)],
        });
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(Record::decode(&[]), None);
        assert_eq!(Record::decode(&[99, 1, 2, 3]), None);
        // Truncated claim.
        assert_eq!(Record::decode(&[2, 1, 0, 0]), None);
        // Trailing garbage after a fixed-size record.
        let mut ok = Record::ChecksumProbe { crc: 1 }.encode().to_vec();
        ok.push(0);
        assert_eq!(Record::decode(&ok), None);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_effect() -> impl Strategy<Value = Vec<bytes::Bytes>> {
        proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..24).prop_map(bytes::Bytes::from),
            0..6,
        )
    }

    fn arb_record() -> impl Strategy<Value = Record> {
        prop_oneof![
            (
                any::<(u16, u16, u16)>(),
                proptest::collection::vec(arb_effect(), 0..4)
            )
                .prop_map(|((ma, mi, pa), effects)| Record::Effects {
                    version: EngineVersion::new(ma, mi, pa),
                    effects,
                }),
            (any::<u64>(), any::<u64>(), any::<u64>()).prop_map(|(node, epoch, lease_ms)| {
                Record::LeaderClaim {
                    node,
                    epoch,
                    lease_ms,
                }
            }),
            (any::<u64>(), any::<u64>(), any::<u64>()).prop_map(|(node, epoch, lease_ms)| {
                Record::LeaseRenewal {
                    node,
                    epoch,
                    lease_ms,
                }
            }),
            (any::<u64>(), any::<u64>())
                .prop_map(|(node, epoch)| Record::LeaseRelease { node, epoch }),
            any::<u64>().prop_map(|crc| Record::ChecksumProbe { crc }),
            (any::<u16>(), any::<u32>()).prop_map(|(slot, target)| Record::MigrationPrepare {
                slot: slot % 16384,
                target
            }),
            (any::<u16>(), any::<u32>()).prop_map(|(slot, source)| Record::MigrationCommit {
                slot: slot % 16384,
                source
            }),
            any::<u16>().prop_map(|slot| Record::MigrationDone { slot: slot % 16384 }),
            any::<u16>().prop_map(|slot| Record::MigrationAbort { slot: slot % 16384 }),
            proptest::collection::vec((any::<u16>(), any::<u16>()), 0..8).prop_map(|pairs| {
                Record::SlotOwnership {
                    ranges: pairs
                        .into_iter()
                        .map(|(a, b)| (a.min(b) % 16384, a.max(b) % 16384))
                        .collect(),
                }
            }),
        ]
    }

    proptest! {
        #[test]
        fn prop_record_roundtrip(rec in arb_record()) {
            let encoded = rec.encode();
            prop_assert_eq!(Record::decode(&encoded), Some(rec));
        }

        #[test]
        fn prop_decode_never_panics(data in proptest::collection::vec(any::<u8>(), 0..128)) {
            let _ = Record::decode(&data);
        }

        #[test]
        fn prop_truncation_never_roundtrips_to_wrong_record(rec in arb_record(), cut in 1usize..8) {
            let encoded = rec.encode();
            if encoded.len() > cut {
                let truncated = &encoded[..encoded.len() - cut];
                // Truncated Effects payloads must not decode to a DIFFERENT
                // valid record of the same kind silently... most truncations
                // fail; any that succeed must not equal the original.
                if let Some(other) = Record::decode(truncated) {
                    prop_assert_ne!(other, rec);
                }
            }
        }
    }
}
