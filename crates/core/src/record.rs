//! The shard's transaction-log record format.
//!
//! Every payload MemoryDB appends to the transaction log is one of these
//! records. `Effects` carries the intercepted replication stream (paper
//! §3.1); the remaining variants implement leader election (§4.1), snapshot
//! verification (§7.2.1), and the slot-migration 2PC (§5.2).

use bytes::Bytes;
use memorydb_engine::effects::{
    decode_effect_batch, effect_batch_encoded_len, encode_effect_batch_into, EffectCmd,
};
use memorydb_engine::EngineVersion;

/// Identifier of a node within a cluster.
pub type NodeId = u64;

/// Identifier of a shard within a cluster.
pub type ShardId = u32;

/// One record in a shard's transaction log.
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// An atomic batch of deterministic effects, stamped with the engine
    /// version that produced it (upgrade protection, §7.1).
    Effects {
        /// Version of the engine that generated this stream segment.
        version: EngineVersion,
        /// The effect commands, applied in order.
        effects: Vec<EffectCmd>,
    },
    /// A leadership claim: appending this (conditionally, at the log tail)
    /// is how a caught-up replica becomes primary (§4.1.1).
    LeaderClaim {
        /// The claiming node.
        node: NodeId,
        /// New leadership epoch (monotone per shard).
        epoch: u64,
        /// Lease duration granted by this claim, in milliseconds.
        lease_ms: u64,
    },
    /// Periodic lease renewal/heartbeat from the current primary (§4.1.3).
    LeaseRenewal {
        /// The renewing primary.
        node: NodeId,
        /// Its epoch.
        epoch: u64,
        /// Lease duration from the moment a replica observes this entry.
        lease_ms: u64,
    },
    /// Voluntary lease release for collaborative leadership transfer during
    /// N+1 scaling (§5.2): observers may campaign immediately.
    LeaseRelease {
        /// The releasing primary.
        node: NodeId,
        /// Its epoch.
        epoch: u64,
    },
    /// The current running checksum, injected periodically so verifiers can
    /// cross-check snapshots against the log prefix (§7.2.1).
    ChecksumProbe {
        /// Running CRC64 over all prior record payloads.
        crc: u64,
    },
    /// Slot-migration 2PC: the source has durably decided to hand `slot` to
    /// `target` (written to the SOURCE shard's log).
    MigrationPrepare {
        /// Slot being transferred.
        slot: u16,
        /// Receiving shard.
        target: ShardId,
    },
    /// Slot-migration 2PC: the target durably accepts ownership of `slot`
    /// (written to the TARGET shard's log).
    MigrationCommit {
        /// Slot received.
        slot: u16,
        /// Originating shard.
        source: ShardId,
    },
    /// Slot-migration 2PC: the source records completion and relinquishes
    /// ownership (written to the SOURCE shard's log).
    MigrationDone {
        /// Slot released.
        slot: u16,
    },
    /// Slot-migration abort: the transfer was abandoned before the
    /// ownership handoff; the source keeps the slot and resumes writes
    /// (written to the SOURCE shard's log).
    MigrationAbort {
        /// Slot retained.
        slot: u16,
    },
    /// Initial/explicit statement of slot ownership (written at shard
    /// creation so ownership is recoverable from the log alone).
    SlotOwnership {
        /// Slots owned by this shard, as inclusive ranges.
        ranges: Vec<(u16, u16)>,
    },
}

/// First byte of a v2 framed record. Legacy (v1) payloads start with a
/// record tag in `1..=10`, so the magic is unambiguous and
/// [`Record::decode_any`] can read both formats from the same log.
pub const FRAME_MAGIC: u8 = 0xD2;

/// Fixed overhead of a v2 frame: magic byte, `u32` body length, `u32` CRC.
pub const FRAME_HEADER_LEN: usize = 9;

/// Typed failure decoding a v2 framed record (or, via
/// [`Record::decode_any`], a legacy payload).
///
/// Corruption is reported per record: a bad CRC names the exact frame, and
/// streaming readers can use the length prefix to skip past it rather than
/// aborting the whole stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// The first byte is neither the frame magic nor a known legacy tag.
    BadMagic,
    /// The buffer ends before the frame header or body does.
    Truncated,
    /// The per-record CRC32 does not match the body.
    CrcMismatch {
        /// CRC stored in the frame header.
        expected: u32,
        /// CRC computed over the received body.
        actual: u32,
    },
    /// Framing was intact but the body is not a valid record.
    Undecodable,
    /// A whole-payload decode found bytes after the first frame.
    TrailingBytes,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::BadMagic => write!(f, "bad record magic"),
            FrameError::Truncated => write!(f, "truncated record frame"),
            FrameError::CrcMismatch { expected, actual } => write!(
                f,
                "record crc mismatch (expected {expected:#010x}, got {actual:#010x})"
            ),
            FrameError::Undecodable => write!(f, "undecodable record body"),
            FrameError::TrailingBytes => write!(f, "trailing bytes after record frame"),
        }
    }
}

const CRC32_POLY: u32 = 0xEDB8_8320;

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                CRC32_POLY ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// CRC32 (IEEE 802.3, reflected) over `data`. Used as the per-record
/// integrity check in the v2 frame; cheap enough for the hot append path.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = u32::MAX;
    for &b in data {
        let idx = ((c ^ b as u32) & 0xFF) as usize;
        c = CRC32_TABLE.get(idx).copied().unwrap_or(0) ^ (c >> 8);
    }
    c ^ u32::MAX
}

const TAG_EFFECTS: u8 = 1;
const TAG_CLAIM: u8 = 2;
const TAG_RENEWAL: u8 = 3;
const TAG_RELEASE: u8 = 4;
const TAG_CHECKSUM: u8 = 5;
const TAG_MIG_PREPARE: u8 = 6;
const TAG_MIG_COMMIT: u8 = 7;
const TAG_MIG_DONE: u8 = 8;
const TAG_SLOTS: u8 = 9;
const TAG_MIG_ABORT: u8 = 10;

fn push_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

struct Rd<'a> {
    d: &'a [u8],
    p: usize,
}

impl<'a> Rd<'a> {
    fn u8(&mut self) -> Option<u8> {
        let v = *self.d.get(self.p)?;
        self.p += 1;
        Some(v)
    }
    fn u16(&mut self) -> Option<u16> {
        let raw: [u8; 2] = self.d.get(self.p..self.p + 2)?.try_into().ok()?;
        self.p += 2;
        Some(u16::from_le_bytes(raw))
    }
    fn u32(&mut self) -> Option<u32> {
        let raw: [u8; 4] = self.d.get(self.p..self.p + 4)?.try_into().ok()?;
        self.p += 4;
        Some(u32::from_le_bytes(raw))
    }
    fn u64(&mut self) -> Option<u64> {
        let raw: [u8; 8] = self.d.get(self.p..self.p + 8)?.try_into().ok()?;
        self.p += 8;
        Some(u64::from_le_bytes(raw))
    }
    fn rest(&self) -> &'a [u8] {
        &self.d[self.p..]
    }
    fn at_end(&self) -> bool {
        self.p == self.d.len()
    }
}

impl Record {
    /// Serializes the record into a transaction-log payload.
    pub fn encode(&self) -> Bytes {
        let mut out = Vec::with_capacity(self.encoded_len_hint());
        self.encode_into(&mut out);
        Bytes::from(out)
    }

    /// Exact body size for `Effects` (the hot-path record), a small upper
    /// bound for the fixed-size control records — sizing one buffer up
    /// front keeps the append path to a single allocation.
    fn encoded_len_hint(&self) -> usize {
        match self {
            Record::Effects { effects, .. } => 7 + effect_batch_encoded_len(effects),
            Record::SlotOwnership { ranges } => 5 + ranges.len() * 4,
            _ => 32,
        }
    }

    /// Appends the body serialization to `out` (the single-buffer half of
    /// [`Record::encode`] / [`Record::encode_framed`]).
    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            Record::Effects { version, effects } => {
                out.push(TAG_EFFECTS);
                push_u16(out, version.major);
                push_u16(out, version.minor);
                push_u16(out, version.patch);
                encode_effect_batch_into(effects, out);
            }
            Record::LeaderClaim {
                node,
                epoch,
                lease_ms,
            } => {
                out.push(TAG_CLAIM);
                push_u64(out, *node);
                push_u64(out, *epoch);
                push_u64(out, *lease_ms);
            }
            Record::LeaseRenewal {
                node,
                epoch,
                lease_ms,
            } => {
                out.push(TAG_RENEWAL);
                push_u64(out, *node);
                push_u64(out, *epoch);
                push_u64(out, *lease_ms);
            }
            Record::LeaseRelease { node, epoch } => {
                out.push(TAG_RELEASE);
                push_u64(out, *node);
                push_u64(out, *epoch);
            }
            Record::ChecksumProbe { crc } => {
                out.push(TAG_CHECKSUM);
                push_u64(out, *crc);
            }
            Record::MigrationPrepare { slot, target } => {
                out.push(TAG_MIG_PREPARE);
                push_u16(out, *slot);
                push_u32(out, *target);
            }
            Record::MigrationCommit { slot, source } => {
                out.push(TAG_MIG_COMMIT);
                push_u16(out, *slot);
                push_u32(out, *source);
            }
            Record::MigrationDone { slot } => {
                out.push(TAG_MIG_DONE);
                push_u16(out, *slot);
            }
            Record::MigrationAbort { slot } => {
                out.push(TAG_MIG_ABORT);
                push_u16(out, *slot);
            }
            Record::SlotOwnership { ranges } => {
                out.push(TAG_SLOTS);
                push_u32(out, ranges.len() as u32);
                for (lo, hi) in ranges {
                    push_u16(out, *lo);
                    push_u16(out, *hi);
                }
            }
        }
    }

    /// Deserializes a transaction-log payload.
    pub fn decode(data: &[u8]) -> Option<Record> {
        let mut r = Rd { d: data, p: 0 };
        let rec = match r.u8()? {
            TAG_EFFECTS => {
                let version = EngineVersion::new(r.u16()?, r.u16()?, r.u16()?);
                let effects = decode_effect_batch(r.rest())?;
                return Some(Record::Effects { version, effects });
            }
            TAG_CLAIM => Record::LeaderClaim {
                node: r.u64()?,
                epoch: r.u64()?,
                lease_ms: r.u64()?,
            },
            TAG_RENEWAL => Record::LeaseRenewal {
                node: r.u64()?,
                epoch: r.u64()?,
                lease_ms: r.u64()?,
            },
            TAG_RELEASE => Record::LeaseRelease {
                node: r.u64()?,
                epoch: r.u64()?,
            },
            TAG_CHECKSUM => Record::ChecksumProbe { crc: r.u64()? },
            TAG_MIG_PREPARE => Record::MigrationPrepare {
                slot: r.u16()?,
                target: r.u32()?,
            },
            TAG_MIG_COMMIT => Record::MigrationCommit {
                slot: r.u16()?,
                source: r.u32()?,
            },
            TAG_MIG_DONE => Record::MigrationDone { slot: r.u16()? },
            TAG_MIG_ABORT => Record::MigrationAbort { slot: r.u16()? },
            TAG_SLOTS => {
                let n = r.u32()? as usize;
                let mut ranges = Vec::with_capacity(n.min(16384));
                for _ in 0..n {
                    ranges.push((r.u16()?, r.u16()?));
                }
                Record::SlotOwnership { ranges }
            }
            _ => return None,
        };
        if r.at_end() {
            Some(rec)
        } else {
            None
        }
    }

    /// Serializes the record as a v2 frame: `[magic][len u32][crc32 u32][body]`
    /// where `body` is the v1 encoding. The per-record CRC replaces the
    /// chained full-entry checksum on the hot append path; chain checksums
    /// are still folded at batch boundaries for stream integrity.
    pub fn encode_framed(&self) -> Bytes {
        // One pre-sized buffer: reserve the header, encode the body in
        // place, then back-patch length and CRC — the whole frame is a
        // single allocation instead of body + copy.
        let mut out = Vec::with_capacity(FRAME_HEADER_LEN + self.encoded_len_hint());
        out.resize(FRAME_HEADER_LEN, 0);
        self.encode_into(&mut out);
        let body_len = out.len() - FRAME_HEADER_LEN;
        let crc = crc32(out.get(FRAME_HEADER_LEN..).unwrap_or(&[]));
        if let Some(h) = out.first_mut() {
            *h = FRAME_MAGIC;
        }
        if let Some(h) = out.get_mut(1..5) {
            h.copy_from_slice(&(body_len as u32).to_le_bytes());
        }
        if let Some(h) = out.get_mut(5..9) {
            h.copy_from_slice(&crc.to_le_bytes());
        }
        Bytes::from(out)
    }

    /// Splits one v2 frame off the front of `data`, verifies its CRC, and
    /// decodes the body. Returns the record and the remaining bytes, so
    /// callers can walk a concatenated stream of frames.
    pub fn decode_framed_prefix(data: &[u8]) -> Result<(Record, &[u8]), FrameError> {
        let (expected, body, rest) = Self::split_frame(data)?;
        let actual = crc32(body);
        if actual != expected {
            return Err(FrameError::CrcMismatch { expected, actual });
        }
        let rec = Record::decode(body).ok_or(FrameError::Undecodable)?;
        Ok((rec, rest))
    }

    /// Length-prefix walk: returns the stored CRC, the body slice, and the
    /// bytes after the frame WITHOUT checking the CRC, so streaming readers
    /// can skip a corrupt record and keep going.
    pub fn split_frame(data: &[u8]) -> Result<(u32, &[u8], &[u8]), FrameError> {
        let mut r = Rd { d: data, p: 0 };
        match r.u8() {
            Some(m) if m == FRAME_MAGIC => {}
            Some(_) => return Err(FrameError::BadMagic),
            None => return Err(FrameError::Truncated),
        }
        let len = r.u32().ok_or(FrameError::Truncated)? as usize;
        let crc = r.u32().ok_or(FrameError::Truncated)?;
        let body = data
            .get(FRAME_HEADER_LEN..FRAME_HEADER_LEN + len)
            .ok_or(FrameError::Truncated)?;
        let rest = data.get(FRAME_HEADER_LEN + len..).unwrap_or(&[]);
        Ok((crc, body, rest))
    }

    /// Decodes a whole payload that must be exactly one v2 frame.
    pub fn decode_framed(data: &[u8]) -> Result<Record, FrameError> {
        let (rec, rest) = Self::decode_framed_prefix(data)?;
        if rest.is_empty() {
            Ok(rec)
        } else {
            Err(FrameError::TrailingBytes)
        }
    }

    /// Decodes either format: v2 frames (magic byte, CRC-checked) or legacy
    /// v1 payloads, so restore/replay reads logs written before and after
    /// the format switch.
    pub fn decode_any(data: &[u8]) -> Result<Record, FrameError> {
        if data.first() == Some(&FRAME_MAGIC) {
            Record::decode_framed(data)
        } else {
            Record::decode(data).ok_or(FrameError::Undecodable)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memorydb_engine::cmd;

    fn roundtrip(rec: Record) {
        let encoded = rec.encode();
        assert_eq!(Record::decode(&encoded), Some(rec));
    }

    #[test]
    fn all_variants_roundtrip() {
        roundtrip(Record::Effects {
            version: EngineVersion::CURRENT,
            effects: vec![cmd(["SET", "k", "v"]), cmd(["DEL", "x"])],
        });
        roundtrip(Record::Effects {
            version: EngineVersion::new(8, 1, 2),
            effects: vec![],
        });
        roundtrip(Record::LeaderClaim {
            node: 42,
            epoch: 7,
            lease_ms: 2000,
        });
        roundtrip(Record::LeaseRenewal {
            node: 42,
            epoch: 7,
            lease_ms: 2000,
        });
        roundtrip(Record::LeaseRelease { node: 1, epoch: 2 });
        roundtrip(Record::ChecksumProbe { crc: 0xDEADBEEF });
        roundtrip(Record::MigrationPrepare {
            slot: 100,
            target: 3,
        });
        roundtrip(Record::MigrationCommit {
            slot: 100,
            source: 1,
        });
        roundtrip(Record::MigrationDone { slot: 100 });
        roundtrip(Record::MigrationAbort { slot: 100 });
        roundtrip(Record::SlotOwnership {
            ranges: vec![(0, 8191), (10000, 16383)],
        });
    }

    #[test]
    fn framed_roundtrip_and_decode_any_reads_both_formats() {
        let rec = Record::Effects {
            version: EngineVersion::CURRENT,
            effects: vec![cmd(["SET", "k", "v"]), cmd(["DEL", "x"])],
        };
        let framed = rec.encode_framed();
        assert_eq!(framed.first(), Some(&FRAME_MAGIC));
        assert_eq!(Record::decode_framed(&framed), Ok(rec.clone()));
        // decode_any accepts both the framed and the legacy encoding.
        assert_eq!(Record::decode_any(&framed), Ok(rec.clone()));
        assert_eq!(Record::decode_any(&rec.encode()), Ok(rec));
    }

    #[test]
    fn framed_decode_reports_typed_errors() {
        let rec = Record::ChecksumProbe { crc: 7 };
        let mut framed = rec.encode_framed().to_vec();
        // Flip a body byte: CRC mismatch, naming both checksums.
        let last = framed.len() - 1;
        if let Some(b) = framed.get_mut(last) {
            *b ^= 0xFF;
        }
        assert!(matches!(
            Record::decode_framed(&framed),
            Err(FrameError::CrcMismatch { .. })
        ));
        // Truncation inside the body.
        let ok = rec.encode_framed();
        assert_eq!(
            Record::decode_framed(&ok[..ok.len() - 2]),
            Err(FrameError::Truncated)
        );
        // Trailing bytes after a complete frame.
        let mut trailing = ok.to_vec();
        trailing.push(0);
        assert_eq!(
            Record::decode_framed(&trailing),
            Err(FrameError::TrailingBytes)
        );
        // decode_any on garbage that is neither format: no frame magic, so
        // it takes the legacy path and fails as an undecodable body.
        assert_eq!(
            Record::decode_any(&[99, 1, 2]),
            Err(FrameError::Undecodable)
        );
        assert_eq!(Record::decode_any(&[]), Err(FrameError::Undecodable));
    }

    #[test]
    fn crc32_matches_known_vector() {
        // IEEE CRC32 of "123456789" is 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn corrupt_frame_in_stream_is_isolated_not_fatal() {
        // Three framed records concatenated; corrupt the middle one's body.
        let recs = [
            Record::ChecksumProbe { crc: 1 },
            Record::LeaseRelease { node: 9, epoch: 4 },
            Record::MigrationDone { slot: 12 },
        ];
        let mut stream = Vec::new();
        let mut offsets = Vec::new();
        for r in &recs {
            offsets.push(stream.len());
            stream.extend_from_slice(&r.encode_framed());
        }
        // Flip a byte inside record 1's body (skip its 9-byte header).
        if let Some(b) = stream.get_mut(offsets[1] + FRAME_HEADER_LEN) {
            *b ^= 0x55;
        }
        // Walk the stream with the length prefix: record 0 decodes, record 1
        // fails with a typed CRC error at exactly that frame, record 2 still
        // decodes — corruption does not abort the stream.
        let mut cursor: &[u8] = &stream;
        let (r0, rest) = Record::decode_framed_prefix(cursor).unwrap();
        assert_eq!(r0, recs[0]);
        cursor = rest;
        let err = Record::decode_framed_prefix(cursor).unwrap_err();
        assert!(matches!(err, FrameError::CrcMismatch { .. }));
        let (_, _, rest) = Record::split_frame(cursor).unwrap();
        cursor = rest;
        let (r2, rest) = Record::decode_framed_prefix(cursor).unwrap();
        assert_eq!(r2, recs[2]);
        assert!(rest.is_empty());
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(Record::decode(&[]), None);
        assert_eq!(Record::decode(&[99, 1, 2, 3]), None);
        // Truncated claim.
        assert_eq!(Record::decode(&[2, 1, 0, 0]), None);
        // Trailing garbage after a fixed-size record.
        let mut ok = Record::ChecksumProbe { crc: 1 }.encode().to_vec();
        ok.push(0);
        assert_eq!(Record::decode(&ok), None);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_effect() -> impl Strategy<Value = Vec<bytes::Bytes>> {
        proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..24).prop_map(bytes::Bytes::from),
            0..6,
        )
    }

    fn arb_record() -> impl Strategy<Value = Record> {
        prop_oneof![
            (
                any::<(u16, u16, u16)>(),
                proptest::collection::vec(arb_effect(), 0..4)
            )
                .prop_map(|((ma, mi, pa), effects)| Record::Effects {
                    version: EngineVersion::new(ma, mi, pa),
                    effects,
                }),
            (any::<u64>(), any::<u64>(), any::<u64>()).prop_map(|(node, epoch, lease_ms)| {
                Record::LeaderClaim {
                    node,
                    epoch,
                    lease_ms,
                }
            }),
            (any::<u64>(), any::<u64>(), any::<u64>()).prop_map(|(node, epoch, lease_ms)| {
                Record::LeaseRenewal {
                    node,
                    epoch,
                    lease_ms,
                }
            }),
            (any::<u64>(), any::<u64>())
                .prop_map(|(node, epoch)| Record::LeaseRelease { node, epoch }),
            any::<u64>().prop_map(|crc| Record::ChecksumProbe { crc }),
            (any::<u16>(), any::<u32>()).prop_map(|(slot, target)| Record::MigrationPrepare {
                slot: slot % 16384,
                target
            }),
            (any::<u16>(), any::<u32>()).prop_map(|(slot, source)| Record::MigrationCommit {
                slot: slot % 16384,
                source
            }),
            any::<u16>().prop_map(|slot| Record::MigrationDone { slot: slot % 16384 }),
            any::<u16>().prop_map(|slot| Record::MigrationAbort { slot: slot % 16384 }),
            proptest::collection::vec((any::<u16>(), any::<u16>()), 0..8).prop_map(|pairs| {
                Record::SlotOwnership {
                    ranges: pairs
                        .into_iter()
                        .map(|(a, b)| (a.min(b) % 16384, a.max(b) % 16384))
                        .collect(),
                }
            }),
        ]
    }

    proptest! {
        #[test]
        fn prop_record_roundtrip(rec in arb_record()) {
            let encoded = rec.encode();
            prop_assert_eq!(Record::decode(&encoded), Some(rec));
        }

        #[test]
        fn prop_decode_never_panics(data in proptest::collection::vec(any::<u8>(), 0..128)) {
            let _ = Record::decode(&data);
            let _ = Record::decode_any(&data);
            let _ = Record::decode_framed(&data);
        }

        #[test]
        fn prop_framed_roundtrip(rec in arb_record()) {
            let framed = rec.encode_framed();
            prop_assert_eq!(Record::decode_framed(&framed), Ok(rec.clone()));
            prop_assert_eq!(Record::decode_any(&framed), Ok(rec.clone()));
            // Legacy encoding of the same record still decodes via decode_any.
            prop_assert_eq!(Record::decode_any(&rec.encode()), Ok(rec));
        }

        #[test]
        fn prop_corrupted_crc_detected_at_exact_record(
            recs in proptest::collection::vec(arb_record(), 1..5),
            victim_seed in any::<usize>(),
            flip in 1u8..=255,
        ) {
            // Concatenate framed records, corrupt one body byte in one
            // record, and verify the walk pinpoints exactly that record with
            // a typed CrcMismatch while every other record still decodes.
            let victim = victim_seed % recs.len();
            let mut stream = Vec::new();
            let mut corrupt_at = None;
            for (i, r) in recs.iter().enumerate() {
                let frame = r.encode_framed();
                if i == victim && frame.len() > FRAME_HEADER_LEN {
                    corrupt_at = Some(stream.len() + FRAME_HEADER_LEN);
                }
                stream.extend_from_slice(&frame);
            }
            if let Some(at) = corrupt_at {
                if let Some(b) = stream.get_mut(at) {
                    *b ^= flip;
                }
            }
            let mut cursor: &[u8] = &stream;
            for (i, r) in recs.iter().enumerate() {
                match Record::decode_framed_prefix(cursor) {
                    Ok((got, rest)) => {
                        prop_assert!(corrupt_at.is_none() || i != victim);
                        prop_assert_eq!(&got, r);
                        cursor = rest;
                    }
                    Err(e) => {
                        prop_assert_eq!(i, victim);
                        prop_assert!(matches!(e, FrameError::CrcMismatch { .. }));
                        let split = Record::split_frame(cursor);
                        prop_assert!(split.is_ok(), "frame header must stay intact");
                        if let Ok((_, _, rest)) = split {
                            cursor = rest;
                        }
                    }
                }
            }
            prop_assert!(cursor.is_empty());
        }

        #[test]
        fn prop_truncation_never_roundtrips_to_wrong_record(rec in arb_record(), cut in 1usize..8) {
            let encoded = rec.encode();
            if encoded.len() > cut {
                let truncated = &encoded[..encoded.len() - cut];
                // Truncated Effects payloads must not decode to a DIFFERENT
                // valid record of the same kind silently... most truncations
                // fail; any that succeed must not equal the original.
                if let Some(other) = Record::decode(truncated) {
                    prop_assert_ne!(other, rec);
                }
            }
        }
    }
}
