//! Snapshot-creation scheduling (paper §4.2.3).
//!
//! Restoration must stay **snapshot-dominant**: the fresher the latest
//! snapshot, the less log a recovering replica replays. Freshness is the
//! snapshot's distance from the log tail; it deteriorates with write
//! throughput (the log grows faster) and with dataset size (snapshots take
//! longer, letting the log grow more in the meantime). The monitoring
//! service samples these factors and schedules a new snapshot whenever the
//! latest one is too stale.

use memorydb_txlog::EntryId;

/// Decides when a shard needs a fresh snapshot.
#[derive(Debug, Clone)]
pub struct SnapshotScheduler {
    /// Always allow the log suffix to grow to at least this many bytes
    /// before snapshotting (avoids snapshot thrash on small datasets).
    pub min_suffix_bytes: usize,
    /// Snapshot when the suffix exceeds this fraction of the dataset size —
    /// replay then costs at most ~ratio of a full snapshot load, keeping
    /// restoration snapshot-dominant.
    pub suffix_to_dataset_ratio: f64,
}

impl Default for SnapshotScheduler {
    fn default() -> Self {
        SnapshotScheduler {
            min_suffix_bytes: 64 * 1024,
            suffix_to_dataset_ratio: 0.25,
        }
    }
}

/// A shard's sampled freshness inputs.
#[derive(Debug, Clone, Copy)]
pub struct FreshnessSample {
    /// Position covered by the latest verified snapshot (ZERO = none yet).
    pub snapshot_covered: EntryId,
    /// Current committed log tail.
    pub log_tail: EntryId,
    /// Approximate bytes of log after `snapshot_covered`.
    pub suffix_bytes: usize,
    /// Approximate dataset size in bytes.
    pub dataset_bytes: usize,
}

impl SnapshotScheduler {
    /// Staleness threshold in bytes for a dataset of the given size.
    pub fn threshold_bytes(&self, dataset_bytes: usize) -> usize {
        self.min_suffix_bytes
            .max((dataset_bytes as f64 * self.suffix_to_dataset_ratio) as usize)
    }

    /// Should a new snapshot be created now?
    pub fn should_snapshot(&self, sample: &FreshnessSample) -> bool {
        if sample.log_tail <= sample.snapshot_covered {
            return false; // nothing new to cover
        }
        // A shard with data but no snapshot at all should get one as soon
        // as there is anything to snapshot.
        if sample.snapshot_covered == EntryId::ZERO && sample.dataset_bytes > 0 {
            return true;
        }
        sample.suffix_bytes >= self.threshold_bytes(sample.dataset_bytes)
    }

    /// Freshness as a 0..=1 score (1 = perfectly fresh); for dashboards and
    /// the recovery-MTTR bench.
    pub fn freshness(&self, sample: &FreshnessSample) -> f64 {
        let threshold = self.threshold_bytes(sample.dataset_bytes) as f64;
        (1.0 - sample.suffix_bytes as f64 / threshold).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(covered: u64, tail: u64, suffix: usize, dataset: usize) -> FreshnessSample {
        FreshnessSample {
            snapshot_covered: EntryId(covered),
            log_tail: EntryId(tail),
            suffix_bytes: suffix,
            dataset_bytes: dataset,
        }
    }

    #[test]
    fn fresh_snapshot_not_rescheduled() {
        let s = SnapshotScheduler::default();
        assert!(!s.should_snapshot(&sample(100, 100, 0, 1 << 20)));
        assert!(!s.should_snapshot(&sample(100, 101, 100, 1 << 20)));
    }

    #[test]
    fn first_snapshot_taken_immediately() {
        let s = SnapshotScheduler::default();
        assert!(s.should_snapshot(&sample(0, 5, 500, 10_000)));
        // ...but not for a completely empty shard.
        assert!(!s.should_snapshot(&sample(0, 0, 0, 0)));
    }

    #[test]
    fn large_suffix_triggers() {
        let s = SnapshotScheduler::default();
        let dataset = 1 << 20; // 1 MiB → threshold = max(64K, 256K) = 256K
        assert_eq!(s.threshold_bytes(dataset), 256 * 1024);
        assert!(!s.should_snapshot(&sample(10, 99, 200 * 1024, dataset)));
        assert!(s.should_snapshot(&sample(10, 99, 300 * 1024, dataset)));
    }

    #[test]
    fn min_bytes_floor_for_small_datasets() {
        let s = SnapshotScheduler::default();
        // Tiny dataset: the 64K floor governs.
        assert_eq!(s.threshold_bytes(1000), 64 * 1024);
        assert!(!s.should_snapshot(&sample(10, 99, 10 * 1024, 1000)));
        assert!(s.should_snapshot(&sample(10, 99, 65 * 1024, 1000)));
    }

    #[test]
    fn higher_write_rate_means_earlier_snapshot() {
        // With a fixed dataset, a faster-growing suffix crosses the
        // threshold sooner — the paper's "higher write throughput grows a
        // snapshot's distance faster".
        let s = SnapshotScheduler::default();
        let dataset = 1 << 20;
        let slow: Vec<usize> = (0..10).map(|t| t * 20 * 1024).collect();
        let fast: Vec<usize> = (0..10).map(|t| t * 60 * 1024).collect();
        let first_trigger = |series: &[usize]| {
            series
                .iter()
                .position(|&b| s.should_snapshot(&sample(10, 999, b, dataset)))
        };
        let slow_t = first_trigger(&slow);
        let fast_t = first_trigger(&fast).unwrap();
        assert!(slow_t.is_none() || fast_t < slow_t.unwrap());
    }

    #[test]
    fn freshness_score_degrades() {
        let s = SnapshotScheduler::default();
        let dataset = 1 << 20;
        let f0 = s.freshness(&sample(10, 99, 0, dataset));
        let f1 = s.freshness(&sample(10, 99, 128 * 1024, dataset));
        let f2 = s.freshness(&sample(10, 99, 999 * 1024, dataset));
        assert_eq!(f0, 1.0);
        assert!(f1 < f0 && f1 > 0.0);
        assert_eq!(f2, 0.0);
    }
}
