//! The BGSave fork/copy-on-write memory model (paper §6.2).
//!
//! Redis snapshots by forking: the child serializes a frozen view while the
//! parent keeps mutating. Three costs drive Figure 6:
//!
//! 1. **Fork spike** — cloning the page table stalls the engine for
//!    ~12 ms per GB of resident memory (the paper's own measurement),
//!    visible as a p100 latency spike when BGSave starts.
//! 2. **COW accumulation** — each parent write to a page the child has not
//!    yet serialized copies that page, inflating RSS (worst case 2×).
//! 3. **Swap collapse** — once RSS exceeds DRAM the host pages out; when
//!    swap use passes ~8% of total memory, the CPU stalls on page-outs,
//!    latency rises beyond a second, and throughput drops to ~0 — an
//!    availability outage from the client's perspective.
//!
//! The model is analytic and deterministic: the DES drives it with time
//! steps and write rates, and the Figure 6 bench prints its outputs.

/// Static parameters of the model.
#[derive(Debug, Clone, Copy)]
pub struct BgSaveModel {
    /// Resident dataset size in bytes at fork time.
    pub dataset_bytes: u64,
    /// Host DRAM in bytes.
    pub dram_bytes: u64,
    /// Page-table clone cost per GB of RSS (paper: 12 ms/GB).
    pub fork_ms_per_gb: f64,
    /// Serialization throughput of the child process, bytes/sec.
    pub serialize_bytes_per_sec: f64,
    /// OS page size.
    pub page_bytes: u64,
    /// Swap fraction of DRAM beyond which the system collapses (paper: 8%).
    pub swap_collapse_fraction: f64,
    /// Disk page-out bandwidth, bytes/sec (bounds progress under swap).
    pub swap_bandwidth_bytes_per_sec: f64,
}

impl Default for BgSaveModel {
    fn default() -> Self {
        BgSaveModel {
            dataset_bytes: 12 << 30,
            dram_bytes: 16 << 30,
            fork_ms_per_gb: 12.0,
            serialize_bytes_per_sec: 400e6,
            page_bytes: 4096,
            swap_collapse_fraction: 0.08,
            swap_bandwidth_bytes_per_sec: 200e6,
        }
    }
}

impl BgSaveModel {
    /// The fork (page-table clone) stall, in milliseconds — the Figure 6
    /// p100 spike at BGSave start.
    pub fn fork_stall_ms(&self) -> f64 {
        self.fork_ms_per_gb * (self.dataset_bytes as f64 / (1u64 << 30) as f64)
    }
}

/// Memory-pressure regime the host is in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemoryPressure {
    /// RSS fits in DRAM.
    Normal,
    /// RSS exceeds DRAM; swapping but below the collapse threshold.
    Swapping,
    /// Swap beyond the collapse fraction: effective availability outage.
    Collapsed,
}

/// A running BGSave: advance with [`BgSaveRun::tick`].
#[derive(Debug, Clone)]
pub struct BgSaveRun {
    model: BgSaveModel,
    /// Bytes the child has serialized so far.
    pub serialized_bytes: u64,
    /// Extra resident bytes due to COW copies.
    pub cow_bytes: u64,
    /// True once the child finished and COW memory was released.
    pub finished: bool,
    elapsed_sec: f64,
}

impl BgSaveRun {
    /// Starts a BGSave under the given model.
    pub fn start(model: BgSaveModel) -> BgSaveRun {
        BgSaveRun {
            model,
            serialized_bytes: 0,
            cow_bytes: 0,
            finished: false,
            elapsed_sec: 0.0,
        }
    }

    /// Current resident set: dataset + COW copies.
    pub fn rss_bytes(&self) -> u64 {
        self.model.dataset_bytes + self.cow_bytes
    }

    /// Bytes currently paged out to swap.
    pub fn swap_bytes(&self) -> u64 {
        self.rss_bytes().saturating_sub(self.model.dram_bytes)
    }

    /// The pressure regime right now.
    pub fn pressure(&self) -> MemoryPressure {
        let swap = self.swap_bytes();
        if swap == 0 {
            MemoryPressure::Normal
        } else if (swap as f64) < self.model.swap_collapse_fraction * self.model.dram_bytes as f64 {
            MemoryPressure::Swapping
        } else {
            MemoryPressure::Collapsed
        }
    }

    /// Multiplier (0..=1) on client throughput in the current regime: 1.0
    /// when healthy, degrading through swap, ~0 when collapsed.
    pub fn throughput_factor(&self) -> f64 {
        match self.pressure() {
            MemoryPressure::Normal => 1.0,
            MemoryPressure::Swapping => {
                // Mild degradation while the kernel still keeps up — the
                // paper shows throughput holding until swap passes the
                // threshold, then falling off a cliff.
                let swap = self.swap_bytes() as f64;
                let limit = self.model.swap_collapse_fraction * self.model.dram_bytes as f64;
                (1.0 - 0.6 * (swap / limit)).max(0.3)
            }
            MemoryPressure::Collapsed => 0.02,
        }
    }

    /// Representative p100 client latency in the current regime, in ms.
    pub fn tail_latency_ms(&self) -> f64 {
        match self.pressure() {
            MemoryPressure::Normal => 2.0,
            MemoryPressure::Swapping => {
                let swap = self.swap_bytes() as f64;
                let limit = self.model.swap_collapse_fraction * self.model.dram_bytes as f64;
                2.0 + 400.0 * (swap / limit)
            }
            // "The tail latency increases over a second" (§6.2.1).
            MemoryPressure::Collapsed => 1000.0 + 500.0 * self.elapsed_sec.min(10.0),
        }
    }

    /// Advances the run by `dt_sec` with the parent executing
    /// `write_ops_per_sec` mutations, each touching one (approximately
    /// uniformly random) page. Returns the pressure after the step.
    pub fn tick(&mut self, dt_sec: f64, write_ops_per_sec: f64) -> MemoryPressure {
        if self.finished {
            return MemoryPressure::Normal;
        }
        self.elapsed_sec += dt_sec;

        // Serialization progress; stalls hard when collapsed (the CPU waits
        // on page-outs before it can even perform COW, §6.2.1).
        let serialize_rate = match self.pressure() {
            MemoryPressure::Normal => self.model.serialize_bytes_per_sec,
            MemoryPressure::Swapping => self.model.serialize_bytes_per_sec * 0.5,
            MemoryPressure::Collapsed => self.model.swap_bandwidth_bytes_per_sec * 0.1,
        };
        self.serialized_bytes = ((self.serialized_bytes as f64) + serialize_rate * dt_sec)
            .min(self.model.dataset_bytes as f64) as u64;

        if self.serialized_bytes >= self.model.dataset_bytes {
            // Child exits; COW pages are released.
            self.finished = true;
            self.cow_bytes = 0;
            return MemoryPressure::Normal;
        }

        // COW growth: only writes to not-yet-serialized, not-yet-copied
        // pages copy a page. Fraction of the dataset still shared:
        let unserialized = (self.model.dataset_bytes - self.serialized_bytes) as f64
            / self.model.dataset_bytes as f64;
        let uncopied = 1.0 - (self.cow_bytes as f64 / self.model.dataset_bytes as f64).min(1.0);
        let share_hit = unserialized.min(uncopied).max(0.0);
        // Each write dirties one whole page even for a 100-byte value —
        // the amplification that makes COW blow up under small writes.
        let cow_growth = write_ops_per_sec * dt_sec * share_hit * self.model.page_bytes as f64;
        self.cow_bytes =
            (self.cow_bytes as f64 + cow_growth).min(self.model.dataset_bytes as f64) as u64;

        self.pressure()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model_16g_12g() -> BgSaveModel {
        BgSaveModel::default()
    }

    #[test]
    fn fork_stall_matches_papers_constant() {
        let m = model_16g_12g();
        // 12 GB at 12 ms/GB = 144 ms; the paper's 67 ms spike corresponds
        // to ~5.6 GB resident at fork time. Check the linearity.
        assert!((m.fork_stall_ms() - 144.0).abs() < 1e-6);
        let small = BgSaveModel {
            dataset_bytes: (5.6 * (1u64 << 30) as f64) as u64,
            ..m
        };
        assert!((small.fork_stall_ms() - 67.2).abs() < 0.5);
    }

    #[test]
    fn no_writes_no_cow_no_swap() {
        let mut run = BgSaveRun::start(model_16g_12g());
        for _ in 0..100 {
            assert_eq!(run.tick(0.5, 0.0), MemoryPressure::Normal);
            if run.finished {
                break;
            }
        }
        assert!(run.finished);
        assert_eq!(run.cow_bytes, 0);
    }

    #[test]
    fn heavy_writes_drive_swap_collapse() {
        // 12 GB dataset on 16 GB DRAM leaves 4 GB headroom; sustained
        // writes during serialization must blow past it (Figure 6).
        let mut run = BgSaveRun::start(model_16g_12g());
        let mut saw_swapping = false;
        let mut saw_collapse = false;
        for _ in 0..400 {
            // ~120K write ops/s × 4 KiB pages ≈ 500 MB/s of COW growth.
            match run.tick(0.1, 120_000.0) {
                MemoryPressure::Swapping => saw_swapping = true,
                MemoryPressure::Collapsed => {
                    saw_collapse = true;
                    break;
                }
                MemoryPressure::Normal => {}
            }
        }
        assert!(saw_swapping, "should pass through the swapping regime");
        assert!(saw_collapse, "heavy writes must collapse the host");
        assert!(run.throughput_factor() < 0.05);
        assert!(run.tail_latency_ms() >= 1000.0);
    }

    #[test]
    fn throughput_factor_monotone_in_pressure() {
        let mut run = BgSaveRun::start(model_16g_12g());
        let healthy = run.throughput_factor();
        run.cow_bytes = 4 << 30; // exactly at DRAM
        let at_edge = run.throughput_factor();
        run.cow_bytes = (4u64 << 30) + (1 << 30); // 1 GB into swap (>8% of 16 GB? 8% = 1.28GB) — swapping
        let swapping = run.throughput_factor();
        run.cow_bytes = 8 << 30; // deep collapse
        let collapsed = run.throughput_factor();
        assert_eq!(healthy, 1.0);
        assert_eq!(at_edge, 1.0);
        assert!(swapping < 1.0 && swapping > collapsed);
        assert!(collapsed <= 0.02);
    }

    #[test]
    fn finish_releases_cow() {
        let mut run = BgSaveRun::start(BgSaveModel {
            dataset_bytes: 1 << 30,
            ..model_16g_12g()
        });
        let mut ticks = 0;
        while !run.finished && ticks < 1000 {
            run.tick(0.05, 10_000.0);
            ticks += 1;
        }
        assert!(run.finished);
        assert_eq!(run.cow_bytes, 0);
        assert_eq!(run.pressure(), MemoryPressure::Normal);
    }
}
