//! Asynchronous (OSS Redis) replication.
//!
//! Mutating commands execute on the primary, which **replies immediately**
//! and then ships the effect stream to each replica with a configurable
//! delivery lag (paper §2.1/§2.2.2). Replicas apply in order and advertise
//! their acknowledged offset, which is all `WAIT` can consult — it cannot
//! stop other clients from observing unreplicated writes, and nothing ties
//! failover to it.

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use memorydb_engine::exec::Role;
use memorydb_engine::{EffectCmd, Engine, Frame, SessionState};
use parking_lot::{Mutex, RwLock};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// Replication tunables.
#[derive(Debug, Clone, Copy)]
pub struct ReplicationConfig {
    /// Delivery delay from primary to each replica.
    pub lag: Duration,
}

impl Default for ReplicationConfig {
    fn default() -> Self {
        ReplicationConfig {
            lag: Duration::from_millis(2),
        }
    }
}

struct ReplItem {
    offset: u64,
    deliver_at: Instant,
    effects: Vec<EffectCmd>,
}

/// One Redis node.
pub struct RedisNode {
    /// Node id within the shard.
    pub id: u64,
    engine: Mutex<Engine>,
    /// Replication offset this node has applied (replicas) or produced
    /// (primary).
    offset: AtomicU64,
    rx: Mutex<Option<Receiver<ReplItem>>>,
    alive: AtomicBool,
}

impl RedisNode {
    /// Applied/produced replication offset.
    pub fn offset(&self) -> u64 {
        self.offset.load(Ordering::SeqCst)
    }

    /// Is the node up?
    pub fn is_alive(&self) -> bool {
        self.alive.load(Ordering::SeqCst)
    }

    /// Executes a read directly against this node (replica reads are
    /// consistent-but-stale, §2.1).
    pub fn read(&self, session: &mut SessionState, args: &[Bytes]) -> Frame {
        let mut engine = self.engine.lock();
        engine.set_time_ms(now_ms());
        engine.execute(session, args).reply
    }

    /// Number of keys stored.
    pub fn key_count(&self) -> usize {
        self.engine.lock().db.len()
    }

    /// Canonical serialization of this node's keyspace (test comparisons).
    pub fn dump(&self) -> Vec<u8> {
        memorydb_engine::rdb::dump(&self.engine.lock().db)
    }
}

fn now_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .expect("clock after epoch")
        .as_millis() as u64
}

/// A Redis shard: one primary plus asynchronous replicas.
pub struct RedisShard {
    cfg: ReplicationConfig,
    nodes: Vec<Arc<RedisNode>>,
    primary: RwLock<usize>,
    senders: Mutex<Vec<(u64, Sender<ReplItem>)>>,
    next_offset: AtomicU64,
    /// Effects shipped but possibly undelivered, for AOF mirroring.
    pub aof: Mutex<Option<crate::aof::Aof>>,
}

impl RedisShard {
    /// Builds a shard with `replicas` asynchronous replicas.
    pub fn new(cfg: ReplicationConfig, replicas: usize) -> Arc<RedisShard> {
        let mut nodes = Vec::new();
        let mut senders = Vec::new();
        for id in 0..=(replicas as u64) {
            let role = if id == 0 {
                Role::Primary
            } else {
                Role::Replica
            };
            let (node, sender) = Self::make_node(id, role);
            nodes.push(node);
            if let Some(tx) = sender {
                senders.push((id, tx));
            }
        }
        let shard = Arc::new(RedisShard {
            cfg,
            nodes,
            primary: RwLock::new(0),
            senders: Mutex::new(senders),
            next_offset: AtomicU64::new(1),
            aof: Mutex::new(None),
        });
        for node in &shard.nodes {
            if node.id != 0 {
                Self::spawn_applier(Arc::clone(node));
            }
        }
        shard
    }

    fn make_node(id: u64, role: Role) -> (Arc<RedisNode>, Option<Sender<ReplItem>>) {
        let (node, sender) = if role == Role::Replica {
            let (tx, rx) = unbounded();
            (
                RedisNode {
                    id,
                    engine: Mutex::new(Engine::new(Role::Replica)),
                    offset: AtomicU64::new(0),
                    rx: Mutex::new(Some(rx)),
                    alive: AtomicBool::new(true),
                },
                Some(tx),
            )
        } else {
            (
                RedisNode {
                    id,
                    engine: Mutex::new(Engine::new(Role::Primary)),
                    offset: AtomicU64::new(0),
                    rx: Mutex::new(None),
                    alive: AtomicBool::new(true),
                },
                None,
            )
        };
        (Arc::new(node), sender)
    }

    fn spawn_applier(node: Arc<RedisNode>) {
        std::thread::Builder::new()
            .name(format!("redis-replica-{}", node.id))
            .spawn(move || {
                let rx = node.rx.lock().take().expect("replica has a receiver");
                while node.alive.load(Ordering::SeqCst) {
                    match rx.recv_timeout(Duration::from_millis(20)) {
                        Ok(item) => {
                            let now = Instant::now();
                            if item.deliver_at > now {
                                std::thread::sleep(item.deliver_at - now);
                            }
                            if !node.alive.load(Ordering::SeqCst) {
                                break;
                            }
                            let mut engine = node.engine.lock();
                            engine.set_time_ms(now_ms());
                            for eff in &item.effects {
                                let _ = engine.apply_effect(eff);
                            }
                            node.offset.store(item.offset, Ordering::SeqCst);
                        }
                        Err(crossbeam::channel::RecvTimeoutError::Timeout) => continue,
                        Err(crossbeam::channel::RecvTimeoutError::Disconnected) => break,
                    }
                }
            })
            .expect("spawn replica applier");
    }

    /// All nodes.
    pub fn nodes(&self) -> &[Arc<RedisNode>] {
        &self.nodes
    }

    /// The current primary.
    pub fn primary(&self) -> Arc<RedisNode> {
        Arc::clone(&self.nodes[*self.primary.read()])
    }

    /// Live replicas.
    pub fn replicas(&self) -> Vec<Arc<RedisNode>> {
        let p = *self.primary.read();
        self.nodes
            .iter()
            .enumerate()
            .filter(|(i, n)| *i != p && n.is_alive())
            .map(|(_, n)| Arc::clone(n))
            .collect()
    }

    /// Executes one client command on the primary. Writes are acknowledged
    /// **before** replication — the §2.2 behaviour MemoryDB fixes.
    pub fn execute(&self, session: &mut SessionState, args: &[Bytes]) -> Frame {
        let primary = self.primary();
        if !primary.is_alive() {
            return Frame::error("CLUSTERDOWN primary is down");
        }
        let mut engine = primary.engine.lock();
        engine.set_time_ms(now_ms());
        let outcome = engine.execute(session, args);
        if !outcome.effects.is_empty() {
            let offset = self.next_offset.fetch_add(1, Ordering::SeqCst);
            primary.offset.store(offset, Ordering::SeqCst);
            // AOF (if enabled) persists before the reply only under
            // `always`; other policies are buffered.
            if let Some(aof) = self.aof.lock().as_mut() {
                aof.append(&outcome.effects);
            }
            let deliver_at = Instant::now() + self.cfg.lag;
            for (_, tx) in self.senders.lock().iter() {
                let _ = tx.send(ReplItem {
                    offset,
                    deliver_at,
                    effects: outcome.effects.clone(),
                });
            }
        }
        outcome.reply
    }

    /// `WAIT numreplicas timeout`: blocks until that many replicas have
    /// acknowledged the primary's current offset (or timeout). Returns how
    /// many had.
    pub fn wait(&self, numreplicas: usize, timeout: Duration) -> usize {
        let target = self.primary().offset();
        let deadline = Instant::now() + timeout;
        loop {
            let acked = self
                .replicas()
                .iter()
                .filter(|r| r.offset() >= target)
                .count();
            if acked >= numreplicas || Instant::now() >= deadline {
                return acked;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    /// Kills the primary (fault injection). See [`crate::failover`] for the
    /// election that follows.
    pub fn kill_primary(&self) -> Arc<RedisNode> {
        let p = self.primary();
        p.alive.store(false, Ordering::SeqCst);
        p
    }

    /// Promotes the node at `index` to primary (the failover module decides
    /// which). All other replicas would resync from it in real Redis; here
    /// the promoted node's state simply becomes authoritative.
    pub fn promote(&self, node_id: u64) {
        let idx = self
            .nodes
            .iter()
            .position(|n| n.id == node_id)
            .expect("node exists");
        self.nodes[idx].engine.lock().set_role(Role::Primary);
        *self.primary.write() = idx;
    }

    /// Enables AOF with the given policy.
    pub fn enable_aof(&self, policy: crate::aof::FsyncPolicy) {
        *self.aof.lock() = Some(crate::aof::Aof::new(policy));
    }
}

impl Drop for RedisShard {
    fn drop(&mut self) {
        for n in &self.nodes {
            n.alive.store(false, Ordering::SeqCst);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memorydb_engine::cmd;

    fn bulk(s: &str) -> Frame {
        Frame::Bulk(Bytes::copy_from_slice(s.as_bytes()))
    }

    #[test]
    fn writes_ack_immediately_and_replicate_async() {
        let shard = RedisShard::new(
            ReplicationConfig {
                lag: Duration::from_millis(30),
            },
            1,
        );
        let mut s = SessionState::new();
        let t0 = Instant::now();
        assert_eq!(shard.execute(&mut s, &cmd(["SET", "k", "v"])), Frame::ok());
        // Ack is immediate — no multi-AZ wait.
        assert!(t0.elapsed() < Duration::from_millis(20));
        // The replica does not have it yet...
        let replica = shard.replicas()[0].clone();
        let mut rs = SessionState::new();
        assert_eq!(replica.read(&mut rs, &cmd(["GET", "k"])), Frame::Null);
        // ...but converges after the lag.
        std::thread::sleep(Duration::from_millis(80));
        assert_eq!(replica.read(&mut rs, &cmd(["GET", "k"])), bulk("v"));
    }

    #[test]
    fn wait_counts_acked_replicas() {
        let shard = RedisShard::new(
            ReplicationConfig {
                lag: Duration::from_millis(10),
            },
            2,
        );
        let mut s = SessionState::new();
        shard.execute(&mut s, &cmd(["SET", "k", "v"]));
        assert_eq!(shard.wait(2, Duration::from_secs(2)), 2);
        // WAIT with an impossible count times out with the real count.
        assert_eq!(shard.wait(5, Duration::from_millis(30)), 2);
    }

    #[test]
    fn replicas_apply_in_order() {
        let shard = RedisShard::new(
            ReplicationConfig {
                lag: Duration::ZERO,
            },
            1,
        );
        let mut s = SessionState::new();
        for i in 0..200 {
            shard.execute(&mut s, &cmd(["RPUSH", "l", &i.to_string()]));
        }
        shard.wait(1, Duration::from_secs(5));
        let replica = shard.replicas()[0].clone();
        assert_eq!(replica.dump(), shard.primary().dump());
    }

    #[test]
    fn nondeterministic_commands_replicate_by_effect() {
        let shard = RedisShard::new(
            ReplicationConfig {
                lag: Duration::ZERO,
            },
            1,
        );
        let mut s = SessionState::new();
        shard.execute(&mut s, &cmd(["SADD", "set", "a", "b", "c", "d", "e"]));
        shard.execute(&mut s, &cmd(["SPOP", "set", "2"]));
        shard.wait(1, Duration::from_secs(5));
        assert_eq!(shard.replicas()[0].dump(), shard.primary().dump());
    }
}
