//! The Append-Only File (paper §2.2.1).
//!
//! Redis's local-durability mechanism: every mutating effect is appended to
//! a file, with three fsync policies. `Always` linearizes the instance at
//! fsync cost; `EverySec` bounds loss to ~1 s of writes; `No` leaves
//! flushing to the OS. Recovery replays the file. The limitation the paper
//! highlights remains: the AOF lives on the node's own disk, so it
//! neither survives node loss nor constrains which replica wins a failover.

use memorydb_engine::effects::{decode_effect_batch, encode_effect_batch, EffectCmd};
use memorydb_engine::exec::Role;
use memorydb_engine::Engine;
use std::time::{Duration, Instant};

/// When the AOF fsyncs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// fsync before acknowledging every write.
    Always,
    /// fsync at most once per second (the Redis default).
    EverySec,
    /// Never fsync explicitly; the OS flushes eventually.
    No,
}

/// A simulated append-only file: an in-memory "disk" with an explicit
/// durable prefix, so crash simulations can drop unsynced suffixes.
#[derive(Debug)]
pub struct Aof {
    policy: FsyncPolicy,
    /// All bytes written (page cache + disk).
    buffer: Vec<u8>,
    /// Length of the durably synced prefix.
    synced_len: usize,
    last_sync: Instant,
    /// Count of fsync() calls (throughput accounting in benches).
    pub fsync_count: u64,
}

impl Aof {
    /// Creates an empty AOF with the given policy.
    pub fn new(policy: FsyncPolicy) -> Aof {
        Aof {
            policy,
            buffer: Vec::new(),
            synced_len: 0,
            last_sync: Instant::now(),
            fsync_count: 0,
        }
    }

    /// Appends one atomic effect batch, applying the fsync policy.
    pub fn append(&mut self, effects: &[EffectCmd]) {
        let record = encode_effect_batch(effects);
        self.buffer
            .extend_from_slice(&(record.len() as u32).to_le_bytes());
        self.buffer.extend_from_slice(&record);
        match self.policy {
            FsyncPolicy::Always => self.fsync(),
            FsyncPolicy::EverySec => {
                if self.last_sync.elapsed() >= Duration::from_secs(1) {
                    self.fsync();
                }
            }
            FsyncPolicy::No => {}
        }
    }

    /// Forces an fsync (background flusher / shutdown).
    pub fn fsync(&mut self) {
        self.synced_len = self.buffer.len();
        self.last_sync = Instant::now();
        self.fsync_count += 1;
    }

    /// Bytes that would survive a power loss right now.
    pub fn durable_bytes(&self) -> usize {
        self.synced_len
    }

    /// Total bytes written (including unsynced).
    pub fn written_bytes(&self) -> usize {
        self.buffer.len()
    }

    /// Simulates a crash: everything past the durable prefix is lost.
    pub fn crash(&mut self) {
        self.buffer.truncate(self.synced_len);
    }

    /// Replays the (durable) file into a fresh engine, returning it along
    /// with the number of effect batches applied. Truncated trailing
    /// records (torn writes) are skipped, like Redis's aof-load-truncated.
    pub fn recover(&self) -> (Engine, usize) {
        let mut engine = Engine::new(Role::Primary);
        let data = &self.buffer[..self.synced_len.min(self.buffer.len())];
        let mut pos = 0usize;
        let mut batches = 0usize;
        while pos + 4 <= data.len() {
            let len = u32::from_le_bytes(data[pos..pos + 4].try_into().expect("4 bytes")) as usize;
            let Some(record) = data.get(pos + 4..pos + 4 + len) else {
                break; // torn tail
            };
            pos += 4 + len;
            let Some(effects) = decode_effect_batch(record) else {
                break;
            };
            for eff in &effects {
                let _ = engine.apply_effect(eff);
            }
            batches += 1;
        }
        (engine, batches)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memorydb_engine::{cmd, Frame, SessionState};

    fn write_batches(aof: &mut Aof, engine: &mut Engine, n: usize) {
        let mut s = SessionState::new();
        for i in 0..n {
            let out = engine.execute(&mut s, &cmd(["SET", &format!("k{i}"), &i.to_string()]));
            assert!(!out.reply.is_error());
            aof.append(&out.effects);
        }
    }

    #[test]
    fn always_policy_survives_crash_completely() {
        let mut aof = Aof::new(FsyncPolicy::Always);
        let mut engine = Engine::new(Role::Primary);
        write_batches(&mut aof, &mut engine, 25);
        aof.crash();
        let (recovered, batches) = aof.recover();
        assert_eq!(batches, 25);
        assert_eq!(
            memorydb_engine::rdb::dump(&recovered.db),
            memorydb_engine::rdb::dump(&engine.db)
        );
        assert_eq!(aof.fsync_count, 25);
    }

    #[test]
    fn no_policy_loses_unsynced_writes_on_crash() {
        let mut aof = Aof::new(FsyncPolicy::No);
        let mut engine = Engine::new(Role::Primary);
        write_batches(&mut aof, &mut engine, 25);
        assert_eq!(aof.durable_bytes(), 0);
        aof.crash();
        let (recovered, batches) = aof.recover();
        assert_eq!(batches, 0);
        assert_eq!(recovered.db.len(), 0, "everything unsynced is gone");
    }

    #[test]
    fn everysec_bounds_the_loss_window() {
        let mut aof = Aof::new(FsyncPolicy::EverySec);
        let mut engine = Engine::new(Role::Primary);
        write_batches(&mut aof, &mut engine, 10);
        // Within the first second nothing has synced yet.
        assert_eq!(aof.durable_bytes(), 0);
        aof.fsync(); // the background flusher fires
        write_batches(&mut aof, &mut engine, 5);
        aof.crash();
        let (recovered, batches) = aof.recover();
        assert_eq!(batches, 10, "only the pre-fsync batches survive");
        assert_eq!(recovered.db.len(), 10);
    }

    #[test]
    fn torn_tail_is_skipped() {
        let mut aof = Aof::new(FsyncPolicy::Always);
        let mut engine = Engine::new(Role::Primary);
        write_batches(&mut aof, &mut engine, 3);
        // Corrupt: chop the last record in half (but keep synced_len high).
        aof.buffer.truncate(aof.buffer.len() - 3);
        aof.synced_len = aof.buffer.len();
        let (recovered, batches) = aof.recover();
        assert_eq!(batches, 2);
        assert_eq!(recovered.db.len(), 2);
    }

    #[test]
    fn recovery_reproduces_reads() {
        let mut aof = Aof::new(FsyncPolicy::Always);
        let mut engine = Engine::new(Role::Primary);
        let mut s = SessionState::new();
        for c in [
            cmd(["RPUSH", "l", "a", "b"]),
            cmd(["SADD", "s", "x"]),
            cmd(["ZADD", "z", "1", "m"]),
            cmd(["LPOP", "l"]),
        ] {
            let out = engine.execute(&mut s, &c);
            aof.append(&out.effects);
        }
        let (mut recovered, _) = aof.recover();
        let mut rs = SessionState::new();
        assert_eq!(
            recovered
                .execute(&mut rs, &cmd(["LRANGE", "l", "0", "-1"]))
                .reply,
            Frame::Array(vec![Frame::Bulk(bytes::Bytes::from_static(b"b"))])
        );
        assert_eq!(
            recovered.execute(&mut rs, &cmd(["ZSCORE", "z", "m"])).reply,
            Frame::Bulk(bytes::Bytes::from_static(b"1"))
        );
    }
}
