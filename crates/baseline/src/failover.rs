//! Redis-style failover: rank-based replica election (paper §2.2.1, §4.1).
//!
//! When the primary is declared failed, the cluster votes to promote the
//! replica that looks most up-to-date **from each voter's local view** — the
//! replication offset the replica advertises. Nothing guarantees the winner
//! observed every acknowledged write, so acknowledged writes can vanish.
//! This module makes that loss measurable, which is what the durability
//! ablation benchmark reports against MemoryDB's zero.

use crate::replication::RedisShard;

/// Result of a Redis failover.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailoverReport {
    /// Id of the promoted replica.
    pub promoted: u64,
    /// Replication offset the failed primary had acknowledged through.
    pub primary_offset: u64,
    /// Offset the winner had actually applied.
    pub winner_offset: u64,
    /// Acknowledged-but-lost write count (`primary - winner`).
    pub lost_writes: u64,
}

/// Runs the rank-based election after the primary failed and promotes the
/// winner. Panics if no replica is alive (total data loss — the worst case
/// §2.2.1 describes).
pub fn elect_and_promote(shard: &RedisShard) -> FailoverReport {
    let primary_offset = shard.primary().offset();
    // Rank: highest advertised replication offset wins; ties break by id
    // (Redis uses run-id ordering).
    let winner = shard
        .replicas()
        .into_iter()
        .max_by_key(|r| (r.offset(), std::cmp::Reverse(r.id)))
        .expect("at least one live replica to promote");
    let winner_offset = winner.offset();
    let report = FailoverReport {
        promoted: winner.id,
        primary_offset,
        winner_offset,
        lost_writes: primary_offset.saturating_sub(winner_offset),
    };
    shard.promote(winner.id);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replication::ReplicationConfig;
    use bytes::Bytes;
    use memorydb_engine::{cmd, Frame, SessionState};
    use std::time::Duration;

    #[test]
    fn failover_with_lag_loses_acknowledged_writes() {
        // The §2.2 defect, demonstrated: a laggy replica gets promoted and
        // acknowledged writes disappear.
        let shard = RedisShard::new(
            ReplicationConfig {
                lag: Duration::from_millis(200),
            },
            1,
        );
        let mut s = SessionState::new();
        let mut acked = 0u64;
        for i in 0..50 {
            let r = shard.execute(&mut s, &cmd(["SET", &format!("k{i}"), "v"]));
            assert_eq!(r, Frame::ok());
            acked += 1;
        }
        // Crash before the replica caught up.
        shard.kill_primary();
        let report = elect_and_promote(&shard);
        assert!(
            report.lost_writes > 0,
            "with 200ms lag and immediate crash, some acked writes must be lost"
        );
        assert!(report.lost_writes <= acked);
        // And indeed the data is gone on the new primary.
        let mut s2 = SessionState::new();
        let lost_key = format!("k{}", acked - 1);
        assert_eq!(
            shard.execute(&mut s2, &cmd(["GET", lost_key.as_str()])),
            Frame::Null,
            "the most recent acknowledged write should be gone"
        );
    }

    #[test]
    fn failover_with_caught_up_replica_loses_nothing() {
        let shard = RedisShard::new(
            ReplicationConfig {
                lag: Duration::ZERO,
            },
            1,
        );
        let mut s = SessionState::new();
        for i in 0..20 {
            shard.execute(&mut s, &cmd(["SET", &format!("k{i}"), "v"]));
        }
        shard.wait(1, Duration::from_secs(5));
        shard.kill_primary();
        let report = elect_and_promote(&shard);
        assert_eq!(report.lost_writes, 0);
        let mut s2 = SessionState::new();
        assert_eq!(
            shard.execute(&mut s2, &cmd(["GET", "k19"])),
            Frame::Bulk(Bytes::from_static(b"v"))
        );
    }

    #[test]
    fn election_prefers_most_caught_up_replica() {
        let shard = RedisShard::new(
            ReplicationConfig {
                lag: Duration::from_millis(1),
            },
            2,
        );
        let mut s = SessionState::new();
        for i in 0..30 {
            shard.execute(&mut s, &cmd(["SET", &format!("k{i}"), "v"]));
        }
        // Let both catch up fully, then the ranking is a tie broken by id.
        shard.wait(2, Duration::from_secs(5));
        shard.kill_primary();
        let report = elect_and_promote(&shard);
        assert_eq!(report.lost_writes, 0);
        assert_eq!(report.promoted, 1, "tie breaks toward the lowest id");
    }
}
