//! # memorydb-baseline — the OSS Redis comparator
//!
//! The paper evaluates MemoryDB against OSS Redis (§6) and motivates the
//! design with Redis's failure modes (§2.2). This crate reproduces those
//! baseline semantics over the same `memorydb-engine`:
//!
//! * [`replication`] — **asynchronous** primary→replica replication: the
//!   primary acknowledges writes immediately and ships effects with a
//!   configurable lag, so acknowledged writes can be lost (§2.2.2). `WAIT`
//!   is provided with its real (weak) semantics.
//! * [`failover`] — quorum-style failover with rank-based replica election:
//!   the most-up-to-date replica *by local view* wins, which guarantees
//!   nothing about acknowledged writes (§2.2.1). The number of lost writes
//!   is measurable.
//! * [`aof`] — the Append-Only File with `always` / `everysec` / `no`
//!   fsync policies on a simulated disk, plus AOF-based recovery.
//! * [`bgsave`] — an analytic model of fork-based snapshotting: page-table
//!   clone cost (the paper's own 12 ms/GB), copy-on-write accumulation
//!   under writes, and the swap collapse once RSS exceeds DRAM — the
//!   mechanism behind Figure 6.

pub mod aof;
pub mod bgsave;
pub mod failover;
pub mod replication;

pub use aof::{Aof, FsyncPolicy};
pub use bgsave::{BgSaveModel, BgSaveRun, MemoryPressure};
pub use failover::FailoverReport;
pub use replication::{RedisShard, ReplicationConfig};
