//! The paper's motivating scenario (§1): an e-commerce catalog microservice.
//!
//! With cache-style Redis, teams kept the source of truth in another
//! database and ran pipelines to hydrate Redis, plus reconciliation jobs
//! for when Redis lost data. This example shows both worlds:
//!
//! 1. the **Redis-as-cache** failure: a primary dies before replicating and
//!    acknowledged catalog items vanish (the signal that used to trigger
//!    re-hydration jobs);
//! 2. the **MemoryDB-as-primary-database** workflow: catalog items are
//!    written once, survive the same failure, and there is no pipeline.
//!
//! ```sh
//! cargo run --release --example durable_catalog
//! ```

use memorydb::baseline::{failover, RedisShard, ReplicationConfig};
use memorydb::core::{ClusterBus, NodeIdGen, Shard, ShardConfig};
use memorydb::engine::{cmd, Frame, SessionState};
use memorydb::objectstore::ObjectStore;
use std::sync::Arc;
use std::time::Duration;

fn item_fields(id: u32) -> [String; 7] {
    [
        format!("item:{id}"),
        "title".into(),
        format!("Widget #{id}"),
        "price_cents".into(),
        format!("{}", 499 + id),
        "stock".into(),
        "25".into(),
    ]
}

fn main() {
    const ITEMS: u32 = 200;

    // ---------------------------------------------------------------
    // World 1: Redis as a cache with async replication.
    // ---------------------------------------------------------------
    println!("== Redis-as-cache (async replication) ==");
    let redis = RedisShard::new(
        ReplicationConfig {
            lag: Duration::from_millis(100),
        },
        1,
    );
    let mut session = SessionState::new();
    for id in 0..ITEMS {
        let f = item_fields(id);
        let args: Vec<&str> = std::iter::once("HSET")
            .chain(f.iter().map(|s| s.as_str()))
            .collect();
        assert_eq!(redis.execute(&mut session, &cmd(args)), Frame::Integer(3));
    }
    println!("ingested {ITEMS} catalog items (all acknowledged)");
    // Crash before the replica caught up; rank-based election promotes it.
    redis.kill_primary();
    let report = failover::elect_and_promote(&redis);
    let mut missing = 0;
    for id in 0..ITEMS {
        let key = format!("item:{id}");
        if redis.execute(&mut session, &cmd(["HGET", key.as_str(), "title"])) == Frame::Null {
            missing += 1;
        }
    }
    println!(
        "after failover: {missing} items MISSING (replication lost {} acked writes)",
        report.lost_writes
    );
    println!("-> this is the moment the old architecture kicks off a reconciliation job\n");

    // ---------------------------------------------------------------
    // World 2: MemoryDB as the primary database.
    // ---------------------------------------------------------------
    println!("== MemoryDB-as-primary-database ==");
    let shard = Shard::bootstrap(
        0,
        ShardConfig::fast(),
        Arc::new(ObjectStore::new()),
        Arc::new(ClusterBus::new()),
        Arc::new(NodeIdGen::new()),
        vec![(0, 16383)],
        1,
    );
    let primary = shard.wait_for_primary(Duration::from_secs(10)).unwrap();
    let mut session = SessionState::new();
    for id in 0..ITEMS {
        let f = item_fields(id);
        let args: Vec<&str> = std::iter::once("HSET")
            .chain(f.iter().map(|s| s.as_str()))
            .collect();
        assert_eq!(primary.handle(&mut session, &cmd(args)), Frame::Integer(3));
    }
    println!("ingested {ITEMS} catalog items (each committed to 2/3 AZs before the ack)");
    primary.crash();
    let new_primary = shard.wait_for_primary(Duration::from_secs(10)).unwrap();
    let mut missing = 0;
    let mut s = SessionState::new();
    for id in 0..ITEMS {
        let key = format!("item:{id}");
        if new_primary.handle(&mut s, &cmd(["HGET", key.as_str(), "title"])) == Frame::Null {
            missing += 1;
        }
    }
    println!("after failover: {missing} items missing");
    assert_eq!(missing, 0);
    println!("-> no pipeline, no hydration job, no reconciliation: the store IS the database");

    // Bonus: the read path the page-view service uses.
    let page = new_primary.handle(&mut s, &cmd(["HGETALL", "item:42"]));
    println!("\nHGETALL item:42 -> {page:?}");
}
