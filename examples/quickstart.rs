//! Quickstart: boot a durable MemoryDB shard, talk to it in-process and
//! over TCP, and watch a write survive a primary crash.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use memorydb::core::{ClusterBus, NodeIdGen, Shard, ShardConfig};
use memorydb::engine::{cmd, SessionState};
use memorydb::objectstore::ObjectStore;
use memorydb::server::{BlockingClient, Server};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    // 1. Boot a shard: one primary + one replica over a (simulated)
    //    multi-AZ transaction log and an S3-like snapshot store.
    let shard = Shard::bootstrap(
        0,
        ShardConfig::default(),
        Arc::new(ObjectStore::new()),
        Arc::new(ClusterBus::new()),
        Arc::new(NodeIdGen::new()),
        vec![(0, 16383)],
        1, // replicas
    );
    let primary = shard
        .wait_for_primary(Duration::from_secs(10))
        .expect("leader election completes");
    println!("primary elected: node {}", primary.id);

    // 2. In-process commands. Every mutation is committed to the log across
    //    a quorum of AZs before the reply is released.
    let mut session = SessionState::new();
    let reply = primary.handle(
        &mut session,
        &cmd(["SET", "greeting", "hello, durable world"]),
    );
    println!("SET -> {reply:?}");
    let reply = primary.handle(&mut session, &cmd(["GET", "greeting"]));
    println!("GET -> {reply:?}");

    // Data structures work too — it is a Redis-compatible engine.
    primary.handle(
        &mut session,
        &cmd(["ZADD", "scores", "42", "alice", "17", "bob"]),
    );
    let top = primary.handle(
        &mut session,
        &cmd(["ZRANGE", "scores", "0", "-1", "WITHSCORES"]),
    );
    println!("ZRANGE scores -> {top:?}");

    // 3. The same node over TCP, with any RESP client.
    let server = Server::start(Arc::clone(&primary), "127.0.0.1:0").expect("bind");
    println!("serving RESP on {}", server.local_addr);
    let mut client = BlockingClient::connect(server.local_addr).expect("connect");
    println!("PING -> {:?}", client.command(["PING"]).unwrap());
    println!(
        "INCR page_views -> {:?}",
        client.command(["INCR", "page_views"]).unwrap()
    );

    // 4. Durability drill: crash the primary; the replica is promoted via a
    //    conditional append on the transaction log, and every acknowledged
    //    write is still there.
    println!("\ncrashing the primary...");
    primary.crash();
    let new_primary = shard
        .wait_for_primary(Duration::from_secs(10))
        .expect("failover completes");
    println!("new primary: node {}", new_primary.id);
    let mut session = SessionState::new();
    let reply = new_primary.handle(&mut session, &cmd(["GET", "greeting"]));
    println!("GET greeting after failover -> {reply:?}");
    let views = new_primary.handle(&mut session, &cmd(["GET", "page_views"]));
    println!("GET page_views after failover -> {views:?}");
}
