//! Real-time aggregation on the server (§1's real-time-bidding motivation):
//! sorted-set leaderboards, atomic multi-step updates via the script DSL,
//! and scale-out reads from replicas with the READONLY opt-in.
//!
//! ```sh
//! cargo run --release --example leaderboard
//! ```

use memorydb::core::{ClusterBus, NodeIdGen, Shard, ShardConfig};
use memorydb::engine::{cmd, Frame, SessionState};
use memorydb::objectstore::ObjectStore;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let shard = Shard::bootstrap(
        0,
        ShardConfig::fast(),
        Arc::new(ObjectStore::new()),
        Arc::new(ClusterBus::new()),
        Arc::new(NodeIdGen::new()),
        vec![(0, 16383)],
        2,
    );
    let primary = shard.wait_for_primary(Duration::from_secs(10)).unwrap();
    let mut session = SessionState::new();

    // Bids stream in: each one bumps the bidder's aggregate. The sorted set
    // keeps ranking server-side — no client-side scatter/gather.
    println!("ingesting 5000 bids from 50 bidders...");
    let mut x = 0x243F6A88u64;
    for _ in 0..5000 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let bidder = format!("bidder:{:02}", x % 50);
        let amount = format!("{}", 1 + x % 100);
        primary.handle(
            &mut session,
            &cmd([
                "ZINCRBY",
                "{auction}board",
                amount.as_str(),
                bidder.as_str(),
            ]),
        );
    }

    // Top 5 bidders — one O(log n + 5) command.
    let top = primary.handle(
        &mut session,
        &cmd(["ZRANGE", "{auction}board", "0", "4", "REV", "WITHSCORES"]),
    );
    println!("top-5 bidders: {top:?}");

    // Rank queries are where skiplist spans shine.
    let rank = primary.handle(&mut session, &cmd(["ZRANK", "{auction}board", "bidder:07"]));
    println!("bidder:07 rank (ascending): {rank:?}");

    // An atomic "bid with budget check" as a server-side script (the Lua
    // stand-in, §2.1): executed atomically, replicated by effects. Keys
    // share the {auction} hash tag so the script stays on one slot.
    let script = "LET spent = CALL GET $KEYS[2]\n\
                  IF ISNIL $spent THEN\n\
                    CALL SET $KEYS[2] 0\n\
                  END\n\
                  LET newspent = CALL INCRBY $KEYS[2] $ARGV[2]\n\
                  CALL ZINCRBY $KEYS[1] $ARGV[2] $ARGV[1]\n\
                  RETURN $newspent";
    let reply = primary.handle(
        &mut session,
        &cmd([
            "EVAL",
            script,
            "2",
            "{auction}board",
            "{auction}spend:bidder:07",
            "bidder:07",
            "250",
        ]),
    );
    println!("scripted bid: bidder:07 total spend -> {reply:?}");

    // Read scaling: page views hit replicas (sequentially consistent from
    // any single replica; the opt-in is deliberate, §2.1).
    assert!(shard.wait_replicas_caught_up(Duration::from_secs(10)));
    for replica in shard.replicas() {
        let mut s = SessionState::new();
        let count = replica.handle(&mut s, &cmd(["ZCARD", "{auction}board"]));
        let top1 = replica.handle(&mut s, &cmd(["ZRANGE", "{auction}board", "0", "0", "REV"]));
        println!("replica {}: ZCARD={count:?}, leader={top1:?}", replica.id);
    }

    // Aggregations across boards: server-side set algebra.
    primary.handle(
        &mut session,
        &cmd(["ZADD", "{auction}vip", "0", "bidder:07", "0", "bidder:13"]),
    );
    let vip_board = primary.handle(
        &mut session,
        &cmd([
            "ZINTERSTORE",
            "{auction}vip_board",
            "2",
            "{auction}board",
            "{auction}vip",
            "WEIGHTS",
            "1",
            "0",
        ]),
    );
    match vip_board {
        Frame::Integer(n) => println!("VIP leaderboard materialized with {n} entries"),
        other => println!("unexpected: {other:?}"),
    }
    let vips = primary.handle(
        &mut session,
        &cmd([
            "ZRANGE",
            "{auction}vip_board",
            "0",
            "-1",
            "REV",
            "WITHSCORES",
        ]),
    );
    println!("VIP standings: {vips:?}");
}
