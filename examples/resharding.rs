//! Online resharding (§5.2): scale a cluster out under live traffic, with
//! the slot-ownership 2PC recorded in the transaction logs, then scale it
//! back in.
//!
//! ```sh
//! cargo run --release --example resharding
//! ```

use memorydb::core::migration::migrate_slot;
use memorydb::core::{Cluster, ClusterClient, ShardConfig};
use memorydb::engine::{key_hash_slot, Frame};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    // Start with a single shard owning all 16384 slots.
    let cluster = Cluster::launch(ShardConfig::fast(), 1, 1);
    let first = cluster.shards()[0].clone();
    first.wait_for_primary(Duration::from_secs(10)).unwrap();

    let mut client = ClusterClient::new(Arc::clone(&cluster));
    println!("loading 500 user records into the 1-shard cluster...");
    for i in 0..500 {
        let key = format!("user:{i}");
        assert_eq!(
            client.command(["SET", key.as_str(), "profile"]),
            Frame::ok()
        );
    }
    println!("slot map: {:?}\n", summarize(&cluster.slot_map()));

    // Scale out: a new shard joins empty; slots move one by one while the
    // cluster keeps serving. (We move a band of 128 slots here — the full
    // even split works the same way, one 2PC per slot.)
    println!("scaling out: migrating slots 0..128 to a new shard under live traffic");
    let second = cluster.create_shard(Vec::new(), 1);
    second.wait_for_primary(Duration::from_secs(10)).unwrap();
    let writer_cluster = Arc::clone(&cluster);
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let writer = std::thread::spawn(move || {
        let mut c = ClusterClient::new(writer_cluster);
        let mut acked = 0u64;
        let mut i = 0u64;
        while !stop2.load(std::sync::atomic::Ordering::Relaxed) {
            let key = format!("live:{i}");
            if c.command(["SET", key.as_str(), "v"]) == Frame::ok() {
                acked += 1;
            }
            i += 1;
        }
        acked
    });
    for slot in 0u16..128 {
        migrate_slot(&first, &second, slot).expect("migration");
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let acked = writer.join().unwrap();
    println!("migrated 128 slots while acknowledging {acked} concurrent writes");
    println!("slot map: {:?}\n", summarize(&cluster.slot_map()));

    // Every record is still reachable; the client follows MOVED redirects.
    let mut missing = 0;
    for i in 0..500 {
        let key = format!("user:{i}");
        if client.command(["GET", key.as_str()]) == Frame::Null {
            missing += 1;
        }
    }
    println!("post-scale-out integrity: {missing}/500 records missing (must be 0)");
    assert_eq!(missing, 0);

    // Keys in the moved band now live on shard 1.
    let moved_key = (0..)
        .map(|i| format!("user:{i}"))
        .find(|k| key_hash_slot(k.as_bytes()) < 128)
        .expect("some user key lands in the moved band");
    println!(
        "'{moved_key}' hashes to slot {} -> served by the new shard\n",
        key_hash_slot(moved_key.as_bytes())
    );

    // Scale back in: drain the band back, shard 1 retires.
    println!("scaling in: returning the band and retiring the shard");
    for slot in 0u16..128 {
        migrate_slot(&second, &first, slot).expect("migration back");
    }
    for node in second.nodes() {
        node.crash();
    }
    let mut missing = 0;
    for i in 0..500 {
        let key = format!("user:{i}");
        if client.command(["GET", key.as_str()]) == Frame::Null {
            missing += 1;
        }
    }
    println!("post-scale-in integrity: {missing}/500 records missing (must be 0)");
    assert_eq!(missing, 0);
    println!("slot map: {:?}", summarize(&cluster.slot_map()));
}

fn summarize(map: &[(u16, u16, u32)]) -> Vec<String> {
    map.iter()
        .map(|(lo, hi, shard)| format!("{lo}-{hi}=>shard{shard}"))
        .collect()
}
