//! An operations drill: watch leases, elections, fencing, demotion, and the
//! monitoring service repair the fleet — the §4 machinery narrated live.
//!
//! ```sh
//! cargo run --release --example failover_drill
//! ```

use memorydb::core::{ClusterBus, MonitoringService, NodeIdGen, Shard, ShardConfig};
use memorydb::engine::{cmd, Frame, SessionState};
use memorydb::objectstore::ObjectStore;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() {
    let shard = Shard::bootstrap(
        0,
        ShardConfig::fast(),
        Arc::new(ObjectStore::new()),
        Arc::new(ClusterBus::new()),
        Arc::new(NodeIdGen::new()),
        vec![(0, 16383)],
        2,
    );
    let monitor = Arc::new(MonitoringService::new(vec![Arc::clone(&shard)], 2));

    let primary = shard.wait_for_primary(Duration::from_secs(10)).unwrap();
    println!(
        "bootstrap: node {} won the election (epoch {})",
        primary.id,
        primary.epoch()
    );

    let mut session = SessionState::new();
    for i in 0..100 {
        primary.handle(&mut session, &cmd(["SET", &format!("key:{i}"), "v"]));
    }
    println!("wrote 100 durable keys\n");

    // Drill 1: network partition. The primary keeps executing but cannot
    // commit; it must not acknowledge, and it demotes at lease end.
    println!("drill 1: partition the primary from the transaction log");
    shard.ctx().log.set_client_partitioned(primary.id, true);
    let r = primary.handle(&mut session, &cmd(["SET", "during-partition", "x"]));
    println!("  write during partition -> {r:?} (correctly NOT acknowledged)");
    let t0 = Instant::now();
    let new_primary = loop {
        if let Some(p) = shard.primary() {
            if p.id != primary.id {
                break p;
            }
        }
        std::thread::sleep(Duration::from_millis(5));
    };
    println!(
        "  node {} took over after {:?} (epoch {})",
        new_primary.id,
        t0.elapsed(),
        new_primary.epoch()
    );
    let mut s = SessionState::new();
    println!(
        "  unacknowledged key visible on new primary? {:?} (must be Null)",
        new_primary.handle(&mut s, &cmd(["GET", "during-partition"]))
    );
    shard.ctx().log.set_client_partitioned(primary.id, false);
    println!("  partition healed; old primary resyncs from the log as a replica\n");

    // Drill 2: hard crash + monitoring-service repair.
    println!("drill 2: hard-crash the new primary; monitoring replaces the node");
    let crashed_id = new_primary.id;
    new_primary.crash();
    let t0 = Instant::now();
    let third = loop {
        if let Some(p) = shard.primary() {
            if p.id != crashed_id {
                break p;
            }
        }
        std::thread::sleep(Duration::from_millis(5));
    };
    println!("  node {} elected after {:?}", third.id, t0.elapsed());
    let report = monitor.tick_shard(&shard);
    println!(
        "  monitoring tick: replaced {} dead node(s); fleet back to {} nodes",
        report.dead_nodes_replaced,
        shard.nodes().len()
    );
    assert!(shard.wait_replicas_caught_up(Duration::from_secs(10)));
    println!("  replacement replica restored from snapshot+log and caught up\n");

    // Drill 3: everything still there.
    let mut s = SessionState::new();
    let mut present = 0;
    for i in 0..100 {
        if third.handle(&mut s, &cmd(["GET", &format!("key:{i}")])) != Frame::Null {
            present += 1;
        }
    }
    println!("drill 3: {present}/100 acknowledged keys present after two failovers");
    assert_eq!(present, 100);
    println!("zero data loss — the §3/§4 guarantee");
}
