#!/usr/bin/env bash
# Pre-PR gate: run everything a reviewer would. Each step must pass.
#
#   fmt     — no unformatted code
#   clippy  — no warnings anywhere in the workspace (panic-freedom lints
#             are warn-by-default in the serving-path modules, so -D
#             warnings turns them into errors there)
#   analyze — the workspace invariant analyzer (DESIGN.md §9): green
#             baseline, no stale entries
#   test    — the full tier-1 suite (includes tests/analysis.rs, which
#             re-runs the analyzer, and the chaos smoke schedules)
#   metrics — tcp_throughput --smoke (§10 observability + §12 striping):
#             per-stage latency attribution must sample every declared
#             stage, the stage sums must be consistent with the e2e span,
#             the commit pipeline must show cross-connection coalescing at
#             K>=8 (append calls < dispatched batches), and at K>=8
#             multiplexed the 16-stripe engine must beat the 1-stripe
#             baseline by >=1.5x ops/s (skipped on hosts with <4 cores,
#             where stripes only time-share one CPU); the binary exits
#             nonzero otherwise. Opt in with --metrics-smoke (it costs a
#             few seconds of closed-loop TCP load). Also runs
#             log_latency --smoke (§13 adaptive group commit): at K=1 the
#             idle fast path must append exactly once per command and —
#             on hosts with >=4 cores — beat the committer-handoff
#             baseline on mean commit latency; the smoke rows land in
#             BENCH_log_latency.json.
#
# Usage: scripts/check.sh [--metrics-smoke] [--offline]
# Extra cargo flags (e.g. --offline in the hermetic container) are passed
# through to every cargo invocation.
set -euo pipefail
cd "$(dirname "$0")/.."

METRICS_SMOKE=0
CARGO_FLAGS=()
for arg in "$@"; do
  case "$arg" in
    --metrics-smoke) METRICS_SMOKE=1 ;;
    *) CARGO_FLAGS+=("$arg") ;;
  esac
done

run() {
  echo "==> $*"
  "$@"
}

run cargo fmt --check
run cargo clippy --workspace --all-targets "${CARGO_FLAGS[@]}" -- -D warnings
run cargo run -q -p memorydb-analysis "${CARGO_FLAGS[@]}"
run cargo test -q --workspace "${CARGO_FLAGS[@]}"
if [[ "$METRICS_SMOKE" == "1" ]]; then
  run cargo run -q --release -p memorydb-bench "${CARGO_FLAGS[@]}" --bin tcp_throughput -- --smoke
  run cargo run -q --release -p memorydb-bench "${CARGO_FLAGS[@]}" --bin log_latency -- --smoke
fi

echo "==> all checks passed"
