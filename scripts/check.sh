#!/usr/bin/env bash
# Pre-PR gate: run everything a reviewer would. Each step must pass.
#
#   fmt     — no unformatted code
#   clippy  — no warnings anywhere in the workspace (panic-freedom lints
#             are warn-by-default in the serving-path modules, so -D
#             warnings turns them into errors there)
#   analyze — the workspace invariant analyzer (DESIGN.md §9): green
#             baseline, no stale entries
#   test    — the full tier-1 suite (includes tests/analysis.rs, which
#             re-runs the analyzer, and the chaos smoke schedules)
#   metrics — tcp_throughput --smoke (§10 observability + §12 striping):
#             per-stage latency attribution must sample every declared
#             stage, the stage sums must be consistent with the e2e span,
#             the commit pipeline must show cross-connection coalescing at
#             K>=8 (append calls < dispatched batches), and at K>=8
#             multiplexed the 16-stripe engine must beat the 1-stripe
#             baseline by >=1.5x ops/s (skipped on hosts with <4 cores,
#             where stripes only time-share one CPU); the binary exits
#             nonzero otherwise. Opt in with --metrics-smoke (it costs a
#             few seconds of closed-loop TCP load). Also runs
#             log_latency --smoke (§13 adaptive group commit): at K=1 the
#             idle fast path must append exactly once per command and —
#             on hosts with >=4 cores — beat the committer-handoff
#             baseline on mean commit latency; the smoke rows land in
#             BENCH_log_latency.json. Also runs restore_mttr --smoke
#             (§4.2 + DESIGN.md §14 incremental snapshots / parallel
#             restore): every row must restore a complete image at both
#             worker counts, and on hosts with >=4 cores the parallel
#             restore of the largest (10x) dataset must beat the
#             sequential path by >=2x (skipped below 4 cores, where
#             restore workers only time-share one CPU); the smoke rows
#             land in BENCH_restore_mttr.json.
#
#   alloc-census — the §15 zero-copy allocation gate, opt in with
#             --alloc-census (also folded into --metrics-smoke):
#             alloc_census --smoke counts allocations-per-command on the
#             K=1 multiplexed GET/SET path with a counting global
#             allocator. Every workload must stay under its pinned
#             absolute budget AND >=50% below the committed pre-PR
#             baseline. This gate has NO core-count skip-guard — it runs
#             (and is meaningful) on a 1-core box. Rows land in
#             BENCH_alloc.json.
#
#   concurrency — the §9 concurrency-correctness pass, opt in with
#             --concurrency: re-runs the analyzer with the lock-order
#             graph artifacts enabled (results/lockgraph.dot +
#             results/lockgraph.toml, the sanctioned acquisition order as
#             reviewable files), which also prints the total Relaxed
#             atomics census, then runs the interleaving model tests
#             (crates/sim/tests/interleave_models.rs) that exhaustively
#             schedule the commit-pipeline handoffs. Each sub-step is
#             timed. Finishes with a best-effort `cargo miri` /
#             ThreadSanitizer probe that self-skips — loudly — when the
#             toolchain component is not installed on this (offline) box.
#
# Usage: scripts/check.sh [--metrics-smoke] [--alloc-census] [--concurrency] [--offline]
# Extra cargo flags (e.g. --offline in the hermetic container) are passed
# through to every cargo invocation.
set -euo pipefail
cd "$(dirname "$0")/.."

METRICS_SMOKE=0
ALLOC_CENSUS=0
CONCURRENCY=0
CARGO_FLAGS=()
for arg in "$@"; do
  case "$arg" in
    --metrics-smoke) METRICS_SMOKE=1 ;;
    --alloc-census) ALLOC_CENSUS=1 ;;
    --concurrency) CONCURRENCY=1 ;;
    *) CARGO_FLAGS+=("$arg") ;;
  esac
done

run() {
  echo "==> $*"
  "$@"
}

# Like run, but reports the wall-clock time of the step.
timed() {
  local label="$1"
  shift
  echo "==> [$label] $*"
  local t0 t1
  t0=$(date +%s)
  "$@"
  t1=$(date +%s)
  echo "==> [$label] done in $((t1 - t0))s"
}

run cargo fmt --check
run cargo clippy --workspace --all-targets "${CARGO_FLAGS[@]}" -- -D warnings
run cargo run -q -p memorydb-analysis "${CARGO_FLAGS[@]}"
run cargo test -q --workspace "${CARGO_FLAGS[@]}"
if [[ "$METRICS_SMOKE" == "1" ]]; then
  run cargo run -q --release -p memorydb-bench "${CARGO_FLAGS[@]}" --bin tcp_throughput -- --smoke
  run cargo run -q --release -p memorydb-bench "${CARGO_FLAGS[@]}" --bin log_latency -- --smoke
  run cargo run -q --release -p memorydb-bench "${CARGO_FLAGS[@]}" --bin restore_mttr -- --smoke
fi
if [[ "$METRICS_SMOKE" == "1" || "$ALLOC_CENSUS" == "1" ]]; then
  run cargo run -q --release -p memorydb-bench "${CARGO_FLAGS[@]}" --bin alloc_census -- \
    --smoke --json BENCH_alloc.json
fi
if [[ "$CONCURRENCY" == "1" ]]; then
  mkdir -p results
  timed lockgraph cargo run -q -p memorydb-analysis "${CARGO_FLAGS[@]}" -- \
    --lockgraph-dot results/lockgraph.dot --lockgraph-toml results/lockgraph.toml
  echo "==> lock-order artifacts: results/lockgraph.dot results/lockgraph.toml"
  timed model-tests cargo test -q -p memorydb-sim "${CARGO_FLAGS[@]}" --test interleave_models
  # Best-effort dynamic checkers. Neither toolchain component ships in the
  # hermetic container, so probe first and skip explicitly instead of
  # failing: a skip line in the log is a fact, a missing line is a mystery.
  if cargo miri --version >/dev/null 2>&1; then
    timed miri cargo miri test -p memorydb-sim --test interleave_models
  else
    echo "==> [miri] SKIPPED: \`cargo miri\` unavailable (offline box, component not installed)"
  fi
  # TSan needs a sanitized std (-Zbuild-std), which needs the nightly
  # rust-src component — probe for it, not just for a nightly rustc.
  if [[ "$(uname -m)" == "x86_64" ]] \
    && rustup +nightly component list --installed 2>/dev/null | grep -q '^rust-src'; then
    timed tsan env RUSTFLAGS="-Zsanitizer=thread" \
      cargo +nightly test -q -p memorydb-sim "${CARGO_FLAGS[@]}" --test interleave_models \
      -Zbuild-std --target x86_64-unknown-linux-gnu
  else
    echo "==> [tsan] SKIPPED: nightly rust-src for -Zsanitizer=thread unavailable (offline box)"
  fi
fi

echo "==> all checks passed"
