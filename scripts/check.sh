#!/usr/bin/env bash
# Pre-PR gate: run everything a reviewer would. Each step must pass.
#
#   fmt     — no unformatted code
#   clippy  — no warnings anywhere in the workspace (panic-freedom lints
#             are warn-by-default in the serving-path modules, so -D
#             warnings turns them into errors there)
#   analyze — the workspace invariant analyzer (DESIGN.md §9): green
#             baseline, no stale entries
#   test    — the full tier-1 suite (includes tests/analysis.rs, which
#             re-runs the analyzer, and the chaos smoke schedules)
#
# Usage: scripts/check.sh [--offline]
# Extra cargo flags (e.g. --offline in the hermetic container) are passed
# through to every cargo invocation.
set -euo pipefail
cd "$(dirname "$0")/.."

CARGO_FLAGS=("$@")

run() {
  echo "==> $*"
  "$@"
}

run cargo fmt --check
run cargo clippy --workspace --all-targets "${CARGO_FLAGS[@]}" -- -D warnings
run cargo run -q -p memorydb-analysis "${CARGO_FLAGS[@]}"
run cargo test -q --workspace "${CARGO_FLAGS[@]}"

echo "==> all checks passed"
